//! Sharded orders: serve one bitemporal table from a hash-partitioned
//! cluster, commit across shards atomically, and time-travel through a
//! globally consistent snapshot.
//!
//! ```text
//! cargo run -p bitempo-examples --bin sharded_orders
//! ```

use bitempo_core::{
    AppDate, AppPeriod, Column, DataType, Key, Row, Schema, TableDef, TemporalClass, Value,
};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_shard::Cluster;
use bitempo_wal::Checkpoint;
use bitempo_workloads::sharding::shard_of;

const SHARDS: usize = 4;

fn main() -> bitempo_core::Result<()> {
    // A cluster bootstraps from any single-engine checkpoint: the image
    // is partitioned row-by-row with the same stable hash the router
    // uses, so every key lands on the shard that will own it.
    let mut seed = build_engine(SystemKind::A);
    let def = TableDef::new(
        "orders",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("qty", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("valid_time"),
    )?;
    let orders = seed.create_table(def)?;
    let jan = AppDate::from_ymd(2024, 1, 1);
    for id in 0..8 {
        seed.insert(
            orders,
            Row::new(vec![Value::Int(id), Value::Int(100)]),
            Some(AppPeriod::since(jan)),
        )?;
    }
    seed.commit();
    let base = Checkpoint::capture(seed.as_mut(), &[orders], 0)?;

    // Four shards, each its own engine + transaction manager. Passing a
    // WAL per slot would make each shard independently durable; the
    // example keeps them in memory.
    let cluster =
        Cluster::from_checkpoint(SystemKind::A, &base, (0..SHARDS).map(|_| None).collect())?;
    for id in 0..8 {
        println!(
            "order {id} lives on shard {}",
            shard_of(&Key::int(id), SHARDS)
        );
    }

    // A single-key transaction routes to one shard: no coordination
    // beyond drawing the global commit timestamp.
    let mut txn = cluster.begin()?;
    txn.update(orders, &Key::int(1), &[(1, Value::Int(150))], None)?;
    let t1 = txn.commit()?;
    println!("\nsingle-shard update committed at global time {t1}");

    // Orders 0 and 1 hash to different shards, so this commit runs
    // two-phase: prepare records on both WAL streams, then a decision.
    // Either both shards show it or neither does — never a torn pair.
    let mut txn = cluster.begin()?;
    txn.update(orders, &Key::int(0), &[(1, Value::Int(0))], None)?;
    txn.update(orders, &Key::int(1), &[(1, Value::Int(151))], None)?;
    let t2 = txn.commit()?;
    println!("cross-shard update committed at global time {t2}");

    // A conflicting writer loses first-committer-wins, exactly like the
    // single-engine serving layer — the validation spans shards.
    let mut stale = cluster.begin()?;
    let mut winner = cluster.begin()?;
    winner.update(orders, &Key::int(2), &[(1, Value::Int(2))], None)?;
    winner.commit()?;
    stale.update(orders, &Key::int(2), &[(1, Value::Int(999))], None)?;
    match stale.commit() {
        Err(bitempo_core::Error::Conflict(_)) => println!("stale writer aborted (FCW)"),
        other => panic!("expected a conflict, got {other:?}"),
    }

    // Reads pin ONE global timestamp and fan out: every shard is cut
    // `AS OF` the same instant, so the snapshot is a prefix of the
    // global commit order — no shard can show a transaction another
    // shard is missing.
    let snap = cluster.snapshot();
    let read = snap.read()?;
    let view = read.view();
    println!("\ncurrent state pinned at {}:", read.at());
    let mut rows = view
        .scan(orders, &SysSpec::Current, &AppSpec::All, &[])?
        .rows;
    rows.sort();
    for row in &rows {
        println!("  {row}");
    }

    // Time travel works across the cluster too: `AS OF t1` is the
    // moment before the cross-shard pair landed.
    let at_t1 = view.scan(orders, &SysSpec::AsOf(t1), &AppSpec::All, &[])?;
    let qty = |rows: &[Row], id: i64| {
        rows.iter()
            .find(|r| r.get(0) == &Value::Int(id))
            .map(|r| r.get(1).clone())
            .expect("order present")
    };
    println!(
        "order 1 qty: {} as of {t1}, {} now",
        qty(&at_t1.rows, 1),
        qty(&rows, 1)
    );
    assert_eq!(qty(&at_t1.rows, 1), Value::Int(150));
    assert_eq!(qty(&rows, 1), Value::Int(151));
    assert_eq!(qty(&rows, 0), Value::Int(0), "cross-shard pair is atomic");
    drop(read);

    let c = cluster.counters();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "\ncluster counters: {} committed ({} single-shard, {} cross-shard), {} conflicts",
        load(&c.committed),
        load(&c.single_shard),
        load(&c.cross_shard),
        load(&c.conflicts)
    );
    println!("\nsharded_orders OK");
    Ok(())
}
