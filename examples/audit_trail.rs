//! Audit trail: trace who changed what, when — the paper's pure-key (K)
//! use case ("the need to trace and audit the changes made to a data set").
//!
//! Loads a small TPC-BiH instance, finds the most-edited customer, and
//! walks its version history along system time; then hunts for suspicious
//! order manipulations (R7-style version deltas).
//!
//! ```text
//! cargo run --release -p bitempo-examples --bin audit_trail
//! ```

use bitempo_core::Value;
use bitempo_dbgen::{col, ScaleConfig};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_workloads::{key, range, Ctx, QueryParams};

fn main() -> bitempo_core::Result<()> {
    // Generate and load a small benchmark instance into System A.
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.002));
    let mut engine = build_engine(SystemKind::A);
    let ids = loader::load_initial(engine.as_mut(), &data)?;
    loader::replay(engine.as_mut(), &ids, &history.archive, 1)?;
    engine.checkpoint();
    // Auditors touch history tables constantly — give them the Key+Time
    // index the paper's tuning study recommends for this workload.
    engine.apply_tuning(&TuningConfig::key_time())?;

    let params = QueryParams::derive(engine.as_ref())?;
    let ctx = Ctx::new(engine.as_ref())?;
    println!(
        "loaded {} transactions of history (system time now {})\n",
        history.archive.transactions.len(),
        engine.now()
    );

    // K1: the full version history of the most-edited customer.
    let versions = key::k1(&ctx, &params.hot_customer, SysSpec::All, AppSpec::All)?;
    let (sys_start, sys_end) = ctx.sys_cols(ctx.t.customer);
    println!(
        "customer {} has {} recorded versions:",
        params.hot_customer,
        versions.len()
    );
    for v in &versions {
        println!(
            "  balance {:>10}  recorded [{} .. {})",
            v.get(col::customer::ACCTBAL).to_string(),
            v.get(sys_start),
            v.get(sys_end),
        );
    }

    // K4: only the latest three versions — the usual audit entry point.
    let latest = key::k4(&ctx, &params.hot_customer, SysSpec::All, AppSpec::All, 3)?;
    println!("\nlatest {} versions fetched via Top-N (K4)", latest.len());

    // R7 generalizes this to *all* keys: which suppliers raised a price by
    // more than 7.5 % in a single update?
    let raisers = range::r7(&ctx)?;
    println!(
        "\nsuppliers with a >7.5 % single-update price raise (R7): {}",
        raisers.len()
    );
    for r in raisers.iter().take(5) {
        println!("  supplier {}", r.get(0));
    }

    // R1: how many state transitions did orders go through?
    let transitions = range::r1(&ctx)?;
    println!("\norder status transitions (R1):");
    for t in &transitions {
        println!("  {} -> {} : {} times", t.get(0), t.get(1), t.get(2));
    }

    // Sanity: the audit saw at least one delivery.
    assert!(transitions
        .iter()
        .any(|t| t.get(0) == &Value::str("O") && t.get(1) == &Value::str("F")));
    println!("\naudit_trail OK");
    Ok(())
}
