//! Analytical queries through time: TPC-H under time travel (the paper's H
//! workload), comparing "what we know now" against "what we knew then" and
//! "what was true then".
//!
//! ```text
//! cargo run --release -p bitempo-examples --bin order_analytics
//! ```

use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::TuningConfig;
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_workloads::{tpch, Ctx, QueryParams};

fn main() -> bitempo_core::Result<()> {
    // System C: the in-memory column store archetype — the paper's pick
    // for analytics.
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.002));
    let mut engine = build_engine(SystemKind::C);
    let ids = loader::load_initial(engine.as_mut(), &data)?;
    loader::replay(engine.as_mut(), &ids, &history.archive, 1)?;
    engine.checkpoint();
    engine.apply_tuning(&TuningConfig::none())?;

    let params = QueryParams::derive(engine.as_ref())?;
    let ctx = Ctx::new(engine.as_ref())?;

    // Q1 (pricing summary) now, and as of the initial load.
    println!("Q1 pricing summary, current state:");
    let now = tpch::q1(&ctx, &tpch::Tt::none())?;
    for row in &now {
        println!("  {row}");
    }
    println!("\nQ1 as recorded at the initial load (system time travel):");
    let then = tpch::q1(&ctx, &tpch::Tt::sys(params.sys_initial))?;
    for row in &then {
        println!("  {row}");
    }
    let count = |rows: &[bitempo_core::Row]| -> i64 {
        rows.iter().map(|r| r.get(9).as_int().unwrap_or(0)).sum()
    };
    println!(
        "\nlineitems counted: {} now vs {} at version 0",
        count(&now),
        count(&then)
    );

    // Q6 (forecast revenue) under application time travel: evaluate the
    // business rule against the world as it was valid mid-1995.
    let q6_now = tpch::q6(&ctx, &tpch::Tt::none())?;
    let q6_mid = tpch::q6(&ctx, &tpch::Tt::app(params.app_mid))?;
    println!(
        "\nQ6 revenue effect: {} (current) vs {} (valid {})",
        q6_now[0].get(0),
        q6_mid[0].get(0),
        params.app_mid
    );

    // Q5 (local supplier volume) across the two time dimensions.
    for (label, tt) in [
        ("current", tpch::Tt::none()),
        ("app time travel", tpch::Tt::app(params.app_mid)),
        ("sys time travel", tpch::Tt::sys(params.sys_initial)),
    ] {
        let rows = tpch::q5(&ctx, &tt)?;
        println!(
            "\nQ5 local supplier volume ({label}): {} nations",
            rows.len()
        );
        for row in rows.iter().take(3) {
            println!("  {row}");
        }
    }

    println!("\norder_analytics OK");
    Ok(())
}
