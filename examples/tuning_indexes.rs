//! The tuning study in miniature (paper §5.1/§5.3.2): measure the same
//! temporal queries under the out-of-the-box, Time-Index, Key+Time and
//! GiST settings on all four engine archetypes, and watch which access
//! paths the "optimizers" actually pick.
//!
//! ```text
//! cargo run --release -p bitempo-examples --bin tuning_indexes
//! ```

use bitempo_bench::runner::{measure, BenchConfig, Instance};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_workloads::{key, tt, Ctx};

fn main() -> bitempo_core::Result<()> {
    let cfg = BenchConfig {
        h: 0.001,
        m: 0.001,
        repetitions: 5,
        discard: 1,
        batch_size: 1,
        workers: bitempo_engine::api::default_workers(),
        query_timeout_millis: bitempo_bench::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
        trace: false,
        durability: bitempo_bench::runner::DurabilityMode::Async,
    };
    let mut inst = Instance::build(&cfg, &TuningConfig::none())?;
    let p = inst.params.clone();

    let settings: Vec<(&str, TuningConfig)> = vec![
        ("no index", TuningConfig::none()),
        ("Time Index", TuningConfig::time()),
        ("Key+Time", TuningConfig::key_time()),
        (
            "GiST",
            TuningConfig {
                time_index: true,
                key_time_index: true,
                gist: true,
                ..Default::default()
            },
        ),
    ];

    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>14}",
        "setting", "system", "T1 sys µs", "K1 past µs", "K1 access path"
    );
    for (label, tuning) in settings {
        inst.retune(&tuning)?;
        for kind in SystemKind::ALL {
            let engine = inst.engine(kind);
            let ctx = Ctx::new(engine)?;
            let t1 = measure(&cfg, || {
                tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
            })?;
            let k1 = measure(&cfg, || {
                key::k1(
                    &ctx,
                    &p.hot_customer,
                    SysSpec::AsOf(p.sys_initial),
                    AppSpec::All,
                )
            })?;
            // Peek at the plan the engine chose for the K1 probe.
            let access = engine
                .lookup_key(
                    ctx.t.customer,
                    &p.hot_customer,
                    &SysSpec::AsOf(p.sys_initial),
                    &AppSpec::All,
                )?
                .access;
            println!(
                "{:<12} {:<10} {:>14.1} {:>14.1}   {:?}",
                label,
                kind.name(),
                t1.micros(),
                k1.micros(),
                access
            );
        }
        println!();
    }

    println!(
        "observations to look for (paper §5.3.2, §5.5.1): indexes pay off only for\n\
         selective probes; System C never uses them; System B keeps its reconstruction\n\
         cost even when an index is chosen; GiST never beats the B-Tree."
    );
    Ok(())
}
