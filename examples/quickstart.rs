//! Quickstart: create a bitemporal table, modify it over a few
//! transactions, and time-travel through both dimensions.
//!
//! ```text
//! cargo run -p bitempo-examples --bin quickstart
//! ```

use bitempo_core::{
    AppDate, AppPeriod, Column, DataType, Key, Row, Schema, TableDef, TemporalClass, Value,
};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, SystemKind};

fn main() -> bitempo_core::Result<()> {
    // Pick any of the four engine archetypes — they share one API and one
    // logical data model; only the physics differ.
    let mut db = build_engine(SystemKind::A);

    // A bitemporal price list: `valid_time` is the application time.
    let def = TableDef::new(
        "price_list",
        Schema::new(vec![
            Column::new("item", DataType::Int),
            Column::new("price", DataType::Double),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("valid_time"),
    )?;
    let prices = db.create_table(def)?;

    // Transaction 1: item 1 costs 10.00, valid from January 2024 onward.
    let jan = AppDate::from_ymd(2024, 1, 1);
    db.insert(
        prices,
        Row::new(vec![Value::Int(1), Value::Double(10.00)]),
        Some(AppPeriod::since(jan)),
    )?;
    let t1 = db.commit();
    println!("committed initial price at system time {t1}");

    // Transaction 2: a March price rise — but only FOR PORTION OF the
    // application axis starting in March (sequenced update).
    let march = AppDate::from_ymd(2024, 3, 1);
    db.update(
        prices,
        &Key::int(1),
        &[(1, Value::Double(12.50))],
        Some(AppPeriod::since(march)),
    )?;
    let t2 = db.commit();
    println!("committed March price rise at system time {t2}");

    // Transaction 3: an audit correction rewrites the March rise to 11.00.
    db.update(
        prices,
        &Key::int(1),
        &[(1, Value::Double(11.00))],
        Some(AppPeriod::since(march)),
    )?;
    let t3 = db.commit();
    println!("committed audit correction at system time {t3}\n");

    // What does the price list look like *now*, across application time?
    println!("current state, all application time:");
    for row in db.scan(prices, &SysSpec::Current, &AppSpec::All, &[])?.rows {
        println!("  {row}");
    }

    // Time travel: what did we *believe* in February's system state?
    println!("\nas recorded at system time {t2} (before the correction):");
    for row in db
        .scan(prices, &SysSpec::AsOf(t2), &AppSpec::AsOf(march), &[])?
        .rows
    {
        println!("  {row}");
    }

    // Bitemporal point query: the price valid in February, as known now.
    let feb = AppDate::from_ymd(2024, 2, 1);
    let out = db.scan(prices, &SysSpec::Current, &AppSpec::AsOf(feb), &[])?;
    println!(
        "\nprice valid in February, known now: {}",
        out.rows[0].get(1)
    );
    assert_eq!(out.rows[0].get(1), &Value::Double(10.00));

    // The full bitemporal history: every version ever recorded.
    println!("\nfull bitemporal history (value, app period, sys period):");
    let mut all = db.scan(prices, &SysSpec::All, &AppSpec::All, &[])?.rows;
    all.sort();
    for row in all {
        println!("  {row}");
    }

    // And the audit view: versions superseded by the correction are still
    // reconstructable at their original system time.
    let believed_march = db
        .scan(prices, &SysSpec::AsOf(t2), &AppSpec::AsOf(march), &[])?
        .rows[0]
        .get(1)
        .clone();
    let corrected_march = db
        .scan(prices, &SysSpec::Current, &AppSpec::AsOf(march), &[])?
        .rows[0]
        .get(1)
        .clone();
    println!("\nMarch price as believed at {t2}: {believed_march}; after audit: {corrected_march}");
    assert_eq!(believed_march, Value::Double(12.50));
    assert_eq!(corrected_march, Value::Double(11.00));
    println!("\nquickstart OK");
    Ok(())
}
