//! Cost-based access-path selection with adaptive feedback.
//!
//! The engines' per-partition scan used to pick its access path with a
//! priority-ordered if-chain gated on a single hard-coded selectivity
//! threshold — exactly the misplanning regime the paper observed: *"for
//! many workloads these indexes go unused, since they only work on very
//! selective workloads"* (§5.9), and plans flip between index lookups and
//! table scans on small estimate changes (§5.4.1). This module replaces the
//! threshold with a tiny Cascades-style memo: every physical alternative
//! the planner knows (sequential scan, primary-key lookup, B-Tree range,
//! GiST rectangle probe, temporal-index probe) is enumerated as an
//! [`Alternative`], costed from the partition's row count and the
//! estimator-supplied candidate fraction, and the cheapest wins.
//!
//! Two properties are deliberate:
//!
//! * **Costs price total work, not wall clock.** A morsel-parallel
//!   sequential scan visits the same rows at any worker count, so the cost
//!   of a plan — and therefore the chosen plan — is identical for every
//!   `workers` setting. The repo's sequential-equivalence invariant (byte
//!   identical rows *and* equal scan metrics across worker counts) depends
//!   on this.
//! * **Estimates close the loop.** Every estimator here is an upper bound
//!   that can be wildly loose (a stab into a gap of the interval index
//!   estimates half the partition and hits nothing). When adaptive
//!   re-planning is enabled, the observed actual-vs-estimated row counts
//!   feed a per-(site, predicate-class, path-family) [`correction`] factor,
//!   so a repeated misestimated query re-plans onto the cheaper path.
//!
//! The plan-IR validator from [`crate::plan`] acts as the optimizer's
//! output gate: [`choice_plan`] renders a winning choice as a [`PlanNode`]
//! scan for `plan::validate`, which rejects inconsistent shapes (e.g. a
//! temporal-index probe with no temporal dimension pushed).

use crate::plan::{AppClass, Classification, PlanNode, ScanNode, SysClass};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// The physical path families a partition scan can take. Ordered so ties in
/// cost resolve toward the more specific path (the legacy planner's
/// priority order, preserved as a tie-break only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathKind {
    /// Morsel-parallel sequential scan over the whole partition.
    SeqScan,
    /// GiST (R-Tree) rectangle probe on the period rectangles.
    GistProbe,
    /// B-Tree range probe on an ordered index's leading column.
    BTreeRange,
    /// Timeline + interval-index probe (`bitempo-tindex`).
    TemporalProbe,
    /// Exact composite-prefix lookup on the primary-key index.
    KeyLookup,
}

impl PathKind {
    /// Tie-break rank: at equal cost the more specific path wins, matching
    /// the legacy priority order (key lookup > temporal probe > B-Tree >
    /// GiST > sequential). In particular a temporal probe still underbids a
    /// B-Tree range at *equal* estimated fraction — the old `<=` tie-break.
    fn rank(self) -> u8 {
        match self {
            PathKind::KeyLookup => 4,
            PathKind::TemporalProbe => 3,
            PathKind::BTreeRange => 2,
            PathKind::GistProbe => 1,
            PathKind::SeqScan => 0,
        }
    }
}

impl fmt::Display for PathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PathKind::SeqScan => "seq",
            PathKind::GistProbe => "gist",
            PathKind::BTreeRange => "btree",
            PathKind::TemporalProbe => "tindex",
            PathKind::KeyLookup => "key-lookup",
        })
    }
}

/// Per-row and startup weights of the cost model. The absolute numbers are
/// unitless ("work per version record touched"); only the ratios matter.
/// Defaults put the index-vs-scan crossover near the regime the paper
/// measured: a probe touches candidate rows through pointer-chasing probe
/// machinery (~6x a sequential visit), a GiST probe pays more (~8x,
/// rectangle comparisons on an overlap-heavy tree), and index paths pay a
/// logarithmic descent as startup.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Work to visit one row sequentially.
    pub seq_row: f64,
    /// Work per candidate row of a B-Tree or temporal-index probe.
    pub probe_row: f64,
    /// Work per candidate row of a GiST probe.
    pub gist_row: f64,
    /// Work per candidate row of an exact key lookup. Cheap on purpose: the
    /// candidate set is exact (every key column pinned), so a lookup never
    /// visits more rows than the scan it replaces.
    pub key_row: f64,
    /// Startup work per level of index descent (multiplied by `log2(n+1)`).
    pub node_visit: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            seq_row: 1.0,
            probe_row: 6.0,
            gist_row: 8.0,
            key_row: 1.0,
            node_visit: 4.0,
        }
    }
}

/// One physical alternative for answering a partition scan.
#[derive(Debug, Clone)]
pub struct Alternative {
    /// Path family.
    pub kind: PathKind,
    /// Display name (index name, or `"seq"`).
    pub name: String,
    /// Estimated fraction of the partition's rows the path would visit.
    /// `None` means the path visits every row (sequential scan).
    pub fraction: Option<f64>,
}

impl Alternative {
    /// The always-available sequential scan.
    pub fn seq() -> Alternative {
        Alternative {
            kind: PathKind::SeqScan,
            name: "seq".into(),
            fraction: None,
        }
    }

    /// An index-backed alternative with an estimated candidate fraction.
    pub fn new(kind: PathKind, name: impl Into<String>, fraction: Option<f64>) -> Alternative {
        Alternative {
            kind,
            name: name.into(),
            fraction,
        }
    }
}

/// An [`Alternative`] after costing: corrected fraction, estimated rows,
/// and total work.
#[derive(Debug, Clone)]
pub struct CostedAlt {
    /// Path family.
    pub kind: PathKind,
    /// Display name.
    pub name: String,
    /// Raw estimator fraction, before feedback correction (`None` = all).
    pub raw_fraction: Option<f64>,
    /// Fraction after feedback correction, clamped to `[0, 1]`.
    pub fraction: f64,
    /// Rows the raw estimate predicts the path visits.
    pub raw_rows: u64,
    /// Rows the corrected estimate predicts the path visits.
    pub est_rows: u64,
    /// Total estimated work.
    pub cost: f64,
}

/// The memo's verdict: the cheapest alternative plus every costed
/// alternative for diagnostics and feedback.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The winning alternative.
    pub winner: CostedAlt,
    /// Index of the winner in [`Decision::alternatives`] (and in the order
    /// alternatives were [`Memo::add`]ed).
    pub winner_index: usize,
    /// All alternatives, in insertion order.
    pub alternatives: Vec<CostedAlt>,
}

/// A one-group Cascades-style memo: physical alternatives for a single
/// partition scan, costed against the partition's row count.
#[derive(Debug, Clone)]
pub struct Memo {
    rows: usize,
    params: CostParams,
    alts: Vec<Alternative>,
}

impl Memo {
    /// A memo for a partition holding `rows` live versions.
    pub fn new(rows: usize) -> Memo {
        Memo::with_params(rows, CostParams::default())
    }

    /// A memo with explicit cost weights.
    pub fn with_params(rows: usize, params: CostParams) -> Memo {
        Memo {
            rows,
            params,
            alts: Vec::new(),
        }
    }

    /// Registers one alternative. Insertion order is preserved so callers
    /// can keep a parallel list of execution closures.
    pub fn add(&mut self, alt: Alternative) {
        self.alts.push(alt);
    }

    /// Number of registered alternatives.
    pub fn len(&self) -> usize {
        self.alts.len()
    }

    /// True when no alternative has been registered.
    pub fn is_empty(&self) -> bool {
        self.alts.is_empty()
    }

    /// Costs every alternative — `correct` maps a (family, raw fraction)
    /// pair to the corrected fraction, identity when feedback is off — and
    /// returns the cheapest (ties resolve by [`PathKind`] rank). `None`
    /// only when no alternative was registered.
    pub fn best(&self, correct: &dyn Fn(PathKind, f64) -> f64) -> Option<Decision> {
        let n = self.rows as f64;
        let startup = self.params.node_visit * (n + 1.0).log2();
        let alternatives: Vec<CostedAlt> = self
            .alts
            .iter()
            .map(|alt| {
                let raw = alt.fraction.unwrap_or(1.0).clamp(0.0, 1.0);
                let corrected = match alt.fraction {
                    Some(f) => correct(alt.kind, f).clamp(0.0, 1.0),
                    None => 1.0,
                };
                let rows_of = |f: f64| (f * n).ceil().max(0.0);
                let est = rows_of(corrected);
                let cost = match alt.kind {
                    PathKind::SeqScan => self.params.seq_row * n,
                    PathKind::KeyLookup => self.params.key_row * est,
                    PathKind::BTreeRange | PathKind::TemporalProbe => {
                        startup + self.params.probe_row * est
                    }
                    PathKind::GistProbe => startup + self.params.gist_row * est,
                };
                CostedAlt {
                    kind: alt.kind,
                    name: alt.name.clone(),
                    raw_fraction: alt.fraction,
                    fraction: corrected,
                    raw_rows: rows_of(raw) as u64,
                    est_rows: est as u64,
                    cost,
                }
            })
            .collect();
        let winner_index = alternatives
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| b.kind.rank().cmp(&a.kind.rank()))
            })
            .map(|(i, _)| i)?;
        let winner = alternatives.get(winner_index)?.clone();
        Some(Decision {
            winner,
            winner_index,
            alternatives,
        })
    }
}

/// Shape of the pushed value predicates, for feedback keying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValuePreds {
    /// No column predicates.
    None,
    /// Every column predicate is an equality.
    Point,
    /// At least one column predicate is a range.
    Range,
}

/// The predicate class of a scan: the granularity at which the feedback
/// store remembers estimate error. Two scans of the same class against the
/// same site are assumed to misestimate the same way — the paper's query
/// classes (T1–T5, K1–K7) each map to a single class per table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredClass {
    /// System-time constraint class.
    pub sys: SysClass,
    /// Application-time constraint class.
    pub app: AppClass,
    /// Value-predicate shape.
    pub values: ValuePreds,
}

impl fmt::Display for PredClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sys:{:?}/app:{:?}/preds:{:?}",
            self.sys, self.app, self.values
        )
    }
}

/// Where a scan ran, for feedback keying. Borrowed labels, mirroring the
/// engine crate's `ScanSite` without depending on it.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackSite<'a> {
    /// Engine display name.
    pub engine: &'a str,
    /// Table name.
    pub table: &'a str,
    /// Physical partition label.
    pub partition: &'a str,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct FeedbackKey {
    engine: String,
    table: String,
    partition: String,
    class: PredClass,
    family: PathKind,
}

impl FeedbackKey {
    fn new(site: &FeedbackSite<'_>, class: &PredClass, family: PathKind) -> FeedbackKey {
        FeedbackKey {
            engine: site.engine.to_string(),
            table: site.table.to_string(),
            partition: site.partition.to_string(),
            class: *class,
            family,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Correction {
    ratio: f64,
    samples: u64,
}

/// One row of [`feedback_snapshot`]: the learned correction for a
/// (site, predicate-class, path-family) key.
#[derive(Debug, Clone)]
pub struct FeedbackEntry {
    /// Engine display name.
    pub engine: String,
    /// Table name.
    pub table: String,
    /// Physical partition label.
    pub partition: String,
    /// Predicate class.
    pub class: PredClass,
    /// Path family the correction applies to.
    pub family: PathKind,
    /// Multiplicative correction applied to raw fractions.
    pub correction: f64,
    /// Observations folded into the correction.
    pub samples: u64,
}

/// Corrections outside this band are clamped: one catastrophic observation
/// may shrink an estimate 64-fold, never to zero (estimates stay falsifiable
/// — a corrected plan still observes and can correct back).
const CORRECTION_CLAMP: (f64, f64) = (1.0 / 64.0, 64.0);

/// EWMA weight of the newest observation.
const ALPHA: f64 = 0.5;

thread_local! {
    static FEEDBACK: RefCell<BTreeMap<FeedbackKey, Correction>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Records one actual-vs-estimated observation for a scan site, predicate
/// class, and path family. `est_rows` must be the *raw* (uncorrected)
/// estimate so the stored ratio converges on the estimator's true error.
/// The store is thread-local (like the `core::obs` trace recorder), so
/// observation never needs synchronization with concurrent scans.
pub fn observe(
    site: &FeedbackSite<'_>,
    class: &PredClass,
    family: PathKind,
    est_rows: u64,
    actual_rows: u64,
) {
    let fresh = (actual_rows as f64 + 1.0) / (est_rows as f64 + 1.0);
    FEEDBACK.with(|f| {
        let mut map = f.borrow_mut();
        let entry = map
            .entry(FeedbackKey::new(site, class, family))
            .or_insert(Correction {
                ratio: fresh,
                samples: 0,
            });
        if entry.samples > 0 {
            entry.ratio = ALPHA * fresh + (1.0 - ALPHA) * entry.ratio;
        }
        entry.ratio = entry.ratio.clamp(CORRECTION_CLAMP.0, CORRECTION_CLAMP.1);
        entry.samples += 1;
    });
}

/// The learned multiplicative correction for a key, `1.0` when nothing has
/// been observed.
pub fn correction(site: &FeedbackSite<'_>, class: &PredClass, family: PathKind) -> f64 {
    FEEDBACK.with(|f| {
        f.borrow()
            .get(&FeedbackKey::new(site, class, family))
            .map_or(1.0, |c| c.ratio)
    })
}

/// Clears every learned correction on this thread (test and benchmark
/// isolation).
pub fn reset_feedback() {
    FEEDBACK.with(|f| f.borrow_mut().clear());
}

/// Every learned correction, in deterministic (sorted-key) order.
pub fn feedback_snapshot() -> Vec<FeedbackEntry> {
    FEEDBACK.with(|f| {
        f.borrow()
            .iter()
            .map(|(k, c)| FeedbackEntry {
                engine: k.engine.clone(),
                table: k.table.clone(),
                partition: k.partition.clone(),
                class: k.class,
                family: k.family,
                correction: c.ratio,
                samples: c.samples,
            })
            .collect()
    })
}

/// Renders a winning choice as the plan-IR scan it implies, for validation
/// by [`crate::plan::validate`] — the optimizer's output gate. A
/// temporal-probe winner becomes a probing scan (which the validator only
/// accepts when a temporal dimension is pushed); everything else stays a
/// `Seq`-kind scan, whose full-history flag is derived from the class.
pub fn choice_plan(table: &str, class: &PredClass, kind: PathKind) -> PlanNode {
    let classification = Classification {
        sys_pushed: class.sys != SysClass::All,
        app_pushed: class.app != AppClass::All,
        pushed_cols: match class.values {
            ValuePreds::None => Vec::new(),
            ValuePreds::Point | ValuePreds::Range => vec!["pushed-preds".into()],
        },
        residual_cols: Vec::new(),
    };
    let scan = ScanNode::classified(table, class.sys, class.app, classification);
    PlanNode::Scan(match kind {
        PathKind::TemporalProbe => scan.probing(),
        _ => scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::validate;

    fn identity(_: PathKind, f: f64) -> f64 {
        f
    }

    fn site() -> FeedbackSite<'static> {
        FeedbackSite {
            engine: "test",
            table: "t",
            partition: "p",
        }
    }

    fn class() -> PredClass {
        PredClass {
            sys: SysClass::AsOf,
            app: AppClass::All,
            values: ValuePreds::None,
        }
    }

    #[test]
    fn selective_probe_beats_seq_and_crossover_flips() {
        let mut memo = Memo::new(1000);
        memo.add(Alternative::seq());
        memo.add(Alternative::new(PathKind::TemporalProbe, "tix", Some(0.01)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::TemporalProbe);
        assert_eq!(d.winner.est_rows, 10);

        let mut memo = Memo::new(1000);
        memo.add(Alternative::seq());
        memo.add(Alternative::new(PathKind::TemporalProbe, "tix", Some(0.9)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::SeqScan);
    }

    #[test]
    fn btree_vs_tindex_tie_resolves_to_tindex() {
        // Equal fractions -> equal cost -> the legacy `<=` tie-break is
        // preserved through the rank order.
        let mut memo = Memo::new(1000);
        memo.add(Alternative::seq());
        memo.add(Alternative::new(PathKind::BTreeRange, "ix", Some(0.01)));
        memo.add(Alternative::new(PathKind::TemporalProbe, "tix", Some(0.01)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::TemporalProbe);
        // A strictly cheaper B-Tree wins on cost, not rank.
        let mut memo = Memo::new(1000);
        memo.add(Alternative::seq());
        memo.add(Alternative::new(PathKind::BTreeRange, "ix", Some(0.005)));
        memo.add(Alternative::new(PathKind::TemporalProbe, "tix", Some(0.01)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::BTreeRange);
    }

    #[test]
    fn key_lookup_never_loses_to_seq() {
        // Even on a tiny partition the exact probe wins (est rows <= n and
        // key_row == seq_row, with rank breaking the tie).
        let mut memo = Memo::new(3);
        memo.add(Alternative::seq());
        memo.add(Alternative::new(PathKind::KeyLookup, "pk", Some(1.0)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::KeyLookup);
    }

    #[test]
    fn gist_costs_more_per_row_than_btree() {
        let mut memo = Memo::new(1000);
        memo.add(Alternative::new(PathKind::BTreeRange, "ix", Some(0.05)));
        memo.add(Alternative::new(PathKind::GistProbe, "gist", Some(0.05)));
        let d = memo.best(&identity).unwrap();
        assert_eq!(d.winner.kind, PathKind::BTreeRange);
    }

    #[test]
    fn empty_memo_has_no_decision() {
        assert!(Memo::new(10).best(&identity).is_none());
    }

    #[test]
    fn feedback_correction_flips_a_misestimated_plan() {
        reset_feedback();
        let apply = |k: PathKind, f: f64| (f * correction(&site(), &class(), k)).clamp(0.0, 1.0);
        let build = || {
            let mut memo = Memo::new(1000);
            memo.add(Alternative::seq());
            memo.add(Alternative::new(PathKind::TemporalProbe, "tix", Some(0.5)));
            memo
        };
        // First plan: the raw 50 % estimate keeps the probe out.
        let d = build().best(&apply).unwrap();
        assert_eq!(d.winner.kind, PathKind::SeqScan);
        // The scan actually emitted nothing: observe and re-plan.
        observe(&site(), &class(), PathKind::TemporalProbe, 500, 0);
        assert!(correction(&site(), &class(), PathKind::TemporalProbe) < 0.1);
        let d = build().best(&apply).unwrap();
        assert_eq!(d.winner.kind, PathKind::TemporalProbe);
        // A different class is untouched.
        let other = PredClass {
            sys: SysClass::Range,
            ..class()
        };
        assert_eq!(correction(&site(), &other, PathKind::TemporalProbe), 1.0);
        reset_feedback();
    }

    #[test]
    fn corrections_are_clamped_and_ewma_smoothed() {
        reset_feedback();
        observe(&site(), &class(), PathKind::BTreeRange, 1_000_000, 0);
        let c = correction(&site(), &class(), PathKind::BTreeRange);
        assert_eq!(c, CORRECTION_CLAMP.0, "floor clamp");
        // A perfectly accurate follow-up pulls the ratio back up.
        observe(&site(), &class(), PathKind::BTreeRange, 100, 100);
        assert!(correction(&site(), &class(), PathKind::BTreeRange) > c);
        reset_feedback();
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        reset_feedback();
        observe(&site(), &class(), PathKind::TemporalProbe, 10, 5);
        let other = FeedbackSite {
            engine: "alpha",
            ..site()
        };
        observe(&other, &class(), PathKind::BTreeRange, 10, 5);
        let snap = feedback_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].engine, "alpha");
        assert_eq!(snap[1].family, PathKind::TemporalProbe);
        assert_eq!(snap[0].samples, 1);
        reset_feedback();
    }

    #[test]
    fn choice_plans_validate_as_output_gate() {
        // A probing winner with a pushed temporal dimension passes.
        let plan = choice_plan("orders", &class(), PathKind::TemporalProbe);
        assert!(validate(&plan).is_ok());
        // A sequential winner over an unconstrained scan is full-history.
        let all = PredClass {
            sys: SysClass::All,
            app: AppClass::All,
            values: ValuePreds::None,
        };
        assert!(validate(&choice_plan("orders", &all, PathKind::SeqScan)).is_ok());
        // The gate rejects an impossible shape: a temporal probe with no
        // temporal dimension constrained.
        let errs = validate(&choice_plan("orders", &all, PathKind::TemporalProbe)).unwrap_err();
        assert!(!errs.is_empty());
    }
}
