//! Static query-plan descriptions and their validator.
//!
//! The paper's execution-layer findings (§5.3–§5.6) all reduce to *what the
//! plan did with the temporal predicates*: were they pushed into the scan or
//! evaluated as residual filters, did an unconstrained read get recognised
//! as a full-history scan, and did the temporal operators produce coalesced
//! output. Bugs in any of these are silent — the answer is still correct,
//! only the measurement is meaningless. This module makes the plan shape a
//! checkable artifact: workloads build a [`PlanNode`] tree describing the
//! plan they are about to execute, and [`validate`] rejects trees that dodge
//! the questions (a scan without a predicate classification, an
//! unconstrained scan not marked full-history, a temporal join that does not
//! declare whether its output is coalesced).
//!
//! The validator is purely static — it never executes anything — so it runs
//! under `debug_assertions` in the engines and as the `lint-plans` bench
//! experiment without perturbing measurements.

use std::fmt;

/// System-time constraint class of a scan, mirroring
/// `bitempo_engine::SysSpec` without depending on the engine crate.
/// Ordered and hashable so [`crate::optimizer`] can key its feedback store
/// on predicate classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SysClass {
    /// Implicit current version only.
    Current,
    /// `AS OF SYSTEM TIME t`.
    AsOf,
    /// `SYSTEM TIME BETWEEN a AND b`.
    Range,
    /// Unconstrained — every version ever recorded.
    All,
}

/// Application-time constraint class of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppClass {
    /// `AS OF APPLICATION TIME d`.
    AsOf,
    /// `APPLICATION TIME BETWEEN a AND b`.
    Range,
    /// Unconstrained.
    All,
}

/// The physical shape of a leaf table access. Plans must say *how* a scan
/// intends to reach its rows, because the paper's latency figures are only
/// comparable when the access path is known (a sequential pass and a
/// temporal-index probe can return identical rows at wildly different cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScanKind {
    /// Sequential pass over the partition(s); may still use conventional
    /// B-Tree/GiST paths chosen by the engine.
    #[default]
    Seq,
    /// Probe of the `bitempo-tindex` Timeline/interval index: the plan
    /// commits to reaching rows through a temporal constraint, so at least
    /// one temporal dimension must be pushed and the scan cannot be
    /// full-history.
    TemporalIndexProbe,
}

/// How a scan disposed of each predicate: pushed into the access path or
/// evaluated as a residual filter on the scan's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// The system-time constraint is enforced by the scan itself.
    pub sys_pushed: bool,
    /// The application-time constraint is enforced by the scan itself.
    pub app_pushed: bool,
    /// Column predicates pushed into the scan (by name).
    pub pushed_cols: Vec<String>,
    /// Column predicates left for a residual filter above the scan.
    pub residual_cols: Vec<String>,
}

/// A leaf scan: one table access with its temporal constraint classes and a
/// mandatory predicate classification.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// Table being scanned.
    pub table: String,
    /// System-time constraint class.
    pub sys: SysClass,
    /// Application-time constraint class.
    pub app: AppClass,
    /// How the predicates were disposed of. `None` means the plan builder
    /// never thought about it — exactly what [`validate`] rejects.
    pub classification: Option<Classification>,
    /// Declared full-history scan: the plan admits it reads every version
    /// (the paper's T5 "all versions" yardstick). Mandatory when nothing
    /// constrains the scan; forbidden when something does.
    pub full_history: bool,
    /// Physical access shape; see [`ScanKind`].
    pub kind: ScanKind,
}

impl ScanNode {
    /// Builds a scan with its classification in one step — the constructor
    /// plan builders should use. `full_history` is derived, not declared:
    /// a scan is full-history exactly when no temporal constraint and no
    /// pushed column predicate narrows it.
    pub fn classified(
        table: impl Into<String>,
        sys: SysClass,
        app: AppClass,
        classification: Classification,
    ) -> ScanNode {
        let unconstrained = sys == SysClass::All
            && app == AppClass::All
            && classification.pushed_cols.is_empty()
            && classification.residual_cols.is_empty();
        ScanNode {
            table: table.into(),
            sys,
            app,
            classification: Some(classification),
            full_history: unconstrained,
            kind: ScanKind::Seq,
        }
    }

    /// This scan re-shaped as a temporal-index probe. Validation enforces
    /// that a probing scan pushes at least one temporal dimension.
    #[must_use]
    pub fn probing(mut self) -> ScanNode {
        self.kind = ScanKind::TemporalIndexProbe;
        self
    }
}

/// A statically checkable query plan. Variants mirror the operator set in
/// [`crate::ops`] / [`crate::temporal`]; the tree is description, not
/// executable code.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Leaf table access.
    Scan(ScanNode),
    /// Residual row filter.
    Filter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Human-readable predicate (for diagnostics only).
        predicate: String,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<PlanNode>,
        /// Retained columns (for diagnostics only).
        cols: Vec<String>,
    },
    /// Non-temporal equi-join.
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Left join keys.
        left_keys: Vec<String>,
        /// Right join keys (must pair with `left_keys`).
        right_keys: Vec<String>,
    },
    /// Temporal (overlap) join.
    TemporalJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Equi-key part of the join.
        keys: Vec<String>,
        /// Whether the output periods are coalesced. Plans must *declare*
        /// this (`Some(..)`) so the workaround's known coalescing gap
        /// (paper §5.6.2) is visible, not forgotten.
        coalesced: Option<bool>,
    },
    /// Temporal aggregation over version periods.
    TemporalAggregate {
        /// Input plan.
        input: Box<PlanNode>,
        /// `"event-sweep"` or `"boundary-points"` (the naive SQL:2011
        /// formulation the paper measured, §5.6.1).
        algorithm: String,
        /// Whether adjacent equal-value intervals are coalesced; must be
        /// declared, as for [`PlanNode::TemporalJoin`].
        coalesced: Option<bool>,
    },
    /// Plain grouping aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PlanNode>,
        /// Group-by columns (for diagnostics only).
        group_by: Vec<String>,
        /// Aggregate expressions (for diagnostics only).
        aggs: Vec<String>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Sort keys (for diagnostics only).
        keys: Vec<String>,
    },
    /// Top-N.
    TopN {
        /// Input plan.
        input: Box<PlanNode>,
        /// Row limit.
        n: usize,
    },
}

/// One rule violation found by [`validate`], with the path to the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanViolation {
    /// `/`-separated operator path from the root (e.g. `TopN/Scan(orders)`).
    pub path: String,
    /// What the node failed to declare or declared inconsistently.
    pub problem: String,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.problem)
    }
}

/// Statically validates a plan tree. Returns every violation, not just the
/// first, so a failing `lint-plans` run reads like a lint report.
pub fn validate(plan: &PlanNode) -> Result<(), Vec<PlanViolation>> {
    let mut violations = Vec::new();
    walk(plan, "", &mut violations);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn walk(node: &PlanNode, prefix: &str, out: &mut Vec<PlanViolation>) {
    let path = |label: String| {
        if prefix.is_empty() {
            label
        } else {
            format!("{prefix}/{label}")
        }
    };
    match node {
        PlanNode::Scan(scan) => {
            let label = path(format!("Scan({})", scan.table));
            check_scan(scan, &label, out);
        }
        PlanNode::Filter { input, .. } => walk(input, &path("Filter".into()), out),
        PlanNode::Project { input, .. } => walk(input, &path("Project".into()), out),
        PlanNode::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let label = path("HashJoin".into());
            if left_keys.is_empty() {
                out.push(PlanViolation {
                    path: label.clone(),
                    problem: "hash join with no equi-keys (cross product)".into(),
                });
            }
            if left_keys.len() != right_keys.len() {
                out.push(PlanViolation {
                    path: label.clone(),
                    problem: format!(
                        "join key arity mismatch: {} left vs {} right",
                        left_keys.len(),
                        right_keys.len()
                    ),
                });
            }
            walk(left, &label, out);
            walk(right, &label, out);
        }
        PlanNode::TemporalJoin {
            left,
            right,
            coalesced,
            ..
        } => {
            let label = path("TemporalJoin".into());
            if coalesced.is_none() {
                out.push(PlanViolation {
                    path: label.clone(),
                    problem: "temporal join must declare whether its output is coalesced \
                              (the SQL:2011 workaround is not, paper §5.6.2)"
                        .into(),
                });
            }
            walk(left, &label, out);
            walk(right, &label, out);
        }
        PlanNode::TemporalAggregate {
            input,
            algorithm,
            coalesced,
        } => {
            let label = path(format!("TemporalAggregate[{algorithm}]"));
            if coalesced.is_none() {
                out.push(PlanViolation {
                    path: label.clone(),
                    problem: "temporal aggregate must declare whether its output is coalesced"
                        .into(),
                });
            }
            if algorithm != "event-sweep" && algorithm != "boundary-points" {
                out.push(PlanViolation {
                    path: label.clone(),
                    problem: format!("unknown temporal aggregation algorithm `{algorithm}`"),
                });
            }
            walk(input, &label, out);
        }
        PlanNode::Aggregate { input, .. } => walk(input, &path("Aggregate".into()), out),
        PlanNode::Sort { input, .. } => walk(input, &path("Sort".into()), out),
        PlanNode::TopN { input, .. } => walk(input, &path("TopN".into()), out),
    }
}

fn check_scan(scan: &ScanNode, label: &str, out: &mut Vec<PlanViolation>) {
    let Some(class) = &scan.classification else {
        out.push(PlanViolation {
            path: label.to_string(),
            problem: "scan does not classify its predicates into pushed vs residual".into(),
        });
        return;
    };
    if let Some(col) = class
        .pushed_cols
        .iter()
        .find(|c| class.residual_cols.contains(c))
    {
        out.push(PlanViolation {
            path: label.to_string(),
            problem: format!("column `{col}` classified both pushed and residual"),
        });
    }
    let unconstrained = scan.sys == SysClass::All
        && scan.app == AppClass::All
        && class.pushed_cols.is_empty()
        && class.residual_cols.is_empty();
    if unconstrained && !scan.full_history {
        out.push(PlanViolation {
            path: label.to_string(),
            problem: "nothing constrains this scan — it must be declared full-history \
                      (every version is read, the paper's T5 yardstick)"
                .into(),
        });
    }
    if !unconstrained && scan.full_history {
        out.push(PlanViolation {
            path: label.to_string(),
            problem: "scan is constrained yet declared full-history".into(),
        });
    }
    if scan.kind == ScanKind::TemporalIndexProbe {
        if !class.sys_pushed && !class.app_pushed {
            out.push(PlanViolation {
                path: label.to_string(),
                problem: "temporal-index probe pushes no temporal dimension — the index \
                          has nothing to probe with"
                    .into(),
            });
        }
        if scan.full_history {
            out.push(PlanViolation {
                path: label.to_string(),
                problem: "temporal-index probe declared full-history — an unconstrained \
                          read cannot come from an index probe"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constrained_scan() -> PlanNode {
        PlanNode::Scan(ScanNode::classified(
            "orders",
            SysClass::AsOf,
            AppClass::All,
            Classification {
                sys_pushed: true,
                ..Classification::default()
            },
        ))
    }

    #[test]
    fn classified_constructor_derives_full_history() {
        let s = ScanNode::classified("t", SysClass::All, AppClass::All, Classification::default());
        assert!(s.full_history);
        let s = ScanNode::classified(
            "t",
            SysClass::AsOf,
            AppClass::All,
            Classification::default(),
        );
        assert!(!s.full_history);
    }

    #[test]
    fn valid_plan_passes() {
        let plan = PlanNode::TopN {
            input: Box::new(PlanNode::Aggregate {
                input: Box::new(constrained_scan()),
                group_by: vec!["status".into()],
                aggs: vec!["sum(total)".into()],
            }),
            n: 10,
        };
        assert!(validate(&plan).is_ok());
    }

    #[test]
    fn missing_classification_is_rejected() {
        let plan = PlanNode::Scan(ScanNode {
            table: "orders".into(),
            sys: SysClass::Current,
            app: AppClass::All,
            classification: None,
            full_history: false,
            kind: ScanKind::Seq,
        });
        let errs = validate(&plan).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].problem.contains("pushed vs residual"));
        assert_eq!(errs[0].path, "Scan(orders)");
    }

    #[test]
    fn unconstrained_scan_must_declare_full_history() {
        let plan = PlanNode::Scan(ScanNode {
            table: "orders".into(),
            sys: SysClass::All,
            app: AppClass::All,
            classification: Some(Classification::default()),
            full_history: false,
            kind: ScanKind::Seq,
        });
        let errs = validate(&plan).unwrap_err();
        assert!(errs[0].problem.contains("full-history"));
    }

    #[test]
    fn constrained_scan_cannot_claim_full_history() {
        let plan = PlanNode::Scan(ScanNode {
            table: "orders".into(),
            sys: SysClass::AsOf,
            app: AppClass::All,
            classification: Some(Classification {
                sys_pushed: true,
                ..Classification::default()
            }),
            full_history: true,
            kind: ScanKind::Seq,
        });
        let errs = validate(&plan).unwrap_err();
        assert!(errs[0].problem.contains("declared full-history"));
    }

    #[test]
    fn temporal_operators_must_declare_coalescing() {
        let plan = PlanNode::TemporalAggregate {
            input: Box::new(constrained_scan()),
            algorithm: "event-sweep".into(),
            coalesced: None,
        };
        let errs = validate(&plan).unwrap_err();
        assert!(errs[0].problem.contains("coalesced"));

        let plan = PlanNode::TemporalJoin {
            left: Box::new(constrained_scan()),
            right: Box::new(constrained_scan()),
            keys: vec!["id".into()],
            coalesced: Some(false),
        };
        assert!(validate(&plan).is_ok());
    }

    #[test]
    fn join_key_arity_checked_and_all_violations_reported() {
        let plan = PlanNode::HashJoin {
            left: Box::new(PlanNode::Scan(ScanNode {
                table: "l".into(),
                sys: SysClass::Current,
                app: AppClass::All,
                classification: None,
                full_history: false,
                kind: ScanKind::Seq,
            })),
            right: Box::new(constrained_scan()),
            left_keys: vec!["a".into(), "b".into()],
            right_keys: vec!["a".into()],
        };
        let errs = validate(&plan).unwrap_err();
        // Arity mismatch AND the left scan's missing classification.
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().any(|e| e.problem.contains("arity")));
        assert!(errs.iter().any(|e| e.path == "HashJoin/Scan(l)"));
    }

    #[test]
    fn violation_paths_name_the_route() {
        let plan = PlanNode::Filter {
            input: Box::new(PlanNode::Scan(ScanNode {
                table: "x".into(),
                sys: SysClass::Current,
                app: AppClass::All,
                classification: None,
                full_history: false,
                kind: ScanKind::Seq,
            })),
            predicate: "v > 3".into(),
        };
        let errs = validate(&plan).unwrap_err();
        assert_eq!(errs[0].path, "Filter/Scan(x)");
        assert!(errs[0].to_string().starts_with("Filter/Scan(x): "));
    }

    #[test]
    fn probe_scan_must_push_a_temporal_dimension() {
        // A probing scan with system time pushed is fine.
        let ok = PlanNode::Scan(
            ScanNode::classified(
                "orders",
                SysClass::AsOf,
                AppClass::All,
                Classification {
                    sys_pushed: true,
                    ..Classification::default()
                },
            )
            .probing(),
        );
        assert!(validate(&ok).is_ok());
        // A probing scan whose temporal predicates are all residual is not:
        // the index would have nothing to probe with.
        let bad = PlanNode::Scan(
            ScanNode::classified(
                "orders",
                SysClass::AsOf,
                AppClass::All,
                Classification::default(),
            )
            .probing(),
        );
        let errs = validate(&bad).unwrap_err();
        assert!(errs[0].problem.contains("nothing to probe"));
    }

    #[test]
    fn probe_scan_cannot_be_full_history() {
        let plan = PlanNode::Scan(ScanNode {
            table: "orders".into(),
            sys: SysClass::All,
            app: AppClass::All,
            classification: Some(Classification {
                sys_pushed: true,
                ..Classification::default()
            }),
            full_history: true,
            kind: ScanKind::TemporalIndexProbe,
        });
        let errs = validate(&plan).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.problem.contains("cannot come from an index probe")));
    }

    #[test]
    fn unknown_sweep_algorithm_rejected() {
        let plan = PlanNode::TemporalAggregate {
            input: Box::new(constrained_scan()),
            algorithm: "magic".into(),
            coalesced: Some(true),
        };
        let errs = validate(&plan).unwrap_err();
        assert!(errs.iter().any(|e| e.problem.contains("unknown")));
    }
}
