//! Temporal operators — implemented as the SQL:2011 workarounds the paper
//! measured, plus the efficient algorithms the literature proposes.
//!
//! SQL:2011 has no temporal aggregation or temporal join (paper §3.3, R3:
//! "a rather costly join over the time interval boundaries followed by a
//! grouping on these points"). We provide both formulations so the
//! benchmark can show the gap:
//!
//! * [`temporal_aggregate_naive`] — the boundary-points self-join the
//!   systems actually execute: O(boundaries × rows). This reproduces
//!   Fig 14's "more than two orders of magnitude more expensive than a full
//!   access to the history".
//! * [`temporal_aggregate`] — the event-sweep algorithm (cf. the Timeline
//!   Index line of work the paper cites): O(n log n).
//! * [`temporal_join`] — value equi-join with period-overlap correlation
//!   (R5), returning the intersection period.
//! * [`version_delta`] — consecutive-version pairing along system time
//!   (R7, K4/K5).

use bitempo_core::{obs, Result, Row, Value};
use std::cell::Cell;
use std::collections::HashMap;

/// Reads a period column pair `(start, end)` as orderable values.
fn period_of(row: &Row, start_col: usize, end_col: usize) -> (Value, Value) {
    (row.get(start_col).clone(), row.get(end_col).clone())
}

/// Temporal aggregation by event sweep: for every elementary interval
/// between consecutive period boundaries, outputs
/// `(interval_start, interval_end, SUM(value), COUNT(*))` over the rows
/// whose `[start_col, end_col)` period covers the interval. Intervals with
/// no covering rows are omitted (the paper's definition: "a new result row
/// for each timestamp where data changed").
pub fn temporal_aggregate(
    rows: &[Row],
    start_col: usize,
    end_col: usize,
    value: &crate::Expr,
) -> Result<Vec<Row>> {
    temporal_aggregate_counted(rows, start_col, end_col, value).map(|(out, _)| out)
}

/// [`temporal_aggregate`] plus its *work counter*: the number of elementary
/// steps taken (event construction, sort comparisons, sweep iterations).
/// The counter exists so tests can prove the sweep is O(n log n) — the
/// regression the naive formulation fell into was invisible to
/// output-equivalence tests alone.
pub fn temporal_aggregate_counted(
    rows: &[Row],
    start_col: usize,
    end_col: usize,
    value: &crate::Expr,
) -> Result<(Vec<Row>, u64)> {
    let _span = obs::span("temporal", "temporal_aggregate");
    // Event list: +value at start, -value at end.
    let mut events: Vec<(Value, f64, i64)> = Vec::with_capacity(rows.len() * 2);
    for row in rows {
        let (start, end) = period_of(row, start_col, end_col);
        if start >= end {
            continue;
        }
        let v = value.eval(row)?;
        let x = if v.is_null() { 0.0 } else { v.as_double()? };
        events.push((start, x, 1));
        events.push((end, -x, -1));
    }
    let mut work = events.len() as u64;
    let comparisons = Cell::new(0u64);
    events.sort_by(|a, b| {
        comparisons.set(comparisons.get() + 1);
        a.0.cmp(&b.0)
    });
    work += comparisons.get();
    let mut out = Vec::new();
    let mut sum = 0.0;
    let mut count: i64 = 0;
    let mut i = 0;
    while i < events.len() {
        let boundary = events[i].0.clone();
        while i < events.len() && events[i].0 == boundary {
            sum += events[i].1;
            count += events[i].2;
            i += 1;
            work += 1;
        }
        if i < events.len() && count > 0 {
            out.push(Row::new(vec![
                boundary,
                events[i].0.clone(),
                Value::Double(sum),
                Value::Int(count),
            ]));
        }
    }
    Ok((out, work))
}

/// The naive SQL:2011 formulation: collect all distinct boundary points,
/// then for each point rescan the whole input to aggregate the covering
/// rows — the plan shape the paper's systems produced for R3.
pub fn temporal_aggregate_naive(
    rows: &[Row],
    start_col: usize,
    end_col: usize,
    value: &crate::Expr,
) -> Result<Vec<Row>> {
    temporal_aggregate_naive_counted(rows, start_col, end_col, value).map(|(out, _)| out)
}

/// [`temporal_aggregate_naive`] plus its work counter (rows rescanned per
/// boundary window) — the quadratic witness the linearithmic-bound test
/// compares against.
pub fn temporal_aggregate_naive_counted(
    rows: &[Row],
    start_col: usize,
    end_col: usize,
    value: &crate::Expr,
) -> Result<(Vec<Row>, u64)> {
    let _span = obs::span("temporal", "temporal_aggregate_naive");
    let mut boundaries: Vec<Value> = Vec::with_capacity(rows.len() * 2);
    for row in rows {
        let (s, e) = period_of(row, start_col, end_col);
        boundaries.push(s);
        boundaries.push(e);
    }
    boundaries.sort();
    boundaries.dedup();
    let mut work = 0u64;
    let mut out = Vec::new();
    for w in boundaries.windows(2) {
        let (point, next) = (&w[0], &w[1]);
        let mut sum = 0.0;
        let mut count: i64 = 0;
        for row in rows {
            work += 1;
            let (s, e) = period_of(row, start_col, end_col);
            if s <= *point && *point < e {
                let v = value.eval(row)?;
                if !v.is_null() {
                    sum += v.as_double()?;
                }
                count += 1;
            }
        }
        if count > 0 {
            out.push(Row::new(vec![
                point.clone(),
                next.clone(),
                Value::Double(sum),
                Value::Int(count),
            ]));
        }
    }
    Ok((out, work))
}

/// Temporal join: equi-join on `(left_keys, right_keys)` where the two
/// periods overlap. Output: left row ++ right row ++ intersection start ++
/// intersection end.
pub fn temporal_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
    left_period: (usize, usize),
    right_period: (usize, usize),
) -> Vec<Row> {
    let mut span = obs::span("temporal", "temporal_join");
    // Keys are borrowed, not cloned — the hash table only lives for the
    // duration of the join, so `Vec<&Value>` avoids a deep clone per row.
    let mut table: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for row in right {
        let key: Vec<&Value> = right_keys.iter().map(|&c| row.get(c)).collect();
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for lrow in left {
        let key: Vec<&Value> = left_keys.iter().map(|&c| lrow.get(c)).collect();
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        let (ls, le) = (lrow.get(left_period.0), lrow.get(left_period.1));
        for rrow in candidates {
            let (rs, re) = (rrow.get(right_period.0), rrow.get(right_period.1));
            // Intersection test on borrowed endpoints *before* any
            // materialization: non-overlapping (and empty, `start >= end`)
            // intersections allocate nothing.
            let start = if ls >= rs { ls } else { rs };
            let end = if le <= re { le } else { re };
            if start < end {
                let mut values = Vec::with_capacity(lrow.arity() + rrow.arity() + 2);
                values.extend_from_slice(lrow.values());
                values.extend_from_slice(rrow.values());
                values.push(start.clone());
                values.push(end.clone());
                out.push(Row::new(values));
            }
        }
    }
    span.arg_with("rows", || out.len().to_string());
    out
}

/// Pairs each version with its immediate predecessor along `order_col`
/// (typically `sys_start`) within the same key. Output: previous row ++
/// next row. This generalizes K4/K5's "previous version" retrieval to all
/// keys, as R7 requires.
pub fn version_delta(rows: &[Row], key_cols: &[usize], order_col: usize) -> Vec<Row> {
    let _span = obs::span("temporal", "version_delta");
    let mut chains: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = key_cols.iter().map(|&c| row.get(c).clone()).collect();
        chains.entry(key).or_default().push(row);
    }
    let mut keys: Vec<&Vec<Value>> = chains.keys().collect();
    keys.sort();
    let mut out = Vec::new();
    for key in keys {
        let chain = &chains[key];
        let mut ordered: Vec<&&Row> = chain.iter().collect();
        ordered.sort_by(|a, b| a.get(order_col).cmp(b.get(order_col)));
        for w in ordered.windows(2) {
            out.push(w[0].concat(w[1]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use bitempo_core::AppDate;

    /// Rows: (id, value, start, end).
    fn interval_rows() -> Vec<Row> {
        let r = |id: i64, v: f64, s: i64, e: i64| {
            Row::new(vec![
                Value::Int(id),
                Value::Double(v),
                Value::Date(AppDate(s)),
                Value::Date(AppDate(e)),
            ])
        };
        vec![r(1, 10.0, 0, 10), r(2, 20.0, 5, 15), r(3, 40.0, 10, 20)]
    }

    #[test]
    fn sweep_aggregation() {
        let rows = interval_rows();
        let out = temporal_aggregate(&rows, 2, 3, &col(1)).unwrap();
        // Elementary intervals: [0,5) sum 10, [5,10) sum 30, [10,15) sum 60,
        // [15,20) sum 40.
        assert_eq!(out.len(), 4);
        let sums: Vec<f64> = out.iter().map(|r| r.get(2).as_double().unwrap()).collect();
        assert_eq!(sums, vec![10.0, 30.0, 60.0, 40.0]);
        let counts: Vec<i64> = out.iter().map(|r| r.get(3).as_int().unwrap()).collect();
        assert_eq!(counts, vec![1, 2, 2, 1]);
        assert_eq!(out[0].get(0), &Value::Date(AppDate(0)));
        assert_eq!(out[0].get(1), &Value::Date(AppDate(5)));
    }

    #[test]
    fn naive_matches_sweep() {
        let rows = interval_rows();
        let sweep = temporal_aggregate(&rows, 2, 3, &col(1)).unwrap();
        let naive = temporal_aggregate_naive(&rows, 2, 3, &col(1)).unwrap();
        assert_eq!(sweep, naive);
    }

    #[test]
    fn naive_matches_sweep_randomized() {
        let mut rng = bitempo_core::Pcg32::new(5, 5);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                let s = rng.int_range(0, 500);
                let e = s + rng.int_range(1, 100);
                Row::new(vec![
                    Value::Int(i),
                    Value::Double(rng.int_range(1, 100) as f64),
                    Value::Date(AppDate(s)),
                    Value::Date(AppDate(e)),
                ])
            })
            .collect();
        let sweep = temporal_aggregate(&rows, 2, 3, &col(1)).unwrap();
        let naive = temporal_aggregate_naive(&rows, 2, 3, &col(1)).unwrap();
        assert_eq!(sweep, naive);
    }

    #[test]
    fn sweep_is_linearithmic_naive_is_quadratic() {
        // Randomized input, large enough that the asymptotic gap is
        // unambiguous: the sweep's counted work must stay within a
        // linearithmic bound while the naive formulation provably does
        // Ω(n²) row visits. Output equivalence is asserted on the same run.
        let n: u64 = 1000;
        let mut rng = bitempo_core::Pcg32::new(11, 7);
        let rows: Vec<Row> = (0..n as i64)
            .map(|i| {
                let s = rng.int_range(0, 2000);
                let e = s + rng.int_range(1, 200);
                Row::new(vec![
                    Value::Int(i),
                    Value::Double(rng.int_range(1, 100) as f64),
                    Value::Date(AppDate(s)),
                    Value::Date(AppDate(e)),
                ])
            })
            .collect();
        let (sweep, sweep_work) = temporal_aggregate_counted(&rows, 2, 3, &col(1)).unwrap();
        let (naive, naive_work) = temporal_aggregate_naive_counted(&rows, 2, 3, &col(1)).unwrap();
        assert_eq!(sweep, naive, "same answer from both formulations");

        // 2n events; sort comparisons + construction + sweep iterations
        // must stay within C·m·log2(m), m = 2n, with generous C = 4.
        let m = 2 * n;
        let bound = 4 * m * (u64::BITS - m.leading_zeros()) as u64;
        assert!(
            sweep_work <= bound,
            "sweep work {sweep_work} exceeds linearithmic bound {bound}"
        );
        // The naive plan rescans all n rows for ~2n-1 boundary windows.
        assert!(
            naive_work >= n * n / 8,
            "naive work {naive_work} unexpectedly below quadratic floor"
        );
        assert!(
            naive_work > 8 * sweep_work,
            "sweep ({sweep_work}) must beat naive ({naive_work}) by a wide margin"
        );
    }

    #[test]
    fn empty_and_degenerate_periods() {
        assert!(temporal_aggregate(&[], 2, 3, &col(1)).unwrap().is_empty());
        let degenerate = vec![Row::new(vec![
            Value::Int(1),
            Value::Double(5.0),
            Value::Date(AppDate(3)),
            Value::Date(AppDate(3)),
        ])];
        assert!(
            temporal_aggregate(&degenerate, 2, 3, &col(1))
                .unwrap()
                .is_empty(),
            "empty periods contribute nothing"
        );
    }

    #[test]
    fn overlap_join() {
        // left: (key, start, end); right: (key, start, end).
        let l = |k: i64, s: i64, e: i64| {
            Row::new(vec![
                Value::Int(k),
                Value::Date(AppDate(s)),
                Value::Date(AppDate(e)),
            ])
        };
        let left = vec![l(1, 0, 10), l(2, 0, 10)];
        let right = vec![l(1, 5, 15), l(1, 20, 30), l(3, 0, 10)];
        let out = temporal_join(&left, &right, &[0], &[0], (1, 2), (1, 2));
        assert_eq!(out.len(), 1, "only key 1 with overlapping periods");
        let row = &out[0];
        assert_eq!(row.arity(), 8);
        assert_eq!(row.get(6), &Value::Date(AppDate(5)), "intersection start");
        assert_eq!(row.get(7), &Value::Date(AppDate(10)), "intersection end");
    }

    #[test]
    fn join_meeting_periods_produce_no_row() {
        // [1,5) ⋈ [5,9): the periods *meet* but do not overlap — the
        // intersection [5,5) is empty and must yield no output row (and,
        // since the test is hoisted before materialization, no allocation).
        let l = |k: i64, s: i64, e: i64| {
            Row::new(vec![
                Value::Int(k),
                Value::Date(AppDate(s)),
                Value::Date(AppDate(e)),
            ])
        };
        let left = vec![l(1, 1, 5)];
        let right = vec![l(1, 5, 9)];
        let out = temporal_join(&left, &right, &[0], &[0], (1, 2), (1, 2));
        assert!(out.is_empty(), "meeting periods have an empty intersection");
        // Flipped operands too.
        let out = temporal_join(&right, &left, &[0], &[0], (1, 2), (1, 2));
        assert!(out.is_empty());
    }

    #[test]
    fn version_deltas() {
        // (key, price, sys_start)
        let v =
            |k: i64, p: f64, t: i64| Row::new(vec![Value::Int(k), Value::Double(p), Value::Int(t)]);
        let rows = vec![v(1, 100.0, 1), v(1, 110.0, 5), v(1, 90.0, 9), v(2, 50.0, 2)];
        let out = version_delta(&rows, &[0], 2);
        assert_eq!(out.len(), 2, "two consecutive pairs for key 1, none for 2");
        assert_eq!(out[0].get(1), &Value::Double(100.0));
        assert_eq!(out[0].get(4), &Value::Double(110.0));
        assert_eq!(out[1].get(1), &Value::Double(110.0));
        assert_eq!(out[1].get(4), &Value::Double(90.0));
    }
}
