//! Physical relational operators over materialized row sets.

use crate::expr::Expr;
use bitempo_core::{obs, Result, Row, Value};
use std::collections::{HashMap, HashSet};

/// Join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Matching pairs.
    Inner,
    /// All left rows; unmatched ones padded with NULLs.
    Left,
    /// Left rows with at least one match (no concatenation).
    Semi,
    /// Left rows with no match.
    Anti,
}

/// Keeps rows satisfying `pred`.
pub fn filter(rows: &[Row], pred: &Expr) -> Result<Vec<Row>> {
    let _span = obs::span("query", "filter");
    let mut out = Vec::new();
    for row in rows {
        if pred.matches(row)? {
            out.push(row.clone());
        }
    }
    Ok(out)
}

/// Evaluates `exprs` per row.
pub fn project(rows: &[Row], exprs: &[Expr]) -> Result<Vec<Row>> {
    let _span = obs::span("query", "project");
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let values: Result<Vec<Value>> = exprs.iter().map(|e| e.eval(row)).collect();
        out.push(Row::new(values?));
    }
    Ok(out)
}

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| row.get(c).clone()).collect()
}

/// Hash join on equality of the given key columns.
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> Vec<Row> {
    let _span = obs::span("query", "hash_join");
    assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for row in right {
        table.entry(key_of(row, right_keys)).or_default().push(row);
    }
    let right_arity = right.first().map_or(0, Row::arity);
    let mut out = Vec::new();
    for lrow in left {
        let matches = table.get(&key_of(lrow, left_keys));
        match kind {
            JoinKind::Inner => {
                if let Some(ms) = matches {
                    for r in ms {
                        out.push(lrow.concat(r));
                    }
                }
            }
            JoinKind::Left => match matches {
                Some(ms) => {
                    for r in ms {
                        out.push(lrow.concat(r));
                    }
                }
                None => {
                    let nulls = Row::new(vec![Value::Null; right_arity]);
                    out.push(lrow.concat(&nulls));
                }
            },
            JoinKind::Semi => {
                if matches.is_some() {
                    out.push(lrow.clone());
                }
            }
            JoinKind::Anti => {
                if matches.is_none() {
                    out.push(lrow.clone());
                }
            }
        }
    }
    out
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of a numeric expression.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Row count (input expression ignored).
    Count,
    /// Count of distinct input values.
    CountDistinct,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// One aggregate column.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Its input.
    pub input: Expr,
}

impl AggExpr {
    /// `SUM(input)`.
    pub fn sum(input: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Sum,
            input,
        }
    }
    /// `AVG(input)`.
    pub fn avg(input: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Avg,
            input,
        }
    }
    /// `COUNT(*)`.
    pub fn count() -> AggExpr {
        AggExpr {
            func: AggFunc::Count,
            input: Expr::Lit(Value::Int(1)),
        }
    }
    /// `COUNT(DISTINCT input)`.
    pub fn count_distinct(input: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::CountDistinct,
            input,
        }
    }
    /// `MIN(input)`.
    pub fn min(input: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Min,
            input,
        }
    }
    /// `MAX(input)`.
    pub fn max(input: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Max,
            input,
        }
    }
}

#[derive(Debug)]
enum AggState {
    Sum(f64),
    Avg(f64, u64),
    Count(u64),
    CountDistinct(HashSet<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        match self {
            AggState::Sum(s) => {
                if !v.is_null() {
                    *s += v.as_double()?;
                }
            }
            AggState::Avg(s, n) => {
                if !v.is_null() {
                    *s += v.as_double()?;
                    *n += 1;
                }
            }
            AggState::Count(n) => *n += 1,
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(v);
                }
            }
            AggState::Min(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            AggState::Max(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum(s) => Value::Double(s),
            AggState::Avg(s, 0) => {
                let _ = s;
                Value::Null
            }
            AggState::Avg(s, n) => Value::Double(s / n as f64),
            AggState::Count(n) => Value::Int(n as i64),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Min(m) | AggState::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

/// Hash aggregation: output rows are `group_by` columns followed by one
/// column per aggregate, in first-seen group order.
pub fn aggregate(rows: &[Row], group_by: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let _span = obs::span("query", "aggregate");
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rows {
        let key = key_of(row, group_by);
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| AggState::new(a.func)).collect()
        });
        for (state, agg) in states.iter_mut().zip(aggs) {
            state.update(agg.input.eval(row)?)?;
        }
    }
    // Global aggregation over an empty input still yields one row, as SQL.
    if rows.is_empty() && group_by.is_empty() {
        let values: Vec<Value> = aggs
            .iter()
            .map(|a| AggState::new(a.func).finish())
            .collect();
        return Ok(vec![Row::new(values)]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let states = groups.remove(&key).expect("group recorded");
        let mut values = key;
        values.extend(states.into_iter().map(AggState::finish));
        out.push(Row::new(values));
    }
    Ok(out)
}

/// A sort key: column and direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column position.
    pub col: usize,
    /// Ascending?
    pub asc: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(col: usize) -> SortKey {
        SortKey { col, asc: true }
    }
    /// Descending key.
    pub fn desc(col: usize) -> SortKey {
        SortKey { col, asc: false }
    }
}

/// Stable multi-key sort.
pub fn sort_by(rows: &mut [Row], keys: &[SortKey]) {
    let _span = obs::span("query", "sort");
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a.get(k.col).cmp(b.get(k.col));
            let ord = if k.asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Sort + LIMIT.
pub fn top_n(rows: &[Row], keys: &[SortKey], n: usize) -> Vec<Row> {
    let _span = obs::span("query", "top_n");
    let mut sorted = rows.to_vec();
    sort_by(&mut sorted, keys);
    sorted.truncate(n);
    sorted
}

/// Duplicate elimination preserving first occurrence order.
pub fn distinct(rows: &[Row]) -> Vec<Row> {
    let _span = obs::span("query", "distinct");
    let mut seen = HashSet::with_capacity(rows.len());
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row.clone());
        }
    }
    out
}

/// Bag union.
pub fn union(a: &[Row], b: &[Row]) -> Vec<Row> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Double(10.0)]),
            Row::new(vec![Value::Int(2), Value::str("b"), Value::Double(20.0)]),
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Double(30.0)]),
            Row::new(vec![Value::Int(3), Value::str("c"), Value::Double(40.0)]),
        ]
    }

    #[test]
    fn filter_and_project() {
        let r = rows();
        let f = filter(&r, &col(0).eq(lit(1))).unwrap();
        assert_eq!(f.len(), 2);
        let p = project(&f, &[col(2).mul(lit(2.0)), col(1).clone()]).unwrap();
        assert_eq!(p[0].get(0), &Value::Double(20.0));
        assert_eq!(p[1].get(0), &Value::Double(60.0));
    }

    #[test]
    fn joins() {
        let left = rows();
        let right = vec![
            Row::new(vec![Value::Int(1), Value::str("x")]),
            Row::new(vec![Value::Int(2), Value::str("y")]),
            Row::new(vec![Value::Int(2), Value::str("z")]),
        ];
        let inner = hash_join(&left, &right, &[0], &[0], JoinKind::Inner);
        assert_eq!(
            inner.len(),
            2 + 2,
            "two key-1 rows, one key-2 with 2 matches"
        );
        assert_eq!(inner[0].arity(), 5);
        let leftj = hash_join(&left, &right, &[0], &[0], JoinKind::Left);
        assert_eq!(leftj.len(), 5, "key-3 row padded");
        assert!(leftj.iter().any(|r| r.get(3).is_null()));
        let semi = hash_join(&left, &right, &[0], &[0], JoinKind::Semi);
        assert_eq!(semi.len(), 3);
        assert_eq!(semi[0].arity(), 3, "semi join keeps the left layout");
        let anti = hash_join(&left, &right, &[0], &[0], JoinKind::Anti);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0].get(0), &Value::Int(3));
    }

    #[test]
    fn grouping() {
        let r = rows();
        let out = aggregate(
            &r,
            &[1],
            &[
                AggExpr::sum(col(2)),
                AggExpr::count(),
                AggExpr::min(col(2)),
                AggExpr::max(col(2)),
                AggExpr::avg(col(2)),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        // First-seen order: group "a" first.
        assert_eq!(out[0].get(0), &Value::str("a"));
        assert_eq!(out[0].get(1), &Value::Double(40.0));
        assert_eq!(out[0].get(2), &Value::Int(2));
        assert_eq!(out[0].get(3), &Value::Double(10.0));
        assert_eq!(out[0].get(4), &Value::Double(30.0));
        assert_eq!(out[0].get(5), &Value::Double(20.0));
    }

    #[test]
    fn global_aggregate_and_empty_input() {
        let r = rows();
        let out = aggregate(&r, &[], &[AggExpr::count()]).unwrap();
        assert_eq!(out, vec![Row::new(vec![Value::Int(4)])]);
        let out = aggregate(&[], &[], &[AggExpr::count(), AggExpr::sum(col(0))]).unwrap();
        assert_eq!(out, vec![Row::new(vec![Value::Int(0), Value::Double(0.0)])]);
        let out = aggregate(&[], &[0], &[AggExpr::count()]).unwrap();
        assert!(
            out.is_empty(),
            "grouped aggregate over empty input is empty"
        );
    }

    #[test]
    fn count_distinct() {
        let r = rows();
        let out = aggregate(&r, &[], &[AggExpr::count_distinct(col(0))]).unwrap();
        assert_eq!(out[0].get(0), &Value::Int(3));
    }

    #[test]
    fn sorting_and_top_n() {
        let mut r = rows();
        sort_by(&mut r, &[SortKey::desc(2)]);
        assert_eq!(r[0].get(2), &Value::Double(40.0));
        let top = top_n(&rows(), &[SortKey::asc(2)], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get(2), &Value::Double(10.0));
        // Multi-key: group asc then value desc.
        let mut r = rows();
        sort_by(&mut r, &[SortKey::asc(0), SortKey::desc(2)]);
        assert_eq!(r[0].get(2), &Value::Double(30.0));
        assert_eq!(r[1].get(2), &Value::Double(10.0));
    }

    #[test]
    fn distinct_and_union() {
        let a = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Int(2)]),
        ];
        assert_eq!(distinct(&a).len(), 2);
        let b = vec![Row::new(vec![Value::Int(3)])];
        assert_eq!(union(&a, &b).len(), 4);
    }
}
