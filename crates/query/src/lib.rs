//! # bitempo-query
//!
//! Relational and temporal query processing over engine scan outputs.
//!
//! The paper's point about query execution is architectural: none of the
//! systems has temporal operators, so every temporal query compiles into
//! *standard* relational plans — scans, filters, joins, grouping — plus
//! SQL:2011 workarounds for the unsupported operators (temporal aggregation
//! via interval-boundary joins, temporal joins via overlap predicates,
//! §5.6). This crate supplies exactly those building blocks:
//!
//! * [`expr`] — scalar expressions evaluated against rows;
//! * [`ops`] — filter / project / hash join / aggregation / sort / top-N /
//!   distinct / union over materialized row sets;
//! * [`temporal`] — temporal aggregation (both the efficient event sweep
//!   and the *naive* boundary-points formulation the paper measured),
//!   overlap joins, and version-delta extraction (R7, K4/K5);
//! * [`plan`] — a statically checkable plan description and validator:
//!   scans must classify predicates into pushed vs residual (or admit to a
//!   full-history read), temporal operators must declare coalescing;
//! * [`optimizer`] — cost-based access-path selection over the plan IR: a
//!   one-group Cascades-style memo costs every physical alternative a
//!   partition scan has (sequential, key lookup, B-Tree, GiST, temporal
//!   index), plus an adaptive feedback store that corrects repeated
//!   misestimates from observed actual-vs-estimated row counts.
//!
//! Operators are materialized (`Vec<Row>` in, `Vec<Row>` out): with all
//! data memory-resident — the paper's setup too ("all read requests ...
//! served from main memory") — execution cost is dominated by the volume of
//! rows each operator touches, which is the quantity the benchmark varies.

pub mod expr;
pub mod ops;
pub mod optimizer;
pub mod plan;
pub mod temporal;

pub use expr::Expr;
pub use ops::{
    aggregate, distinct, filter, hash_join, project, sort_by, top_n, union, AggExpr, AggFunc,
    JoinKind, SortKey,
};
pub use plan::{
    validate, AppClass, Classification, PlanNode, PlanViolation, ScanKind, ScanNode, SysClass,
};
pub use temporal::{temporal_aggregate, temporal_aggregate_naive, temporal_join, version_delta};
