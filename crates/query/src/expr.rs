//! Scalar expressions over rows.

use bitempo_core::{AppDate, Error, Result, Row, Value};

/// A scalar expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column reference by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Arithmetic.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction (also date − days).
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (always floating point).
    Div(Box<Expr>, Box<Expr>),
    /// Comparison: equal.
    Eq(Box<Expr>, Box<Expr>),
    /// Comparison: not equal.
    Ne(Box<Expr>, Box<Expr>),
    /// Comparison: less than.
    Lt(Box<Expr>, Box<Expr>),
    /// Comparison: less or equal.
    Le(Box<Expr>, Box<Expr>),
    /// Comparison: greater than.
    Gt(Box<Expr>, Box<Expr>),
    /// Comparison: greater or equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL LIKE with `%` (any run) and `_` (any one character).
    Like(Box<Expr>, String),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
    /// NULL test.
    IsNull(Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Column reference.
pub fn col(i: usize) -> Expr {
    Expr::Col(i)
}

/// Literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

macro_rules! binary_builders {
    ($($method:ident => $variant:ident),* $(,)?) => {
        // SQL-style builder names (`add`, `mul`, ...) are the point here;
        // implementing the `std::ops` traits would force `Result`-free
        // signatures that do not fit expression trees.
        #[allow(clippy::should_implement_trait)]
        impl Expr {
            $(
                /// Builder for the corresponding binary expression.
                #[must_use]
                pub fn $method(self, rhs: Expr) -> Expr {
                    Expr::$variant(Box::new(self), Box::new(rhs))
                }
            )*
        }
    };
}

binary_builders!(
    add => Add, sub => Sub, mul => Mul, div => Div,
    eq => Eq, ne => Ne, lt => Lt, le => Le, gt => Gt, ge => Ge,
    and => And, or => Or,
);

impl Expr {
    /// Builder for NOT.
    #[must_use]
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Builder for LIKE.
    #[must_use]
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like(Box::new(self), pattern.into())
    }

    /// Builder for IN.
    #[must_use]
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// Builder for BETWEEN (inclusive both ends, like SQL).
    #[must_use]
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        self.clone().ge(lo).and(self.le(hi))
    }

    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(i) => Ok(row.get(*i).clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Add(a, b) => numeric(a.eval(row)?, b.eval(row)?, f64_add, i64_add, date_add),
            Expr::Sub(a, b) => numeric(a.eval(row)?, b.eval(row)?, f64_sub, i64_sub, date_sub),
            Expr::Mul(a, b) => numeric(
                a.eval(row)?,
                b.eval(row)?,
                |x, y| x * y,
                |x, y| x.wrapping_mul(y),
                no_date,
            ),
            Expr::Div(a, b) => {
                let x = a.eval(row)?.as_double()?;
                let y = b.eval(row)?.as_double()?;
                Ok(Value::Double(x / y))
            }
            Expr::Eq(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_eq()),
            Expr::Ne(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_ne()),
            Expr::Lt(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_lt()),
            Expr::Le(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_le()),
            Expr::Gt(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_gt()),
            Expr::Ge(a, b) => cmp(a.eval(row)?, b.eval(row)?, |o| o.is_ge()),
            Expr::And(a, b) => Ok(Value::Int(
                (truthy(&a.eval(row)?) && truthy(&b.eval(row)?)) as i64,
            )),
            Expr::Or(a, b) => Ok(Value::Int(
                (truthy(&a.eval(row)?) || truthy(&b.eval(row)?)) as i64,
            )),
            Expr::Not(a) => Ok(Value::Int(!truthy(&a.eval(row)?) as i64)),
            Expr::Like(a, pattern) => {
                let v = a.eval(row)?;
                let s = v.as_str()?;
                Ok(Value::Int(
                    like_match(s.as_bytes(), pattern.as_bytes()) as i64
                ))
            }
            Expr::InList(a, values) => {
                let v = a.eval(row)?;
                Ok(Value::Int(values.contains(&v) as i64))
            }
            Expr::IsNull(a) => Ok(Value::Int(a.eval(row)?.is_null() as i64)),
            Expr::If(c, t, e) => {
                if truthy(&c.eval(row)?) {
                    t.eval(row)
                } else {
                    e.eval(row)
                }
            }
        }
    }

    /// Evaluates as a boolean predicate (NULL/unknown is false, as in SQL
    /// WHERE semantics).
    pub fn matches(&self, row: &Row) -> Result<bool> {
        Ok(truthy(&self.eval(row)?))
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Double(d) => *d != 0.0,
        Value::Null => false,
        _ => true,
    }
}

fn cmp(a: Value, b: Value, f: impl Fn(std::cmp::Ordering) -> bool) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Int(0));
    }
    Ok(Value::Int(f(a.cmp(&b)) as i64))
}

fn f64_add(a: f64, b: f64) -> f64 {
    a + b
}
fn f64_sub(a: f64, b: f64) -> f64 {
    a - b
}
fn i64_add(a: i64, b: i64) -> i64 {
    a.wrapping_add(b)
}
fn i64_sub(a: i64, b: i64) -> i64 {
    a.wrapping_sub(b)
}
fn date_add(d: AppDate, days: i64) -> Option<AppDate> {
    Some(d.plus_days(days))
}
fn date_sub(d: AppDate, days: i64) -> Option<AppDate> {
    Some(d.plus_days(-days))
}
fn no_date(_: AppDate, _: i64) -> Option<AppDate> {
    None
}

fn numeric(
    a: Value,
    b: Value,
    f: impl Fn(f64, f64) -> f64,
    g: impl Fn(i64, i64) -> i64,
    d: impl Fn(AppDate, i64) -> Option<AppDate>,
) -> Result<Value> {
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(g(*x, *y))),
        (Value::Date(x), Value::Int(y)) => {
            d(*x, *y)
                .map(Value::Date)
                .ok_or_else(|| Error::TypeMismatch {
                    expected: "numeric".into(),
                    found: "date in multiplicative op".into(),
                })
        }
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        _ => Ok(Value::Double(f(a.as_double()?, b.as_double()?))),
    }
}

/// Iterative SQL LIKE matcher (`%` = any run, `_` = any byte).
fn like_match(s: &[u8], p: &[u8]) -> bool {
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(10),
            Value::Double(2.5),
            Value::str("forest green metal"),
            Value::Date(AppDate(100)),
            Value::Null,
        ])
    }

    #[test]
    fn arithmetic() {
        let r = row();
        assert_eq!(col(0).add(lit(5)).eval(&r).unwrap(), Value::Int(15));
        assert_eq!(col(0).mul(col(1)).eval(&r).unwrap(), Value::Double(25.0));
        assert_eq!(col(1).div(lit(0.5)).eval(&r).unwrap(), Value::Double(5.0));
        assert_eq!(
            col(3).add(lit(7)).eval(&r).unwrap(),
            Value::Date(AppDate(107))
        );
        assert_eq!(
            col(3).sub(lit(50)).eval(&r).unwrap(),
            Value::Date(AppDate(50))
        );
        assert_eq!(lit(1.0).sub(col(1)).eval(&r).unwrap(), Value::Double(-1.5));
    }

    #[test]
    fn comparisons_and_logic() {
        let r = row();
        assert!(col(0).eq(lit(10)).matches(&r).unwrap());
        assert!(col(0).lt(lit(11)).matches(&r).unwrap());
        assert!(!col(0).gt(lit(11)).matches(&r).unwrap());
        assert!(col(0)
            .ge(lit(10))
            .and(col(1).le(lit(3.0)))
            .matches(&r)
            .unwrap());
        assert!(col(0)
            .eq(lit(99))
            .or(col(0).eq(lit(10)))
            .matches(&r)
            .unwrap());
        assert!(col(0).eq(lit(99)).negate().matches(&r).unwrap());
        assert!(col(0).between(lit(5), lit(10)).matches(&r).unwrap());
        assert!(!col(0).between(lit(11), lit(20)).matches(&r).unwrap());
    }

    #[test]
    fn null_semantics() {
        let r = row();
        assert!(
            !col(4).eq(lit(0)).matches(&r).unwrap(),
            "NULL = x is unknown"
        );
        assert!(!col(4).ne(lit(0)).matches(&r).unwrap());
        assert!(Expr::IsNull(Box::new(col(4))).matches(&r).unwrap());
        assert!(!Expr::IsNull(Box::new(col(0))).matches(&r).unwrap());
        assert_eq!(col(4).add(lit(1)).eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        let r = row();
        assert!(col(2).like("%green%").matches(&r).unwrap());
        assert!(col(2).like("forest%").matches(&r).unwrap());
        assert!(col(2).like("%metal").matches(&r).unwrap());
        assert!(!col(2).like("%blue%").matches(&r).unwrap());
        assert!(col(2).like("forest green metal").matches(&r).unwrap());
        assert!(col(2).like("forest_green_metal").matches(&r).unwrap());
        assert!(col(2).like("%").matches(&r).unwrap());
        // Q13-style double wildcard.
        assert!(col(2).like("%forest%metal%").matches(&r).unwrap());
        assert!(!col(2).like("%metal%forest%").matches(&r).unwrap());
    }

    #[test]
    fn in_list_and_if() {
        let r = row();
        assert!(col(0)
            .in_list(vec![Value::Int(1), Value::Int(10)])
            .matches(&r)
            .unwrap());
        assert!(!col(0).in_list(vec![Value::Int(1)]).matches(&r).unwrap());
        let e = Expr::If(
            Box::new(col(0).eq(lit(10))),
            Box::new(lit(1.0)),
            Box::new(lit(0.0)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Double(1.0));
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match(b"", b""));
        assert!(like_match(b"", b"%"));
        assert!(!like_match(b"", b"_"));
        assert!(like_match(b"abc", b"%%c"));
        assert!(like_match(b"special requests here", b"%special%requests%"));
    }
}
