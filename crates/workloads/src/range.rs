//! Range-timeslice queries (R group, paper §3.3 and §5.6): application
//! oriented workloads that keep one time dimension at a point while
//! analysing the other.

use crate::Ctx;
use bitempo_core::{Result, Row, SysTime, Value};
use bitempo_dbgen::col;
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_query::expr::col as c;
use bitempo_query::{
    aggregate, filter, temporal_aggregate, temporal_aggregate_naive, temporal_join, top_n,
    version_delta, AggExpr, SortKey,
};

/// R1: state *changes* — order-status transitions along system time, at
/// the current application slice. Two temporal evaluations of ORDERS joined
/// on adjacent versions, counting transitions per `(from, to)` pair.
pub fn r1(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    let (sys_start, _) = ctx.sys_cols(ctx.t.orders);
    let rows = ctx.scan(ctx.t.orders, &SysSpec::All, &AppSpec::All, &[])?;
    let pairs = version_delta(&rows, &[col::orders::ORDERKEY], sys_start);
    let arity = rows.first().map_or(0, Row::arity);
    let from_status = col::orders::ORDERSTATUS;
    let to_status = arity + col::orders::ORDERSTATUS;
    let changed = filter(&pairs, &c(from_status).ne(c(to_status)))?;
    let mut out = aggregate(&changed, &[from_status, to_status], &[AggExpr::count()])?;
    bitempo_query::sort_by(&mut out, &[SortKey::asc(0), SortKey::asc(1)]);
    Ok(out)
}

/// R2: state *durations* — how long versions stayed current, per order
/// status, measured in commits of system time (average and count).
pub fn r2(ctx: &Ctx<'_>, now: SysTime) -> Result<Vec<Row>> {
    let (sys_start, sys_end) = ctx.sys_cols(ctx.t.orders);
    let rows = ctx.scan(ctx.t.orders, &SysSpec::All, &AppSpec::All, &[])?;
    let durations: Vec<Row> = rows
        .iter()
        .map(|r| {
            let s = r.get(sys_start).as_sys_time().expect("sys start").0;
            let e = match r.get(sys_end).as_sys_time().expect("sys end") {
                t if t == bitempo_core::SysTime::MAX => now.0,
                t => t.0,
            };
            Row::new(vec![
                r.get(col::orders::ORDERSTATUS).clone(),
                Value::Int(e.saturating_sub(s) as i64),
            ])
        })
        .collect();
    let mut out = aggregate(&durations, &[0], &[AggExpr::avg(c(1)), AggExpr::count()])?;
    bitempo_query::sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// R3a: temporal aggregation (SUM of `o_totalprice` along application
/// time), in the *naive* boundary-points formulation — the plan SQL:2011
/// forces and the paper measured at two orders of magnitude over ALL.
pub fn r3a_naive(ctx: &Ctx<'_>, sys: SysSpec) -> Result<Vec<Row>> {
    let (app_start, app_end) = ctx.app_cols(ctx.t.orders);
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &[])?;
    temporal_aggregate_naive(&rows, app_start, app_end, &c(col::orders::TOTALPRICE))
}

/// R3a in the efficient event-sweep formulation (what a native temporal
/// operator would do — the paper's envisioned optimization target).
pub fn r3a_sweep(ctx: &Ctx<'_>, sys: SysSpec) -> Result<Vec<Row>> {
    let (app_start, app_end) = ctx.app_cols(ctx.t.orders);
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &[])?;
    temporal_aggregate(&rows, app_start, app_end, &c(col::orders::TOTALPRICE))
}

/// R3b: the second aggregation function of R3 — active-order COUNT per
/// elementary interval (naive formulation).
pub fn r3b_naive(ctx: &Ctx<'_>, sys: SysSpec) -> Result<Vec<Row>> {
    let (app_start, app_end) = ctx.app_cols(ctx.t.orders);
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &[])?;
    let agg = temporal_aggregate_naive(&rows, app_start, app_end, &c(col::orders::TOTALPRICE))?;
    // Keep (start, end, count).
    Ok(agg.iter().map(|r| r.project(&[0, 1, 3])).collect())
}

/// R4: the parts with the *smallest* difference in stock levels over the
/// whole history (PARTSUPP availqty max − min per part; 10 smallest).
pub fn r4(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    let rows = ctx.scan(ctx.t.partsupp, &SysSpec::All, &AppSpec::All, &[])?;
    let per_part = aggregate(
        &rows,
        &[col::partsupp::PARTKEY],
        &[
            AggExpr::max(c(col::partsupp::AVAILQTY)),
            AggExpr::min(c(col::partsupp::AVAILQTY)),
        ],
    )?;
    let spread: Vec<Row> = per_part
        .iter()
        .map(|r| {
            let max = r.get(1).as_double().expect("max qty");
            let min = r.get(2).as_double().expect("min qty");
            Row::new(vec![r.get(0).clone(), Value::Double(max - min)])
        })
        .collect();
    Ok(top_n(&spread, &[SortKey::asc(1), SortKey::asc(0)], 10))
}

/// R5: temporal join — how often a customer had a balance below
/// `balance_limit` *while* having an order above `price_limit` recorded
/// (correlation along system time). Returns the match count.
pub fn r5(ctx: &Ctx<'_>, balance_limit: f64, price_limit: f64) -> Result<Vec<Row>> {
    let customers = ctx.scan(ctx.t.customer, &SysSpec::All, &AppSpec::All, &[])?;
    let poor = filter(
        &customers,
        &c(col::customer::ACCTBAL).lt(bitempo_query::expr::lit(balance_limit)),
    )?;
    let orders = ctx.scan(ctx.t.orders, &SysSpec::All, &AppSpec::All, &[])?;
    let pricey = filter(
        &orders,
        &c(col::orders::TOTALPRICE).gt(bitempo_query::expr::lit(price_limit)),
    )?;
    let c_sys = ctx.sys_cols(ctx.t.customer);
    let o_sys = ctx.sys_cols(ctx.t.orders);
    let joined = temporal_join(
        &poor,
        &pricey,
        &[col::customer::CUSTKEY],
        &[col::orders::CUSTKEY],
        c_sys,
        o_sys,
    );
    aggregate(&joined, &[], &[AggExpr::count()])
}

/// R6: temporal aggregation over a temporal join — total open-order value
/// per elementary application interval, joining ORDERS and LINEITEM on
/// overlapping active periods.
pub fn r6(ctx: &Ctx<'_>, sys: SysSpec) -> Result<Vec<Row>> {
    let orders = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &[])?;
    let lineitems = ctx.scan(ctx.t.lineitem, &sys, &AppSpec::All, &[])?;
    let o_app = ctx.app_cols(ctx.t.orders);
    let l_app = ctx.app_cols(ctx.t.lineitem);
    let joined = temporal_join(
        &orders,
        &lineitems,
        &[col::orders::ORDERKEY],
        &[col::lineitem::ORDERKEY],
        o_app,
        l_app,
    );
    // The appended intersection period is the join's temporal extent.
    let arity = joined.first().map_or(0, Row::arity);
    if arity == 0 {
        return Ok(Vec::new());
    }
    let (ix_start, ix_end) = (arity - 2, arity - 1);
    let o_arity = orders.first().map_or(0, Row::arity);
    let price = o_arity + col::lineitem::EXTENDEDPRICE;
    temporal_aggregate(&joined, ix_start, ix_end, &c(price))
}

/// R7: suppliers who raised a price by more than 7.5 % in one update —
/// generalizing K4/K5's previous-version retrieval to *all* keys.
pub fn r7(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    let (sys_start, _) = ctx.sys_cols(ctx.t.partsupp);
    let rows = ctx.scan(ctx.t.partsupp, &SysSpec::All, &AppSpec::All, &[])?;
    let pairs = version_delta(
        &rows,
        &[col::partsupp::PARTKEY, col::partsupp::SUPPKEY],
        sys_start,
    );
    let arity = rows.first().map_or(0, Row::arity);
    let old_cost = col::partsupp::SUPPLYCOST;
    let new_cost = arity + col::partsupp::SUPPLYCOST;
    let raised = filter(
        &pairs,
        &c(new_cost).gt(c(old_cost).mul(bitempo_query::expr::lit(1.075))),
    )?;
    let mut suppliers: Vec<Row> = bitempo_query::distinct(
        &raised
            .iter()
            .map(|r| r.project(&[col::partsupp::SUPPKEY]))
            .collect::<Vec<_>>(),
    );
    bitempo_query::sort_by(&mut suppliers, &[SortKey::asc(0)]);
    Ok(suppliers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{assert_equivalent, fixture};

    #[test]
    fn r1_counts_status_transitions() {
        let rows = assert_equivalent(r1);
        // Deliveries (O→F) happen in every history.
        let of = rows
            .iter()
            .find(|r| r.get(0) == &Value::str("O") && r.get(1) == &Value::str("F"));
        assert!(of.is_some(), "O→F transitions must exist: {rows:?}");
    }

    #[test]
    fn r2_durations_per_status() {
        let p = fixture().params.clone();
        let rows = assert_equivalent(|ctx| r2(ctx, p.sys_now));
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.get(1).as_double().unwrap() >= 0.0);
            assert!(r.get(2).as_int().unwrap() > 0);
        }
    }

    #[test]
    fn r3_naive_equals_sweep() {
        let naive = assert_equivalent(|ctx| r3a_naive(ctx, SysSpec::Current));
        let sweep = assert_equivalent(|ctx| r3a_sweep(ctx, SysSpec::Current));
        assert_eq!(
            crate::rows_approx_diff(&naive, &sweep, 1e-9),
            None,
            "both formulations must agree"
        );
        assert!(!naive.is_empty());
        let counts = assert_equivalent(|ctx| r3b_naive(ctx, SysSpec::Current));
        assert_eq!(counts.len(), naive.len());
        assert_eq!(counts[0].arity(), 3);
    }

    #[test]
    fn r4_smallest_stock_spread() {
        let rows = assert_equivalent(r4);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.get(1).as_double().unwrap() >= 0.0);
        }
    }

    #[test]
    fn r5_temporal_join_counts() {
        let rows = assert_equivalent(|ctx| r5(ctx, 5_000.0, 100_000.0));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(0).as_int().unwrap() >= 0);
        // Relaxing both limits can only increase matches.
        let relaxed = assert_equivalent(|ctx| r5(ctx, 1_000_000.0, 0.0));
        assert!(relaxed[0].get(0).as_int().unwrap() >= rows[0].get(0).as_int().unwrap());
    }

    #[test]
    fn r6_join_then_aggregate() {
        let rows = assert_equivalent(|ctx| r6(ctx, SysSpec::Current));
        assert!(!rows.is_empty());
        // Sums are positive and intervals ordered.
        for r in &rows {
            assert!(r.get(2).as_double().unwrap() > 0.0);
        }
    }

    #[test]
    fn r7_price_raisers() {
        let rows = assert_equivalent(r7);
        // The Change-Price scenario draws factors up to 1.15, so some
        // raises exceed 7.5 % in any non-trivial history.
        assert!(!rows.is_empty(), "expected at least one >7.5 % price raise");
    }
}
