//! # bitempo-workloads
//!
//! The full TPC-BiH query workload (paper §3.3), implemented as physical
//! plans over the engine scan interface:
//!
//! * [`tt`] — synthetic time travel (T1–T9, plus ALL/T5, the yardstick that
//!   retrieves the complete ORDERS history);
//! * [`tpch`] — all 22 TPC-H queries under bitemporal time travel (the H
//!   workload of §5.4);
//! * [`key`] — pure-key / audit queries (K1–K6);
//! * [`range`] — range-timeslice queries (R1–R7), including temporal
//!   aggregation and temporal joins;
//! * [`bitemporal`] — the B3.1–B3.11 bitemporal-dimension matrix (Table 3);
//! * [`params`] — benchmark parameter selection (time points, hot keys);
//! * [`sharding`] — the stable key-space partitioning function the sharded
//!   serving layer routes DML with;
//! * [`plans`] — one statically-validated representative plan per workload
//!   class, feeding the `lint-plans` experiment;
//! * [`suite`] — one representative query per class, bundled as the
//!   five-class equivalence probe the crash-recovery tests compare on.
//!
//! Every query function takes a [`Ctx`] plus explicit temporal parameters
//! and returns materialized rows, so the same plan text runs against any
//! engine — mirroring how the paper ran identical SQL against all four
//! systems (modulo dialect).

pub mod bitemporal;
pub mod key;
pub mod params;
pub mod plans;
pub mod range;
pub mod sharding;
pub mod suite;
pub mod tpch;
pub mod tt;

pub use params::QueryParams;
pub use suite::{five_class_answers, five_class_diff, FIVE_CLASSES};

use bitempo_core::{Result, Row, TableId};
use bitempo_engine::api::{AppSpec, ColRange, ScanOutput, SysSpec};
use bitempo_engine::BitemporalEngine;

/// Resolved ids of the eight benchmark tables.
#[derive(Debug, Clone, Copy)]
pub struct TableIds {
    /// REGION.
    pub region: TableId,
    /// NATION.
    pub nation: TableId,
    /// SUPPLIER.
    pub supplier: TableId,
    /// CUSTOMER.
    pub customer: TableId,
    /// PART.
    pub part: TableId,
    /// PARTSUPP.
    pub partsupp: TableId,
    /// ORDERS.
    pub orders: TableId,
    /// LINEITEM.
    pub lineitem: TableId,
}

impl TableIds {
    /// Resolves all table names against an engine.
    pub fn resolve(engine: &dyn BitemporalEngine) -> Result<TableIds> {
        Ok(TableIds {
            region: engine.resolve("region")?,
            nation: engine.resolve("nation")?,
            supplier: engine.resolve("supplier")?,
            customer: engine.resolve("customer")?,
            part: engine.resolve("part")?,
            partsupp: engine.resolve("partsupp")?,
            orders: engine.resolve("orders")?,
            lineitem: engine.resolve("lineitem")?,
        })
    }
}

/// Query execution context: an engine plus resolved table ids.
pub struct Ctx<'a> {
    /// The engine under test.
    pub engine: &'a dyn BitemporalEngine,
    /// Resolved tables.
    pub t: TableIds,
}

impl<'a> Ctx<'a> {
    /// Builds a context by resolving table names.
    pub fn new(engine: &'a dyn BitemporalEngine) -> Result<Ctx<'a>> {
        Ok(Ctx {
            t: TableIds::resolve(engine)?,
            engine,
        })
    }

    /// Scans a table under the given temporal specification.
    pub fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<Vec<Row>> {
        Ok(self.engine.scan(table, sys, app, preds)?.rows)
    }

    /// Like [`Ctx::scan`], but returns the full [`ScanOutput`] — rows plus
    /// access paths and work counters. The parallel-equivalence tests use
    /// this to compare entire outputs across worker counts.
    pub fn scan_output(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        self.engine.scan(table, sys, app, preds)
    }

    /// Number of value columns of `table` (period columns follow them in
    /// scan outputs).
    pub fn value_arity(&self, table: TableId) -> usize {
        self.engine.table_def(table).schema.arity()
    }

    /// `(app_start, app_end)` column positions in scan outputs of a
    /// bitemporal table.
    pub fn app_cols(&self, table: TableId) -> (usize, usize) {
        let def = self.engine.table_def(table);
        debug_assert!(def.has_app_time(), "{} has no app time", def.name);
        let base = def.schema.arity();
        (base, base + 1)
    }

    /// `(sys_start, sys_end)` column positions in scan outputs of a
    /// system-versioned table.
    pub fn sys_cols(&self, table: TableId) -> (usize, usize) {
        let def = self.engine.table_def(table);
        debug_assert!(def.has_system_time(), "{} has no system time", def.name);
        let base = def.schema.arity() + if def.has_app_time() { 2 } else { 0 };
        (base, base + 1)
    }
}

/// Canonically sorts rows for cross-engine comparison.
pub fn sort_canonical(rows: &mut [Row]) {
    rows.sort();
}

/// Compares two values, treating doubles as equal within a relative
/// tolerance. Engines scan rows in different physical orders, so float
/// aggregates legitimately differ in the last bits.
pub fn value_approx_eq(a: &bitempo_core::Value, b: &bitempo_core::Value, tol: f64) -> bool {
    use bitempo_core::Value;
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => {
            if x.is_nan() && y.is_nan() {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        }
        (Value::Double(_), Value::Int(_)) | (Value::Int(_), Value::Double(_)) => {
            let (x, y) = (
                a.as_double().unwrap_or(f64::NAN),
                b.as_double().unwrap_or(f64::NAN),
            );
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        }
        _ => a == b,
    }
}

/// Row-set comparison with float tolerance (inputs must be canonically
/// sorted). Returns the first mismatch description, or `None` when equal.
pub fn rows_approx_diff(a: &[Row], b: &[Row], tol: f64) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("row count {} vs {}", a.len(), b.len()));
    }
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        if ra.arity() != rb.arity() {
            return Some(format!("row {i}: arity {} vs {}", ra.arity(), rb.arity()));
        }
        for ci in 0..ra.arity() {
            if !value_approx_eq(ra.get(ci), rb.get(ci), tol) {
                return Some(format!(
                    "row {i}, column {ci}: {} vs {}",
                    ra.get(ci),
                    rb.get(ci)
                ));
            }
        }
    }
    None
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! A shared, lazily-built benchmark instance so the workload tests do
    //! not regenerate and reload data per test.

    use super::*;
    use bitempo_dbgen::ScaleConfig;
    use bitempo_engine::{build_engine, SystemKind};
    use bitempo_histgen::{loader, HistoryConfig};
    use std::sync::OnceLock;

    #[allow(dead_code)]
    pub struct Fixture {
        pub engines: Vec<(SystemKind, Box<dyn BitemporalEngine>)>,
        pub history: bitempo_histgen::History,
        pub params: QueryParams,
    }

    static FIXTURE: OnceLock<Fixture> = OnceLock::new();

    pub fn fixture() -> &'static Fixture {
        FIXTURE.get_or_init(|| {
            let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
            let history = bitempo_histgen::generate_history(&data, &HistoryConfig::tiny());
            let mut engines = Vec::new();
            for kind in SystemKind::ALL {
                let mut engine = build_engine(kind);
                let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
                loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
                engine.checkpoint();
                engines.push((kind, engine));
            }
            let params = QueryParams::derive(engines[0].1.as_ref()).unwrap();
            Fixture {
                engines,
                history,
                params,
            }
        })
    }

    /// Runs a query on every engine and asserts identical (sorted) results;
    /// returns System A's rows.
    pub fn assert_equivalent<F>(run: F) -> Vec<Row>
    where
        F: Fn(&Ctx<'_>) -> Result<Vec<Row>>,
    {
        let fx = fixture();
        let mut reference: Option<(SystemKind, Vec<Row>)> = None;
        for (kind, engine) in &fx.engines {
            let ctx = Ctx::new(engine.as_ref()).unwrap();
            let mut rows = run(&ctx).unwrap();
            sort_canonical(&mut rows);
            match &reference {
                None => reference = Some((*kind, rows)),
                Some((ref_kind, expected)) => {
                    if let Some(diff) = rows_approx_diff(&rows, expected, 1e-9) {
                        panic!("{kind} disagrees with {ref_kind}: {diff}");
                    }
                }
            }
        }
        reference.unwrap().1
    }
}
