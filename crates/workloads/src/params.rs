//! Benchmark parameter selection (paper §4: "particular temporal properties
//! in the selection of parameters to queries, e.g. the system time interval
//! for generator execution").

use crate::{Ctx, TableIds};
use bitempo_core::{AppDate, Key, Result, SysTime, Value};
use bitempo_dbgen::col;
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::BitemporalEngine;
use std::collections::HashMap;

/// The temporal and key parameters shared by the workload queries.
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// System time of the initial load (version 0).
    pub sys_initial: SysTime,
    /// A system time in the middle of the history.
    pub sys_mid: SysTime,
    /// The current system time at derivation.
    pub sys_now: SysTime,
    /// An application date in the middle of the TPC-H epoch.
    pub app_mid: AppDate,
    /// An application date late in the history (after the epoch cut-over).
    pub app_late: AppDate,
    /// The latest application date that any order is active.
    pub app_max: AppDate,
    /// The customer with the most recorded versions (K queries: "we select
    /// the customer with most updates").
    pub hot_customer: Key,
    /// Number of versions of [`Self::hot_customer`].
    pub hot_customer_versions: usize,
    /// An account-balance band selecting very few customers (K6's
    /// "very selective filter").
    pub acctbal_band: (f64, f64),
}

impl QueryParams {
    /// Derives parameters by inspecting a loaded engine.
    pub fn derive(engine: &dyn BitemporalEngine) -> Result<QueryParams> {
        let t = TableIds::resolve(engine)?;
        let ctx = Ctx { engine, t };
        let now = engine.now();

        // Hot customer: most versions across the full bitemporal history.
        let customers = ctx.scan(t.customer, &SysSpec::All, &AppSpec::All, &[])?;
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for row in &customers {
            *counts
                .entry(row.get(col::customer::CUSTKEY).as_int()?)
                .or_default() += 1;
        }
        let (&hot, &hot_n) = counts
            .iter()
            .max_by_key(|(k, n)| (**n, std::cmp::Reverse(**k)))
            .expect("customer table is never empty");

        // A tight balance band around the hot customer's current balance.
        let current = ctx.scan(t.customer, &SysSpec::Current, &AppSpec::All, &[])?;
        let bal = current
            .iter()
            .find(|r| r.get(col::customer::CUSTKEY) == &Value::Int(hot))
            .map_or(0.0, |r| {
                r.get(col::customer::ACCTBAL).as_double().unwrap_or(0.0)
            });

        Ok(QueryParams {
            sys_initial: SysTime(1),
            sys_mid: SysTime(1 + (now.0 - 1) / 2),
            sys_now: now,
            app_mid: AppDate::from_ymd(1995, 6, 17),
            app_late: bitempo_dbgen::LAST_ORDER_DATE.plus_days(30),
            app_max: bitempo_dbgen::END_DATE.plus_days(400),
            hot_customer: Key::int(hot),
            hot_customer_versions: hot_n,
            acctbal_band: (bal - 0.5, bal + 0.5),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fixture;

    #[test]
    fn derivation_finds_sensible_points() {
        let fx = fixture();
        let p = &fx.params;
        assert_eq!(p.sys_initial, SysTime(1));
        assert!(p.sys_initial < p.sys_mid && p.sys_mid < p.sys_now);
        assert!(p.app_mid < p.app_late && p.app_late < p.app_max);
        assert!(
            p.hot_customer_versions >= 1,
            "hot customer must have history"
        );
    }

    #[test]
    fn hot_customer_really_is_hottest() {
        let fx = fixture();
        let (_, engine) = &fx.engines[0];
        let ctx = Ctx::new(engine.as_ref()).unwrap();
        let rows = ctx
            .scan(ctx.t.customer, &SysSpec::All, &AppSpec::All, &[])
            .unwrap();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for row in &rows {
            *counts
                .entry(row.get(col::customer::CUSTKEY).as_int().unwrap())
                .or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert_eq!(fx.params.hot_customer_versions, max);
    }
}
