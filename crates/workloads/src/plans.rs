//! Representative, statically-validated query plans — one per workload
//! class — bridging the workload implementations to the plan validator in
//! [`bitempo_query::plan`].
//!
//! Each builder does two things:
//!
//! 1. **executes** the real engine access the workload performs (so the
//!    engines' `debug_assertions` scan-postcondition checks actually fire
//!    on the returned output), and
//! 2. **describes** that access as a [`PlanNode`] tree whose scan nodes
//!    classify every predicate into *pushed* vs *residual* and whose
//!    temporal operators declare their coalescing behaviour.
//!
//! The `lint-plans` bench experiment runs [`representative_plans`] against
//! every engine and feeds each plan through [`bitempo_query::validate`]; a
//! plan that forgets a classification fails the lint, not the benchmark.

use crate::{Ctx, QueryParams};
use bitempo_core::{Result, SysPeriod, TableId};
use bitempo_engine::api::{AccessPath, AppSpec, ColRange, SysSpec};
use bitempo_query::{AppClass, Classification, PlanNode, ScanNode, SysClass};

/// One representative plan: the workload class it stands for, the concrete
/// query it models, and the (already executed) plan tree.
pub struct ClassPlan {
    /// Workload class letter (paper §3.3): `"T"`, `"H"`, `"K"`, `"R"`, `"B"`.
    pub class: &'static str,
    /// The query the plan models, for diagnostics (e.g. `"T5/ALL"`).
    pub query: &'static str,
    /// The validated plan description.
    pub plan: PlanNode,
}

/// Maps an executed [`SysSpec`] to its plan-level constraint class.
fn sys_class(spec: &SysSpec) -> SysClass {
    match spec {
        SysSpec::Current => SysClass::Current,
        SysSpec::AsOf(_) => SysClass::AsOf,
        SysSpec::Range(_) => SysClass::Range,
        SysSpec::All => SysClass::All,
    }
}

/// Maps an executed [`AppSpec`] to its plan-level constraint class.
fn app_class(spec: &AppSpec) -> AppClass {
    match spec {
        AppSpec::AsOf(_) => AppClass::AsOf,
        AppSpec::Range(_) => AppClass::Range,
        AppSpec::All => AppClass::All,
    }
}

/// Names the columns of `preds` against the table's value schema.
fn pred_names(ctx: &Ctx<'_>, table: TableId, preds: &[ColRange]) -> Vec<String> {
    let def = ctx.engine.table_def(table);
    preds
        .iter()
        .map(|p| match def.schema.columns().get(p.col) {
            Some(c) => c.name.clone(),
            None => format!("col#{}", p.col),
        })
        .collect()
}

/// Executes a scan and returns the faithful description of what ran: the
/// temporal specs are pushed into the access path (every engine enforces
/// them inside `scan`), `preds` are pushed column predicates, and
/// `residual` names filters the workload applies *above* the scan. The
/// scan's [`bitempo_query::ScanKind`] reflects the access path the engine
/// actually chose, so a plan describes a temporal-index probe only when
/// one ran.
fn executed_scan(
    ctx: &Ctx<'_>,
    table: TableId,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    residual: &[&str],
) -> Result<ScanNode> {
    let out = ctx.scan_output(table, sys, app, preds)?;
    let classification = Classification {
        sys_pushed: !matches!(sys, SysSpec::All),
        app_pushed: !matches!(app, AppSpec::All),
        pushed_cols: pred_names(ctx, table, preds),
        residual_cols: residual.iter().map(|c| (*c).to_string()).collect(),
    };
    let scan = ScanNode::classified(
        ctx.engine.table_def(table).name.clone(),
        sys_class(sys),
        app_class(app),
        classification,
    );
    Ok(if matches!(out.access, AccessPath::TemporalProbe(_)) {
        scan.probing()
    } else {
        scan
    })
}

/// T class — the ALL/T5 yardstick: the complete ORDERS history, both
/// dimensions unconstrained. The one plan that *must* declare
/// `full_history` (and would fail the lint if it claimed otherwise).
fn t_plan(ctx: &Ctx<'_>) -> Result<PlanNode> {
    let scan = executed_scan(ctx, ctx.t.orders, &SysSpec::All, &AppSpec::All, &[], &[])?;
    debug_assert!(scan.full_history, "unconstrained T5 scan is full-history");
    Ok(PlanNode::Scan(scan))
}

/// H class — TPC-H Q1 under bitemporal time travel (§5.4): an `AS OF` scan
/// of LINEITEM in both dimensions, a residual SHIPDATE filter the engines
/// cannot push (it compares a value column, not a period), then the
/// grouping aggregation and sort.
fn h_plan(ctx: &Ctx<'_>, params: &QueryParams) -> Result<PlanNode> {
    let sys = SysSpec::AsOf(params.sys_mid);
    let app = AppSpec::AsOf(params.app_mid);
    let scan = executed_scan(ctx, ctx.t.lineitem, &sys, &app, &[], &["l_shipdate"])?;
    Ok(PlanNode::Sort {
        input: Box::new(PlanNode::Aggregate {
            input: Box::new(PlanNode::Filter {
                input: Box::new(PlanNode::Scan(scan)),
                predicate: "l_shipdate <= 1998-09-02".into(),
            }),
            group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
            aggs: vec![
                "sum(l_quantity)".into(),
                "sum(l_extendedprice)".into(),
                "sum(disc_price)".into(),
                "sum(charge)".into(),
                "avg(l_quantity)".into(),
                "avg(l_extendedprice)".into(),
                "avg(l_discount)".into(),
                "count(*)".into(),
            ],
        }),
        keys: vec!["l_returnflag".into(), "l_linestatus".into()],
    })
}

/// K class — K1/K2, the audit query: one customer's full version history
/// over a system-time range at an application point, ordered by
/// `sys_time_start`. The key predicate is pushed (the engines serve it via
/// `lookup_key`), so the scan is *not* full-history despite covering a
/// system range.
fn k_plan(ctx: &Ctx<'_>, params: &QueryParams) -> Result<PlanNode> {
    let sys = SysSpec::Range(SysPeriod::new(params.sys_initial, params.sys_now));
    let app = AppSpec::AsOf(params.app_mid);
    ctx.engine
        .lookup_key(ctx.t.customer, &params.hot_customer, &sys, &app)?;
    let def = ctx.engine.table_def(ctx.t.customer);
    let pushed_cols = def
        .key
        .iter()
        .map(|&i| def.schema.column(i).name.clone())
        .collect();
    let scan = ScanNode::classified(
        def.name.clone(),
        sys_class(&sys),
        app_class(&app),
        Classification {
            sys_pushed: true,
            app_pushed: true,
            pushed_cols,
            residual_cols: Vec::new(),
        },
    );
    Ok(PlanNode::Sort {
        input: Box::new(PlanNode::Scan(scan)),
        keys: vec!["sys_time_start".into()],
    })
}

/// R class — R3a, temporal aggregation by event sweep: active-order value
/// per elementary application interval at one system time. The sweep emits
/// one row per elementary interval and does *not* merge adjacent intervals
/// with equal sums, so the plan declares `coalesced: Some(false)`.
fn r_plan(ctx: &Ctx<'_>, params: &QueryParams) -> Result<PlanNode> {
    let sys = SysSpec::AsOf(params.sys_mid);
    let scan = executed_scan(ctx, ctx.t.orders, &sys, &AppSpec::All, &[], &[])?;
    crate::range::r3a_sweep(ctx, sys)?;
    Ok(PlanNode::TemporalAggregate {
        input: Box::new(PlanNode::Scan(scan)),
        algorithm: "event-sweep".into(),
        coalesced: Some(false),
    })
}

/// B class — R6's bitemporal shape: ORDERS ⋈ LINEITEM on order key where
/// the application periods overlap, both inputs pinned to one system time.
/// The join returns raw intersection periods (the SQL:2011 workaround's
/// known gap, §5.6.2), hence `coalesced: Some(false)`.
fn b_plan(ctx: &Ctx<'_>, params: &QueryParams) -> Result<PlanNode> {
    let sys = SysSpec::AsOf(params.sys_mid);
    let left = executed_scan(ctx, ctx.t.orders, &sys, &AppSpec::All, &[], &[])?;
    let right = executed_scan(ctx, ctx.t.lineitem, &sys, &AppSpec::All, &[], &[])?;
    Ok(PlanNode::TemporalJoin {
        left: Box::new(PlanNode::Scan(left)),
        right: Box::new(PlanNode::Scan(right)),
        keys: vec!["o_orderkey = l_orderkey".into()],
        coalesced: Some(false),
    })
}

/// Builds (and executes) one representative plan per workload class.
pub fn representative_plans(ctx: &Ctx<'_>, params: &QueryParams) -> Result<Vec<ClassPlan>> {
    Ok(vec![
        ClassPlan {
            class: "T",
            query: "T5/ALL full ORDERS history",
            plan: t_plan(ctx)?,
        },
        ClassPlan {
            class: "H",
            query: "Q1 pricing summary under time travel",
            plan: h_plan(ctx, params)?,
        },
        ClassPlan {
            class: "K",
            query: "K1 hot-customer audit",
            plan: k_plan(ctx, params)?,
        },
        ClassPlan {
            class: "R",
            query: "R3a temporal aggregation (event sweep)",
            plan: r_plan(ctx, params)?,
        },
        ClassPlan {
            class: "B",
            query: "R6 temporal join at one system time",
            plan: b_plan(ctx, params)?,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fixture;

    #[test]
    fn representative_plans_validate_on_every_engine() {
        let fx = fixture();
        for (kind, engine) in &fx.engines {
            let ctx = Ctx::new(engine.as_ref()).unwrap();
            let plans = representative_plans(&ctx, &fx.params).unwrap();
            assert_eq!(plans.len(), 5, "one plan per workload class");
            for cp in &plans {
                if let Err(violations) = bitempo_query::validate(&cp.plan) {
                    let report: Vec<String> = violations.iter().map(ToString::to_string).collect();
                    panic!(
                        "{kind} class {} ({}) failed plan lint:\n{}",
                        cp.class,
                        cp.query,
                        report.join("\n")
                    );
                }
            }
        }
    }

    #[test]
    fn t_plan_is_the_only_full_history_scan() {
        let fx = fixture();
        let (_, engine) = &fx.engines[0];
        let ctx = Ctx::new(engine.as_ref()).unwrap();
        let plans = representative_plans(&ctx, &fx.params).unwrap();
        for cp in &plans {
            let mut full = Vec::new();
            collect_full_history(&cp.plan, &mut full);
            if cp.class == "T" {
                assert_eq!(full, ["orders"], "T5 declares the full-history scan");
            } else {
                assert!(
                    full.is_empty(),
                    "class {} must not scan full history",
                    cp.class
                );
            }
        }
    }

    fn collect_full_history(plan: &PlanNode, out: &mut Vec<String>) {
        match plan {
            PlanNode::Scan(s) => {
                if s.full_history {
                    out.push(s.table.clone());
                }
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::TemporalAggregate { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::TopN { input, .. } => collect_full_history(input, out),
            PlanNode::HashJoin { left, right, .. } | PlanNode::TemporalJoin { left, right, .. } => {
                collect_full_history(left, out);
                collect_full_history(right, out);
            }
        }
    }
}
