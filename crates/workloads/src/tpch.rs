//! The 22 TPC-H queries under bitemporal time travel (H workload, §5.4).
//!
//! Every query takes the two temporal coordinates and applies them to each
//! scan of a temporal table — "we use the 22 standard TPC-H queries and
//! extend them to allow the specification of both a system and an
//! application time point". Run with `Tt::none()` against a non-temporally
//! loaded engine to obtain the paper's non-temporal baseline (Fig 7's
//! denominators).
//!
//! Parameters are fixed to the TPC-H validation values, with scale-dependent
//! ones surfaced as function arguments.

use crate::Ctx;
use bitempo_core::{AppDate, Result, Row, Value};
use bitempo_dbgen::col::{
    customer as cu, lineitem as l, nation as n, orders as o, part as p, partsupp as ps,
    region as rg, supplier as s,
};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_query::expr::{col as c, lit, Expr};
use bitempo_query::{
    aggregate, distinct, filter, hash_join, project, sort_by, top_n, AggExpr, JoinKind, SortKey,
};

/// Scan-output arities of the eight tables (value columns + period columns);
/// the running join offsets below depend on them and a test pins them to the
/// schema definitions.
pub const AR_REGION: usize = 2;
/// NATION scan arity.
pub const AR_NATION: usize = 3;
/// SUPPLIER scan arity (7 + 2 system-time columns).
pub const AR_SUPPLIER: usize = 9;
/// CUSTOMER scan arity (7 + 4 period columns).
pub const AR_CUSTOMER: usize = 11;
/// PART scan arity.
pub const AR_PART: usize = 12;
/// PARTSUPP scan arity.
pub const AR_PARTSUPP: usize = 8;
/// ORDERS scan arity.
pub const AR_ORDERS: usize = 15;
/// LINEITEM scan arity.
pub const AR_LINEITEM: usize = 19;

/// The time-travel coordinates applied to every temporal scan.
#[derive(Debug, Clone, Copy)]
pub struct Tt {
    /// System-time dimension.
    pub sys: SysSpec,
    /// Application-time dimension.
    pub app: AppSpec,
}

impl Tt {
    /// No time travel: the plain current state (also correct on
    /// non-temporally loaded baseline engines, whose scans ignore specs).
    pub fn none() -> Tt {
        Tt {
            sys: SysSpec::Current,
            app: AppSpec::All,
        }
    }

    /// Application-time travel at the current system time (Fig 7a).
    pub fn app(at: AppDate) -> Tt {
        Tt {
            sys: SysSpec::Current,
            app: AppSpec::AsOf(at),
        }
    }

    /// System-time travel (Fig 7b).
    pub fn sys(at: bitempo_core::SysTime) -> Tt {
        Tt {
            sys: SysSpec::AsOf(at),
            app: AppSpec::All,
        }
    }
}

fn date(y: i32, m: u32, d: u32) -> Expr {
    lit(Value::Date(AppDate::from_ymd(y, m, d)))
}

impl Ctx<'_> {
    fn tscan(&self, table: bitempo_core::TableId, tt: &Tt) -> Result<Vec<Row>> {
        self.scan(table, &tt.sys, &tt.app, &[])
    }
}

/// Scan arity of a table *on the engine at hand*. The `AR_*` constants
/// above describe the bitemporal layout; the non-temporal baseline engines
/// (Fig 7 denominators) emit no period columns, so join offsets must be
/// derived from the live schema, not hard-coded.
fn ar(ctx: &Ctx<'_>, table: bitempo_core::TableId) -> usize {
    ctx.engine.table_def(table).scan_schema().arity()
}

/// Q1: pricing summary report.
pub fn q1(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let rows = ctx.tscan(ctx.t.lineitem, tt)?;
    let rows = filter(&rows, &c(l::SHIPDATE).le(date(1998, 9, 2)))?;
    let disc_price = c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT)));
    let charge = disc_price.clone().mul(lit(1.0).add(c(l::TAX)));
    let mut out = aggregate(
        &rows,
        &[l::RETURNFLAG, l::LINESTATUS],
        &[
            AggExpr::sum(c(l::QUANTITY)),
            AggExpr::sum(c(l::EXTENDEDPRICE)),
            AggExpr::sum(disc_price),
            AggExpr::sum(charge),
            AggExpr::avg(c(l::QUANTITY)),
            AggExpr::avg(c(l::EXTENDEDPRICE)),
            AggExpr::avg(c(l::DISCOUNT)),
            AggExpr::count(),
        ],
    )?;
    sort_by(&mut out, &[SortKey::asc(0), SortKey::asc(1)]);
    Ok(out)
}

/// Q2: minimum-cost supplier (size 15, `%BRASS`, EUROPE).
pub fn q2(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = ctx.tscan(ctx.t.part, tt)?;
    let part = filter(
        &part,
        &c(p::SIZE).eq(lit(15)).and(c(p::TYPE).like("%BRASS")),
    )?;
    let partsupp = ctx.tscan(ctx.t.partsupp, tt)?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let nation = ctx.tscan(ctx.t.nation, tt)?;
    let region = filter(
        &ctx.tscan(ctx.t.region, tt)?,
        &c(rg::NAME).eq(lit("EUROPE")),
    )?;
    // ps ⋈ part ⋈ supplier ⋈ nation ⋈ region.
    let j = hash_join(
        &partsupp,
        &part,
        &[ps::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Inner,
    );
    let o_part = ar(ctx, ctx.t.partsupp);
    let j = hash_join(
        &j,
        &supplier,
        &[ps::SUPPKEY],
        &[s::SUPPKEY],
        JoinKind::Inner,
    );
    let o_supp = o_part + ar(ctx, ctx.t.part);
    let j = hash_join(
        &j,
        &nation,
        &[o_supp + s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    let o_nat = o_supp + ar(ctx, ctx.t.supplier);
    let j = hash_join(
        &j,
        &region,
        &[o_nat + n::REGIONKEY],
        &[rg::REGIONKEY],
        JoinKind::Inner,
    );
    // Min supplycost per part (over the qualifying European offers).
    let mins = aggregate(&j, &[ps::PARTKEY], &[AggExpr::min(c(ps::SUPPLYCOST))])?;
    let arity = ar(ctx, ctx.t.partsupp)
        + ar(ctx, ctx.t.part)
        + ar(ctx, ctx.t.supplier)
        + ar(ctx, ctx.t.nation)
        + ar(ctx, ctx.t.region);
    let j = hash_join(&j, &mins, &[ps::PARTKEY], &[0], JoinKind::Inner);
    let j = filter(&j, &c(ps::SUPPLYCOST).eq(c(arity + 1)))?;
    let out = project(
        &j,
        &[
            c(o_supp + s::ACCTBAL),
            c(o_supp + s::NAME),
            c(o_nat + n::NAME),
            c(ps::PARTKEY),
            c(o_part + p::MFGR),
            c(o_supp + s::PHONE),
        ],
    )?;
    Ok(top_n(
        &out,
        &[
            SortKey::desc(0),
            SortKey::asc(2),
            SortKey::asc(1),
            SortKey::asc(3),
        ],
        100,
    ))
}

/// Q3: shipping priority (BUILDING, 1995-03-15).
pub fn q3(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let customer = filter(
        &ctx.tscan(ctx.t.customer, tt)?,
        &c(cu::MKTSEGMENT).eq(lit("BUILDING")),
    )?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERDATE).lt(date(1995, 3, 15)),
    )?;
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPDATE).gt(date(1995, 3, 15)),
    )?;
    let j = hash_join(
        &customer,
        &orders,
        &[cu::CUSTKEY],
        &[o::CUSTKEY],
        JoinKind::Inner,
    );
    let o_ord = ar(ctx, ctx.t.customer);
    let j = hash_join(
        &j,
        &lineitem,
        &[o_ord + o::ORDERKEY],
        &[l::ORDERKEY],
        JoinKind::Inner,
    );
    let o_li = o_ord + ar(ctx, ctx.t.orders);
    let revenue = c(o_li + l::EXTENDEDPRICE).mul(lit(1.0).sub(c(o_li + l::DISCOUNT)));
    let keyed = project(
        &j,
        &[
            c(o_ord + o::ORDERKEY),
            c(o_ord + o::ORDERDATE),
            c(o_ord + o::SHIPPRIORITY),
            revenue,
        ],
    )?;
    let grouped = aggregate(&keyed, &[0, 1, 2], &[AggExpr::sum(c(3))])?;
    Ok(top_n(
        &grouped,
        &[SortKey::desc(3), SortKey::asc(1), SortKey::asc(0)],
        10,
    ))
}

/// Q4: order-priority checking (1993-Q3).
pub fn q4(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERDATE)
            .ge(date(1993, 7, 1))
            .and(c(o::ORDERDATE).lt(date(1993, 10, 1))),
    )?;
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::COMMITDATE).lt(c(l::RECEIPTDATE)),
    )?;
    let j = hash_join(
        &orders,
        &lineitem,
        &[o::ORDERKEY],
        &[l::ORDERKEY],
        JoinKind::Semi,
    );
    let mut out = aggregate(&j, &[o::ORDERPRIORITY], &[AggExpr::count()])?;
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Q5: local supplier volume (ASIA, 1994).
pub fn q5(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let region = filter(&ctx.tscan(ctx.t.region, tt)?, &c(rg::NAME).eq(lit("ASIA")))?;
    let nation = ctx.tscan(ctx.t.nation, tt)?;
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERDATE)
            .ge(date(1994, 1, 1))
            .and(c(o::ORDERDATE).lt(date(1995, 1, 1))),
    )?;
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;

    let j = hash_join(
        &region,
        &nation,
        &[rg::REGIONKEY],
        &[n::REGIONKEY],
        JoinKind::Inner,
    );
    let o_nat = ar(ctx, ctx.t.region);
    let j = hash_join(
        &j,
        &customer,
        &[o_nat + n::NATIONKEY],
        &[cu::NATIONKEY],
        JoinKind::Inner,
    );
    let o_cust = o_nat + ar(ctx, ctx.t.nation);
    let j = hash_join(
        &j,
        &orders,
        &[o_cust + cu::CUSTKEY],
        &[o::CUSTKEY],
        JoinKind::Inner,
    );
    let o_ord = o_cust + ar(ctx, ctx.t.customer);
    let j = hash_join(
        &j,
        &lineitem,
        &[o_ord + o::ORDERKEY],
        &[l::ORDERKEY],
        JoinKind::Inner,
    );
    let o_li = o_ord + ar(ctx, ctx.t.orders);
    // Local suppliers: same nation as the customer.
    let j = hash_join(
        &j,
        &supplier,
        &[o_li + l::SUPPKEY, o_nat + n::NATIONKEY],
        &[s::SUPPKEY, s::NATIONKEY],
        JoinKind::Inner,
    );
    let revenue = c(o_li + l::EXTENDEDPRICE).mul(lit(1.0).sub(c(o_li + l::DISCOUNT)));
    let keyed = project(&j, &[c(o_nat + n::NAME), revenue])?;
    let mut out = aggregate(&keyed, &[0], &[AggExpr::sum(c(1))])?;
    sort_by(&mut out, &[SortKey::desc(1)]);
    Ok(out)
}

/// Q6: forecasting revenue change (1994, discount 0.05–0.07, qty < 24).
pub fn q6(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let rows = ctx.tscan(ctx.t.lineitem, tt)?;
    let rows = filter(
        &rows,
        &c(l::SHIPDATE)
            .ge(date(1994, 1, 1))
            .and(c(l::SHIPDATE).lt(date(1995, 1, 1)))
            .and(c(l::DISCOUNT).ge(lit(0.05)))
            .and(c(l::DISCOUNT).le(lit(0.07)))
            .and(c(l::QUANTITY).lt(lit(24.0))),
    )?;
    aggregate(
        &rows,
        &[],
        &[AggExpr::sum(c(l::EXTENDEDPRICE).mul(c(l::DISCOUNT)))],
    )
}

/// Q7: volume shipping between FRANCE and GERMANY (1995–1996).
pub fn q7(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let nation = ctx.tscan(ctx.t.nation, tt)?;
    let fr_de = filter(
        &nation,
        &c(n::NAME)
            .eq(lit("FRANCE"))
            .or(c(n::NAME).eq(lit("GERMANY"))),
    )?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let orders = ctx.tscan(ctx.t.orders, tt)?;
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPDATE)
            .ge(date(1995, 1, 1))
            .and(c(l::SHIPDATE).le(date(1996, 12, 31))),
    )?;
    // supplier ⋈ n1
    let sj = hash_join(
        &supplier,
        &fr_de,
        &[s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    let o_n1 = ar(ctx, ctx.t.supplier);
    // customer ⋈ n2
    let cj = hash_join(
        &customer,
        &fr_de,
        &[cu::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    // lineitem ⋈ sj
    let j = hash_join(
        &lineitem,
        &sj,
        &[l::SUPPKEY],
        &[s::SUPPKEY],
        JoinKind::Inner,
    );
    let o_sj = ar(ctx, ctx.t.lineitem);
    // ⋈ orders
    let j = hash_join(&j, &orders, &[l::ORDERKEY], &[o::ORDERKEY], JoinKind::Inner);
    let o_ord = o_sj + ar(ctx, ctx.t.supplier) + ar(ctx, ctx.t.nation);
    // ⋈ cj on custkey
    let j = hash_join(
        &j,
        &cj,
        &[o_ord + o::CUSTKEY],
        &[cu::CUSTKEY],
        JoinKind::Inner,
    );
    let o_cj = o_ord + ar(ctx, ctx.t.orders);
    let supp_nation = o_sj + o_n1 + n::NAME;
    let cust_nation = o_cj + ar(ctx, ctx.t.customer) + n::NAME;
    // Cross-country only.
    let j = filter(&j, &c(supp_nation).ne(c(cust_nation)))?;
    let year = Expr::If(
        Box::new(c(l::SHIPDATE).lt(date(1996, 1, 1))),
        Box::new(lit(1995)),
        Box::new(lit(1996)),
    );
    let volume = c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT)));
    let keyed = project(&j, &[c(supp_nation), c(cust_nation), year, volume])?;
    let mut out = aggregate(&keyed, &[0, 1, 2], &[AggExpr::sum(c(3))])?;
    sort_by(
        &mut out,
        &[SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
    );
    Ok(out)
}

/// Q8: national market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL).
pub fn q8(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = filter(
        &ctx.tscan(ctx.t.part, tt)?,
        &c(p::TYPE).eq(lit("ECONOMY ANODIZED STEEL")),
    )?;
    let region = filter(
        &ctx.tscan(ctx.t.region, tt)?,
        &c(rg::NAME).eq(lit("AMERICA")),
    )?;
    let nation = ctx.tscan(ctx.t.nation, tt)?;
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERDATE)
            .ge(date(1995, 1, 1))
            .and(c(o::ORDERDATE).le(date(1996, 12, 31))),
    )?;
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;

    let j = hash_join(
        &lineitem,
        &part,
        &[l::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Inner,
    );
    let j = hash_join(&j, &orders, &[l::ORDERKEY], &[o::ORDERKEY], JoinKind::Inner);
    let o_ord = ar(ctx, ctx.t.lineitem) + ar(ctx, ctx.t.part);
    let j = hash_join(
        &j,
        &customer,
        &[o_ord + o::CUSTKEY],
        &[cu::CUSTKEY],
        JoinKind::Inner,
    );
    let o_cust = o_ord + ar(ctx, ctx.t.orders);
    // Customer's nation must lie in AMERICA.
    let cn = hash_join(
        &nation,
        &region,
        &[n::REGIONKEY],
        &[rg::REGIONKEY],
        JoinKind::Semi,
    );
    let j = hash_join(
        &j,
        &cn,
        &[o_cust + cu::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Semi,
    );
    // Supplier nation names the competitor.
    let j = hash_join(&j, &supplier, &[l::SUPPKEY], &[s::SUPPKEY], JoinKind::Inner);
    let o_supp = o_cust + ar(ctx, ctx.t.customer);
    let j = hash_join(
        &j,
        &nation,
        &[o_supp + s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    let o_nat = o_supp + ar(ctx, ctx.t.supplier);
    let year = Expr::If(
        Box::new(c(o_ord + o::ORDERDATE).lt(date(1996, 1, 1))),
        Box::new(lit(1995)),
        Box::new(lit(1996)),
    );
    let volume = c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT)));
    let brazil_volume = Expr::If(
        Box::new(c(o_nat + n::NAME).eq(lit("BRAZIL"))),
        Box::new(volume.clone()),
        Box::new(lit(0.0)),
    );
    let keyed = project(&j, &[year, brazil_volume, volume])?;
    let grouped = aggregate(&keyed, &[0], &[AggExpr::sum(c(1)), AggExpr::sum(c(2))])?;
    let mut out = project(&grouped, &[c(0), c(1).div(c(2))])?;
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Q9: product-type profit (`%green%`).
pub fn q9(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = filter(&ctx.tscan(ctx.t.part, tt)?, &c(p::NAME).like("%green%"))?;
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let partsupp = ctx.tscan(ctx.t.partsupp, tt)?;
    let orders = ctx.tscan(ctx.t.orders, tt)?;
    let nation = ctx.tscan(ctx.t.nation, tt)?;

    let j = hash_join(
        &lineitem,
        &part,
        &[l::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Semi,
    );
    let j = hash_join(
        &j,
        &partsupp,
        &[l::PARTKEY, l::SUPPKEY],
        &[ps::PARTKEY, ps::SUPPKEY],
        JoinKind::Inner,
    );
    let o_ps = ar(ctx, ctx.t.lineitem);
    let j = hash_join(&j, &supplier, &[l::SUPPKEY], &[s::SUPPKEY], JoinKind::Inner);
    let o_supp = o_ps + ar(ctx, ctx.t.partsupp);
    let j = hash_join(&j, &orders, &[l::ORDERKEY], &[o::ORDERKEY], JoinKind::Inner);
    let o_ord = o_supp + ar(ctx, ctx.t.supplier);
    let j = hash_join(
        &j,
        &nation,
        &[o_supp + s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    let o_nat = o_ord + ar(ctx, ctx.t.orders);
    // Profit = extprice*(1-disc) − supplycost*qty; year from orderdate.
    let profit = c(l::EXTENDEDPRICE)
        .mul(lit(1.0).sub(c(l::DISCOUNT)))
        .sub(c(o_ps + ps::SUPPLYCOST).mul(c(l::QUANTITY)));
    // Integer year via date bucketing by thresholds 1992..1998.
    let mut year = lit(1992);
    for y in 1993..=1999 {
        year = Expr::If(
            Box::new(c(o_ord + o::ORDERDATE).ge(date(y, 1, 1))),
            Box::new(lit(y as i64)),
            Box::new(year),
        );
    }
    let keyed = project(&j, &[c(o_nat + n::NAME), year, profit])?;
    let mut out = aggregate(&keyed, &[0, 1], &[AggExpr::sum(c(2))])?;
    sort_by(&mut out, &[SortKey::asc(0), SortKey::desc(1)]);
    Ok(out)
}

/// Q10: returned-item reporting (1993-Q4 orders, R flag); top 20 customers.
pub fn q10(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERDATE)
            .ge(date(1993, 10, 1))
            .and(c(o::ORDERDATE).lt(date(1994, 1, 1))),
    )?;
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::RETURNFLAG).eq(lit("R")),
    )?;
    let nation = ctx.tscan(ctx.t.nation, tt)?;
    let j = hash_join(
        &customer,
        &orders,
        &[cu::CUSTKEY],
        &[o::CUSTKEY],
        JoinKind::Inner,
    );
    let o_ord = ar(ctx, ctx.t.customer);
    let j = hash_join(
        &j,
        &lineitem,
        &[o_ord + o::ORDERKEY],
        &[l::ORDERKEY],
        JoinKind::Inner,
    );
    let o_li = o_ord + ar(ctx, ctx.t.orders);
    let j = hash_join(
        &j,
        &nation,
        &[cu::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Inner,
    );
    let o_nat = o_li + ar(ctx, ctx.t.lineitem);
    let revenue = c(o_li + l::EXTENDEDPRICE).mul(lit(1.0).sub(c(o_li + l::DISCOUNT)));
    let keyed = project(
        &j,
        &[
            c(cu::CUSTKEY),
            c(cu::NAME),
            c(cu::ACCTBAL),
            c(o_nat + n::NAME),
            revenue,
        ],
    )?;
    let grouped = aggregate(&keyed, &[0, 1, 2, 3], &[AggExpr::sum(c(4))])?;
    Ok(top_n(&grouped, &[SortKey::desc(4), SortKey::asc(0)], 20))
}

/// Q11: important stock identification (GERMANY; threshold as a fraction
/// of total value — scale-dependent, so exposed as a parameter).
pub fn q11(ctx: &Ctx<'_>, tt: &Tt, fraction: f64) -> Result<Vec<Row>> {
    let partsupp = ctx.tscan(ctx.t.partsupp, tt)?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let nation = filter(
        &ctx.tscan(ctx.t.nation, tt)?,
        &c(n::NAME).eq(lit("GERMANY")),
    )?;
    let sj = hash_join(
        &supplier,
        &nation,
        &[s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Semi,
    );
    let j = hash_join(
        &partsupp,
        &sj,
        &[ps::SUPPKEY],
        &[s::SUPPKEY],
        JoinKind::Semi,
    );
    let value = c(ps::SUPPLYCOST).mul(c(ps::AVAILQTY));
    let keyed = project(&j, &[c(ps::PARTKEY), value])?;
    let per_part = aggregate(&keyed, &[0], &[AggExpr::sum(c(1))])?;
    let total = aggregate(&keyed, &[], &[AggExpr::sum(c(1))])?;
    let threshold = total[0].get(0).as_double()? * fraction;
    let mut out = filter(&per_part, &c(1).gt(lit(threshold)))?;
    sort_by(&mut out, &[SortKey::desc(1), SortKey::asc(0)]);
    Ok(out)
}

/// Q12: shipping-mode priority (MAIL, SHIP; 1994 receipts).
pub fn q12(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPMODE)
            .in_list(vec![Value::str("MAIL"), Value::str("SHIP")])
            .and(c(l::COMMITDATE).lt(c(l::RECEIPTDATE)))
            .and(c(l::SHIPDATE).lt(c(l::COMMITDATE)))
            .and(c(l::RECEIPTDATE).ge(date(1994, 1, 1)))
            .and(c(l::RECEIPTDATE).lt(date(1995, 1, 1))),
    )?;
    let orders = ctx.tscan(ctx.t.orders, tt)?;
    let j = hash_join(
        &lineitem,
        &orders,
        &[l::ORDERKEY],
        &[o::ORDERKEY],
        JoinKind::Inner,
    );
    let o_ord = ar(ctx, ctx.t.lineitem);
    let high = Expr::If(
        Box::new(
            c(o_ord + o::ORDERPRIORITY)
                .eq(lit("1-URGENT"))
                .or(c(o_ord + o::ORDERPRIORITY).eq(lit("2-HIGH"))),
        ),
        Box::new(lit(1)),
        Box::new(lit(0)),
    );
    let low = Expr::If(
        Box::new(
            c(o_ord + o::ORDERPRIORITY)
                .eq(lit("1-URGENT"))
                .or(c(o_ord + o::ORDERPRIORITY).eq(lit("2-HIGH"))),
        ),
        Box::new(lit(0)),
        Box::new(lit(1)),
    );
    let keyed = project(&j, &[c(l::SHIPMODE), high, low])?;
    let mut out = aggregate(&keyed, &[0], &[AggExpr::sum(c(1)), AggExpr::sum(c(2))])?;
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Q13: customer distribution (orders not about `%special%requests%`).
pub fn q13(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::COMMENT).like("%special%requests%").negate(),
    )?;
    let j = hash_join(
        &customer,
        &orders,
        &[cu::CUSTKEY],
        &[o::CUSTKEY],
        JoinKind::Left,
    );
    let o_ord = ar(ctx, ctx.t.customer);
    // Count orders per customer; NULL orderkey (no match) contributes 0.
    let keyed = project(
        &j,
        &[
            c(cu::CUSTKEY),
            Expr::If(
                Box::new(Expr::IsNull(Box::new(c(o_ord + o::ORDERKEY)))),
                Box::new(lit(0)),
                Box::new(lit(1)),
            ),
        ],
    )?;
    let per_customer = aggregate(&keyed, &[0], &[AggExpr::sum(c(1))])?;
    let dist = aggregate(&per_customer, &[1], &[AggExpr::count()])?;
    let mut out = dist;
    sort_by(&mut out, &[SortKey::desc(1), SortKey::desc(0)]);
    Ok(out)
}

/// Q14: promotion effect (1995-09).
pub fn q14(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPDATE)
            .ge(date(1995, 9, 1))
            .and(c(l::SHIPDATE).lt(date(1995, 10, 1))),
    )?;
    let part = ctx.tscan(ctx.t.part, tt)?;
    let j = hash_join(
        &lineitem,
        &part,
        &[l::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Inner,
    );
    let o_part = ar(ctx, ctx.t.lineitem);
    let revenue = c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT)));
    let promo = Expr::If(
        Box::new(c(o_part + p::TYPE).like("PROMO%")),
        Box::new(revenue.clone()),
        Box::new(lit(0.0)),
    );
    let keyed = project(&j, &[promo, revenue])?;
    let sums = aggregate(&keyed, &[], &[AggExpr::sum(c(0)), AggExpr::sum(c(1))])?;
    project(&sums, &[lit(100.0).mul(c(0)).div(c(1))])
}

/// Q15: top supplier (revenue in 1996-Q1).
pub fn q15(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPDATE)
            .ge(date(1996, 1, 1))
            .and(c(l::SHIPDATE).lt(date(1996, 4, 1))),
    )?;
    let revenue = c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT)));
    let keyed = project(&lineitem, &[c(l::SUPPKEY), revenue])?;
    let per_supplier = aggregate(&keyed, &[0], &[AggExpr::sum(c(1))])?;
    let max = aggregate(&per_supplier, &[], &[AggExpr::max(c(1))])?;
    let best = max[0].get(0).clone();
    let winners = filter(&per_supplier, &c(1).eq(lit(best)))?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let j = hash_join(&winners, &supplier, &[0], &[s::SUPPKEY], JoinKind::Inner);
    let o_supp = 2;
    let mut out = project(
        &j,
        &[
            c(0),
            c(o_supp + s::NAME),
            c(o_supp + s::ADDRESS),
            c(o_supp + s::PHONE),
            c(1),
        ],
    )?;
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Q16: parts/supplier relationship (excluding Brand#45, complaints).
pub fn q16(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = filter(
        &ctx.tscan(ctx.t.part, tt)?,
        &c(p::BRAND)
            .eq(lit("Brand#45"))
            .negate()
            .and(c(p::TYPE).like("MEDIUM POLISHED%").negate())
            .and(
                c(p::SIZE).in_list(
                    [49i64, 14, 23, 45, 19, 3, 36, 9]
                        .into_iter()
                        .map(Value::Int)
                        .collect(),
                ),
            ),
    )?;
    let partsupp = ctx.tscan(ctx.t.partsupp, tt)?;
    let complainers = filter(
        &ctx.tscan(ctx.t.supplier, tt)?,
        &c(s::COMMENT).like("%Customer%Complaints%"),
    )?;
    let j = hash_join(
        &partsupp,
        &part,
        &[ps::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Inner,
    );
    let j = hash_join(
        &j,
        &complainers,
        &[ps::SUPPKEY],
        &[s::SUPPKEY],
        JoinKind::Anti,
    );
    let o_part = ar(ctx, ctx.t.partsupp);
    let keyed = project(
        &j,
        &[
            c(o_part + p::BRAND),
            c(o_part + p::TYPE),
            c(o_part + p::SIZE),
            c(ps::SUPPKEY),
        ],
    )?;
    let mut out = aggregate(&keyed, &[0, 1, 2], &[AggExpr::count_distinct(c(3))])?;
    sort_by(
        &mut out,
        &[
            SortKey::desc(3),
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
        ],
    );
    Ok(out)
}

/// Q17: small-quantity-order revenue (Brand#23, MED BOX).
pub fn q17(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = filter(
        &ctx.tscan(ctx.t.part, tt)?,
        &c(p::BRAND)
            .eq(lit("Brand#23"))
            .and(c(p::CONTAINER).eq(lit("MED BOX"))),
    )?;
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;
    let j = hash_join(
        &lineitem,
        &part,
        &[l::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Semi,
    );
    let avg_qty = aggregate(&j, &[l::PARTKEY], &[AggExpr::avg(c(l::QUANTITY))])?;
    let j2 = hash_join(&j, &avg_qty, &[l::PARTKEY], &[0], JoinKind::Inner);
    let threshold_col = ar(ctx, ctx.t.lineitem) + 1;
    let small = filter(&j2, &c(l::QUANTITY).lt(lit(0.2).mul(c(threshold_col))))?;
    let sums = aggregate(&small, &[], &[AggExpr::sum(c(l::EXTENDEDPRICE))])?;
    project(&sums, &[c(0).div(lit(7.0))])
}

/// Q18: large-volume customers (order quantity > `min_qty`).
pub fn q18(ctx: &Ctx<'_>, tt: &Tt, min_qty: f64) -> Result<Vec<Row>> {
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;
    let per_order = aggregate(&lineitem, &[l::ORDERKEY], &[AggExpr::sum(c(l::QUANTITY))])?;
    let big = filter(&per_order, &c(1).gt(lit(min_qty)))?;
    let orders = ctx.tscan(ctx.t.orders, tt)?;
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    let j = hash_join(&orders, &big, &[o::ORDERKEY], &[0], JoinKind::Inner);
    let o_qty = ar(ctx, ctx.t.orders) + 1;
    let j = hash_join(
        &j,
        &customer,
        &[o::CUSTKEY],
        &[cu::CUSTKEY],
        JoinKind::Inner,
    );
    let o_cust = ar(ctx, ctx.t.orders) + 2;
    let keyed = project(
        &j,
        &[
            c(o_cust + cu::NAME),
            c(o_cust + cu::CUSTKEY),
            c(o::ORDERKEY),
            c(o::ORDERDATE),
            c(o::TOTALPRICE),
            c(o_qty),
        ],
    )?;
    Ok(top_n(
        &keyed,
        &[SortKey::desc(4), SortKey::asc(3), SortKey::asc(2)],
        100,
    ))
}

/// Q19: discounted revenue (three brand/container/quantity brackets).
pub fn q19(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPINSTRUCT)
            .eq(lit("DELIVER IN PERSON"))
            .and(c(l::SHIPMODE).in_list(vec![Value::str("AIR"), Value::str("REG AIR")])),
    )?;
    let part = ctx.tscan(ctx.t.part, tt)?;
    let j = hash_join(
        &lineitem,
        &part,
        &[l::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Inner,
    );
    let op = ar(ctx, ctx.t.lineitem);
    let bracket = |brand: &str, containers: &[&str], lo: f64, hi: f64| {
        c(op + p::BRAND)
            .eq(lit(brand))
            .and(c(op + p::CONTAINER).in_list(containers.iter().map(|&x| Value::str(x)).collect()))
            .and(c(l::QUANTITY).ge(lit(lo)))
            .and(c(l::QUANTITY).le(lit(hi)))
            .and(c(op + p::SIZE).between(lit(1), lit(15)))
    };
    let cond = bracket(
        "Brand#12",
        &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
        1.0,
        11.0,
    )
    .or(bracket(
        "Brand#23",
        &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
        10.0,
        20.0,
    ))
    .or(bracket(
        "Brand#34",
        &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
        20.0,
        30.0,
    ));
    let matched = filter(&j, &cond)?;
    aggregate(
        &matched,
        &[],
        &[AggExpr::sum(
            c(l::EXTENDEDPRICE).mul(lit(1.0).sub(c(l::DISCOUNT))),
        )],
    )
}

/// Q20: potential part promotion (forest parts, CANADA, 1994).
pub fn q20(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let part = filter(&ctx.tscan(ctx.t.part, tt)?, &c(p::NAME).like("forest%"))?;
    let partsupp = ctx.tscan(ctx.t.partsupp, tt)?;
    let ps_forest = hash_join(
        &partsupp,
        &part,
        &[ps::PARTKEY],
        &[p::PARTKEY],
        JoinKind::Semi,
    );
    // Half the quantity shipped of that part/supplier in 1994.
    let lineitem = filter(
        &ctx.tscan(ctx.t.lineitem, tt)?,
        &c(l::SHIPDATE)
            .ge(date(1994, 1, 1))
            .and(c(l::SHIPDATE).lt(date(1995, 1, 1))),
    )?;
    let shipped = aggregate(
        &lineitem,
        &[l::PARTKEY, l::SUPPKEY],
        &[AggExpr::sum(c(l::QUANTITY))],
    )?;
    let j = hash_join(
        &ps_forest,
        &shipped,
        &[ps::PARTKEY, ps::SUPPKEY],
        &[0, 1],
        JoinKind::Inner,
    );
    let qty_col = ar(ctx, ctx.t.partsupp) + 2;
    let plenty = filter(&j, &c(ps::AVAILQTY).gt(lit(0.5).mul(c(qty_col))))?;
    // Suppliers of those offers, in CANADA.
    let nation = filter(&ctx.tscan(ctx.t.nation, tt)?, &c(n::NAME).eq(lit("CANADA")))?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let canadians = hash_join(
        &supplier,
        &nation,
        &[s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Semi,
    );
    let chosen = hash_join(
        &canadians,
        &plenty,
        &[s::SUPPKEY],
        &[ps::SUPPKEY],
        JoinKind::Semi,
    );
    let mut out = project(&chosen, &[c(s::NAME), c(s::ADDRESS)])?;
    out = distinct(&out);
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Q21: suppliers who kept orders waiting (SAUDI ARABIA).
pub fn q21(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let lineitem = ctx.tscan(ctx.t.lineitem, tt)?;
    let late = filter(&lineitem, &c(l::RECEIPTDATE).gt(c(l::COMMITDATE)))?;
    let orders = filter(
        &ctx.tscan(ctx.t.orders, tt)?,
        &c(o::ORDERSTATUS).eq(lit("F")),
    )?;
    // l1: late lines of finished orders.
    let l1 = hash_join(
        &late,
        &orders,
        &[l::ORDERKEY],
        &[o::ORDERKEY],
        JoinKind::Semi,
    );
    // Another supplier also touched the order...
    let mut l1_other = Vec::new();
    {
        use std::collections::HashMap;
        let mut per_order: HashMap<i64, Vec<i64>> = HashMap::new();
        for row in &lineitem {
            per_order
                .entry(row.get(l::ORDERKEY).as_int()?)
                .or_default()
                .push(row.get(l::SUPPKEY).as_int()?);
        }
        let mut late_per_order: HashMap<i64, Vec<i64>> = HashMap::new();
        for row in &late {
            late_per_order
                .entry(row.get(l::ORDERKEY).as_int()?)
                .or_default()
                .push(row.get(l::SUPPKEY).as_int()?);
        }
        for row in &l1 {
            let ok = row.get(l::ORDERKEY).as_int()?;
            let sk = row.get(l::SUPPKEY).as_int()?;
            let others_exist = per_order[&ok].iter().any(|&x| x != sk);
            let others_late = late_per_order[&ok].iter().any(|&x| x != sk);
            // EXISTS another supplier on the order, NOT EXISTS another
            // *late* supplier — this one is solely to blame.
            if others_exist && !others_late {
                l1_other.push(row.clone());
            }
        }
    }
    let nation = filter(
        &ctx.tscan(ctx.t.nation, tt)?,
        &c(n::NAME).eq(lit("SAUDI ARABIA")),
    )?;
    let supplier = ctx.tscan(ctx.t.supplier, tt)?;
    let saudis = hash_join(
        &supplier,
        &nation,
        &[s::NATIONKEY],
        &[n::NATIONKEY],
        JoinKind::Semi,
    );
    let j = hash_join(
        &l1_other,
        &saudis,
        &[l::SUPPKEY],
        &[s::SUPPKEY],
        JoinKind::Inner,
    );
    let o_supp = ar(ctx, ctx.t.lineitem);
    let keyed = project(&j, &[c(o_supp + s::NAME)])?;
    let grouped = aggregate(&keyed, &[0], &[AggExpr::count()])?;
    Ok(top_n(&grouped, &[SortKey::desc(1), SortKey::asc(0)], 100))
}

/// Q22: global sales opportunity (dormant customers with above-average
/// balances in seven country codes).
pub fn q22(ctx: &Ctx<'_>, tt: &Tt) -> Result<Vec<Row>> {
    let codes = ["13", "31", "23", "29", "30", "18", "17"];
    let customer = ctx.tscan(ctx.t.customer, tt)?;
    // cntrycode = first two digits of the phone number.
    let with_code: Vec<Row> = customer
        .iter()
        .map(|r| {
            let phone = r.get(cu::PHONE).as_str().unwrap_or("");
            let code = phone.split('-').next().unwrap_or("").to_string();
            let mut values = r.values().to_vec();
            values.push(Value::str(code));
            Row::new(values)
        })
        .collect();
    let code_col = ar(ctx, ctx.t.customer);
    let in_codes = filter(
        &with_code,
        &c(code_col).in_list(codes.iter().map(|&x| Value::str(x)).collect()),
    )?;
    // Average positive balance among those customers.
    let positive = filter(&in_codes, &c(cu::ACCTBAL).gt(lit(0.0)))?;
    let avg = aggregate(&positive, &[], &[AggExpr::avg(c(cu::ACCTBAL))])?;
    let avg_bal = avg[0].get(0).as_double().unwrap_or(0.0);
    let rich = filter(&in_codes, &c(cu::ACCTBAL).gt(lit(avg_bal)))?;
    // ...with no orders at all.
    let orders = ctx.tscan(ctx.t.orders, tt)?;
    let dormant = hash_join(
        &rich,
        &orders,
        &[cu::CUSTKEY],
        &[o::CUSTKEY],
        JoinKind::Anti,
    );
    let keyed = project(&dormant, &[c(code_col), c(cu::ACCTBAL)])?;
    let mut out = aggregate(&keyed, &[0], &[AggExpr::count(), AggExpr::sum(c(1))])?;
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// Runs query `number` (1–22) with default parameters.
pub fn run_query(ctx: &Ctx<'_>, number: u8, tt: &Tt) -> Result<Vec<Row>> {
    match number {
        1 => q1(ctx, tt),
        2 => q2(ctx, tt),
        3 => q3(ctx, tt),
        4 => q4(ctx, tt),
        5 => q5(ctx, tt),
        6 => q6(ctx, tt),
        7 => q7(ctx, tt),
        8 => q8(ctx, tt),
        9 => q9(ctx, tt),
        10 => q10(ctx, tt),
        11 => q11(ctx, tt, 0.01),
        12 => q12(ctx, tt),
        13 => q13(ctx, tt),
        14 => q14(ctx, tt),
        15 => q15(ctx, tt),
        16 => q16(ctx, tt),
        17 => q17(ctx, tt),
        18 => q18(ctx, tt, 300.0),
        19 => q19(ctx, tt),
        20 => q20(ctx, tt),
        21 => q21(ctx, tt),
        22 => q22(ctx, tt),
        other => Err(bitempo_core::Error::Invalid(format!(
            "TPC-H query {other} (valid: 1..=22)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{assert_equivalent, fixture};

    #[test]
    fn arity_constants_match_schemas() {
        let fx = fixture();
        let engine = fx.engines[0].1.as_ref();
        let check = |name: &str, expected: usize| {
            let id = engine.resolve(name).unwrap();
            assert_eq!(
                engine.table_def(id).scan_schema().arity(),
                expected,
                "{name}"
            );
        };
        check("region", AR_REGION);
        check("nation", AR_NATION);
        check("supplier", AR_SUPPLIER);
        check("customer", AR_CUSTOMER);
        check("part", AR_PART);
        check("partsupp", AR_PARTSUPP);
        check("orders", AR_ORDERS);
        check("lineitem", AR_LINEITEM);
    }

    #[test]
    fn all_22_queries_agree_across_engines_current() {
        let tt = Tt::none();
        for q in 1..=22u8 {
            let rows = assert_equivalent(|ctx| run_query(ctx, q, &tt));
            // Aggregation queries always return at least one row.
            if [1, 6, 14, 17, 19].contains(&q) {
                assert!(!rows.is_empty(), "Q{q} must produce output");
            }
        }
    }

    #[test]
    fn all_22_queries_agree_under_app_time_travel() {
        let p = fixture().params.clone();
        let tt = Tt::app(p.app_mid);
        for q in 1..=22u8 {
            assert_equivalent(|ctx| run_query(ctx, q, &tt));
        }
    }

    #[test]
    fn all_22_queries_agree_under_sys_time_travel() {
        let p = fixture().params.clone();
        let tt = Tt::sys(p.sys_initial);
        for q in 1..=22u8 {
            assert_equivalent(|ctx| run_query(ctx, q, &tt));
        }
    }

    #[test]
    fn q1_aggregates_are_consistent() {
        let rows = assert_equivalent(|ctx| q1(ctx, &Tt::none()));
        assert!(!rows.is_empty());
        for r in &rows {
            let sum_qty = r.get(2).as_double().unwrap();
            let count = r.get(9).as_int().unwrap();
            let avg_qty = r.get(6).as_double().unwrap();
            assert!((sum_qty / count as f64 - avg_qty).abs() < 1e-6);
        }
    }

    #[test]
    fn q6_matches_manual_computation() {
        let fx = fixture();
        let ctx = Ctx::new(fx.engines[0].1.as_ref()).unwrap();
        let rows = ctx.tscan(ctx.t.lineitem, &Tt::none()).unwrap();
        let mut expected = 0.0;
        for r in &rows {
            let ship = r.get(l::SHIPDATE).as_date().unwrap();
            let disc = r.get(l::DISCOUNT).as_double().unwrap();
            let qty = r.get(l::QUANTITY).as_double().unwrap();
            if ship >= AppDate::from_ymd(1994, 1, 1)
                && ship < AppDate::from_ymd(1995, 1, 1)
                && (0.05..=0.07).contains(&disc)
                && qty < 24.0
            {
                expected += r.get(l::EXTENDEDPRICE).as_double().unwrap() * disc;
            }
        }
        let got = q6(&ctx, &Tt::none()).unwrap()[0]
            .get(0)
            .as_double()
            .unwrap();
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn sys_time_travel_changes_results() {
        let p = fixture().params.clone();
        // Q1 over the initial version vs now: history adds lineitems.
        let early = assert_equivalent(|ctx| q1(ctx, &Tt::sys(p.sys_initial)));
        let now = assert_equivalent(|ctx| q1(ctx, &Tt::none()));
        let total = |rows: &[Row]| -> i64 { rows.iter().map(|r| r.get(9).as_int().unwrap()).sum() };
        // The history both adds (new orders) and removes (cancellations)
        // qualifying lineitems; the two snapshots must simply differ.
        assert_ne!(total(&now), total(&early), "history must be visible");
    }

    #[test]
    fn invalid_query_number() {
        let fx = fixture();
        let ctx = Ctx::new(fx.engines[0].1.as_ref()).unwrap();
        assert!(run_query(&ctx, 0, &Tt::none()).is_err());
        assert!(run_query(&ctx, 23, &Tt::none()).is_err());
    }
}
