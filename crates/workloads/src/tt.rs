//! Synthetic time-travel queries (T group, paper §3.3 and §5.3).
//!
//! Representative SQL (T1, DB2 dialect for application time):
//!
//! ```sql
//! SELECT AVG(ps_supplycost), COUNT(*)
//! FROM partsupp
//!   FOR SYSTEM_TIME AS OF TIMESTAMP [TIME]
//!   FOR BUSINESS_TIME AS OF [TIME2]
//! ```

use crate::Ctx;
use bitempo_core::{AppDate, Result, Row, SysTime, Value};
use bitempo_dbgen::col;
use bitempo_engine::api::{AppSpec, ColRange, SysSpec};
use bitempo_query::expr::col as c;
use bitempo_query::{aggregate, top_n, AggExpr, SortKey};
use std::ops::Bound;

/// T1: point-point time travel on the *stable* relation PARTSUPP —
/// `AVG(ps_supplycost), COUNT(*)` at one system and one application point.
pub fn t1(ctx: &Ctx<'_>, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    let rows = ctx.scan(ctx.t.partsupp, &sys, &app, &[])?;
    aggregate(
        &rows,
        &[],
        &[AggExpr::avg(c(col::partsupp::SUPPLYCOST)), AggExpr::count()],
    )
}

/// T2: point-point time travel on the *growing* relation ORDERS —
/// `AVG(o_totalprice), COUNT(*)`.
pub fn t2(ctx: &Ctx<'_>, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    let rows = ctx.scan(ctx.t.orders, &sys, &app, &[])?;
    aggregate(
        &rows,
        &[],
        &[AggExpr::avg(c(col::orders::TOTALPRICE)), AggExpr::count()],
    )
}

/// T3: two time-travel operations sharing the same table — the comparison
/// of order counts at two system times.
pub fn t3(ctx: &Ctx<'_>, sys_a: SysTime, sys_b: SysTime) -> Result<Vec<Row>> {
    let a = ctx.scan(ctx.t.orders, &SysSpec::AsOf(sys_a), &AppSpec::All, &[])?;
    let b = ctx.scan(ctx.t.orders, &SysSpec::AsOf(sys_b), &AppSpec::All, &[])?;
    Ok(vec![Row::new(vec![
        Value::Int(a.len() as i64),
        Value::Int(b.len() as i64),
        Value::Int(b.len() as i64 - a.len() as i64),
    ])])
}

/// T4: time travel with an early stop — the ten most expensive orders
/// visible at the given system time.
pub fn t4(ctx: &Ctx<'_>, sys: SysSpec) -> Result<Vec<Row>> {
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &[])?;
    Ok(top_n(
        &rows,
        &[
            SortKey::desc(col::orders::TOTALPRICE),
            SortKey::asc(col::orders::ORDERKEY),
        ],
        10,
    ))
}

/// T5 / ALL: the complete history of ORDERS — "an upper limit to all
/// single-table operations".
pub fn t5_all(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    ctx.scan(ctx.t.orders, &SysSpec::All, &AppSpec::All, &[])
}

/// T6: temporal slicing on ORDERS. `fix_app = Some(d)` keeps application
/// time at `d` and retrieves the full system axis; `None` fixes system time
/// at `sys_point` and retrieves the full application axis.
pub fn t6(ctx: &Ctx<'_>, fix_app: Option<AppDate>, sys_point: SysTime) -> Result<Vec<Row>> {
    match fix_app {
        Some(d) => ctx.scan(ctx.t.orders, &SysSpec::All, &AppSpec::AsOf(d), &[]),
        None => ctx.scan(ctx.t.orders, &SysSpec::AsOf(sys_point), &AppSpec::All, &[]),
    }
}

/// T7, implicit form: the current state with no temporal clause at all —
/// engines with a current/history split touch only the current partition.
pub fn t7_implicit(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    let rows = ctx.scan(ctx.t.orders, &SysSpec::Current, &AppSpec::All, &[])?;
    aggregate(&rows, &[], &[AggExpr::count()])
}

/// T7, explicit form: `AS OF <now>` — semantically identical, but no
/// optimizer prunes the history partition (Fig 6).
pub fn t7_explicit(ctx: &Ctx<'_>) -> Result<Vec<Row>> {
    let now = ctx.engine.now();
    let rows = ctx.scan(ctx.t.orders, &SysSpec::AsOf(now), &AppSpec::All, &[])?;
    aggregate(&rows, &[], &[AggExpr::count()])
}

/// T8: *simulated* application time, point access (like T2 but via the
/// plain-column second application time of ORDERS, `receivable_time`).
pub fn t8(ctx: &Ctx<'_>, sys: SysSpec, at: AppDate) -> Result<Vec<Row>> {
    // receivable_start <= at < receivable_end — plain value predicates, the
    // paper's prescription for simulated application time.
    let preds = vec![ColRange::between(
        col::orders::RECEIVABLE_START,
        Bound::Unbounded,
        Bound::Included(Value::Date(at)),
    )];
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &preds)?;
    let rows: Vec<Row> = rows
        .into_iter()
        .filter(|r| {
            r.get(col::orders::RECEIVABLE_END)
                .as_date()
                .is_ok_and(|end| end > at)
        })
        .collect();
    aggregate(
        &rows,
        &[],
        &[AggExpr::avg(c(col::orders::TOTALPRICE)), AggExpr::count()],
    )
}

/// T9: simulated application time, slice access — all versions whose
/// receivable period overlaps `[lo, hi)` at the given system point.
pub fn t9(ctx: &Ctx<'_>, sys: SysSpec, lo: AppDate, hi: AppDate) -> Result<Vec<Row>> {
    let preds = vec![ColRange::between(
        col::orders::RECEIVABLE_START,
        Bound::Unbounded,
        Bound::Excluded(Value::Date(hi)),
    )];
    let rows = ctx.scan(ctx.t.orders, &sys, &AppSpec::All, &preds)?;
    Ok(rows
        .into_iter()
        .filter(|r| {
            r.get(col::orders::RECEIVABLE_END)
                .as_date()
                .is_ok_and(|end| end > lo)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{assert_equivalent, fixture};

    #[test]
    fn t1_equivalent_and_sane() {
        let p = fixture().params.clone();
        let rows =
            assert_equivalent(|ctx| t1(ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid)));
        assert_eq!(rows.len(), 1);
        let avg = rows[0].get(0).as_double().unwrap();
        let n = rows[0].get(1).as_int().unwrap();
        assert!(n > 0 && avg > 0.0, "avg {avg}, n {n}");
    }

    #[test]
    fn t2_grows_with_system_time() {
        let p = fixture().params.clone();
        let early = assert_equivalent(|ctx| t2(ctx, SysSpec::AsOf(p.sys_initial), AppSpec::All));
        let late = assert_equivalent(|ctx| t2(ctx, SysSpec::Current, AppSpec::All));
        let n = |rows: &[Row]| rows[0].get(1).as_int().unwrap();
        assert!(
            n(&late) > n(&early),
            "orders accumulate: {} vs {}",
            n(&late),
            n(&early)
        );
    }

    #[test]
    fn t3_and_t4() {
        let p = fixture().params.clone();
        let rows = assert_equivalent(|ctx| t3(ctx, p.sys_initial, p.sys_now));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(2).as_int().unwrap() > 0, "history adds orders");
        let rows = assert_equivalent(|ctx| t4(ctx, SysSpec::AsOf(p.sys_mid)));
        assert_eq!(rows.len(), 10);
        // Descending by price.
        let prices: Vec<f64> = rows
            .iter()
            .map(|r| r.get(col::orders::TOTALPRICE).as_double().unwrap())
            .collect();
        let mut sorted = prices.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        // assert_equivalent re-sorts canonically, so compare as sets.
        let mut p2 = prices.clone();
        p2.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(p2, sorted);
    }

    #[test]
    fn t5_is_the_upper_bound() {
        let p = fixture().params.clone();
        let all = assert_equivalent(t5_all);
        let slice = assert_equivalent(|ctx| t6(ctx, None, p.sys_mid));
        assert!(all.len() >= slice.len());
        let app_slice = assert_equivalent(|ctx| t6(ctx, Some(p.app_mid), p.sys_now));
        assert!(all.len() >= app_slice.len());
        assert!(!app_slice.is_empty());
    }

    #[test]
    fn t7_implicit_equals_explicit() {
        let implicit = assert_equivalent(t7_implicit);
        let explicit = assert_equivalent(t7_explicit);
        assert_eq!(implicit, explicit, "same answer, different cost (Fig 6)");
    }

    #[test]
    fn t8_t9_simulated_app_time() {
        let p = fixture().params.clone();
        let rows = assert_equivalent(|ctx| t8(ctx, SysSpec::Current, p.app_late));
        assert_eq!(rows.len(), 1);
        let t9_rows = assert_equivalent(|ctx| t9(ctx, SysSpec::Current, p.app_mid, p.app_max));
        assert!(!t9_rows.is_empty());
    }
}
