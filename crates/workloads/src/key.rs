//! Pure-key / audit queries (K group, paper §3.3 and §5.5).
//!
//! Representative SQL (K1, system-time range + application point):
//!
//! ```sql
//! SELECT c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal,
//!        sys_time_start
//! FROM customer
//!   FOR SYSTEM_TIME FROM [SYS_BEGIN] TO [SYS_END]
//!   FOR BUSINESS_TIME AS OF [APP_TIME]
//! WHERE c_custkey = [CUST_KEY]
//! ORDER BY sys_time_start
//! ```

use crate::Ctx;
use bitempo_core::{Key, Result, Row, SysTime, Value};
use bitempo_dbgen::col;
use bitempo_engine::api::{AppSpec, ColRange, SysSpec};
use bitempo_query::{sort_by, top_n, SortKey};
use std::ops::Bound;

fn ordered_by_sys_start(ctx: &Ctx<'_>, mut rows: Vec<Row>) -> Vec<Row> {
    let (sys_start, _) = ctx.sys_cols(ctx.t.customer);
    sort_by(&mut rows, &[SortKey::asc(sys_start)]);
    rows
}

/// K1: the full history of one customer (all columns, no temporal range
/// restriction), under the given temporal dimensions, ordered by
/// `sys_time_start`.
pub fn k1(ctx: &Ctx<'_>, key: &Key, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    let rows = ctx.engine.lookup_key(ctx.t.customer, key, &sys, &app)?.rows;
    Ok(ordered_by_sys_start(ctx, rows))
}

/// K2: K1 with a restricted temporal range (the caller passes `Range`
/// specs) — testing whether engines can exploit time-range restrictions.
pub fn k2(ctx: &Ctx<'_>, key: &Key, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    k1(ctx, key, sys, app)
}

/// K3: K2 restricted to a single output column (`c_acctbal` plus the
/// ordering timestamp).
pub fn k3(ctx: &Ctx<'_>, key: &Key, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    let (sys_start, _) = ctx.sys_cols(ctx.t.customer);
    let rows = k1(ctx, key, sys, app)?;
    Ok(rows
        .iter()
        .map(|r| r.project(&[col::customer::ACCTBAL, sys_start]))
        .collect())
}

/// K4: the latest `n` versions of a key (Top-N along system time).
pub fn k4(ctx: &Ctx<'_>, key: &Key, sys: SysSpec, app: AppSpec, n: usize) -> Result<Vec<Row>> {
    let (sys_start, _) = ctx.sys_cols(ctx.t.customer);
    let rows = ctx.engine.lookup_key(ctx.t.customer, key, &sys, &app)?.rows;
    Ok(top_n(&rows, &[SortKey::desc(sys_start)], n))
}

/// K5: the immediate predecessor of the version visible at `at` — the
/// timestamp-correlation alternative to K4 (`sys_end = <visible
/// version>.sys_start`).
pub fn k5(ctx: &Ctx<'_>, key: &Key, at: SysTime) -> Result<Vec<Row>> {
    let (sys_start, sys_end) = ctx.sys_cols(ctx.t.customer);
    let all = ctx
        .engine
        .lookup_key(ctx.t.customer, key, &SysSpec::All, &AppSpec::All)?
        .rows;
    let visible_start: Vec<Value> = all
        .iter()
        .filter(|r| {
            let s = r.get(sys_start).as_sys_time().expect("sys start");
            let e = r.get(sys_end).as_sys_time().expect("sys end");
            s <= at && at < e
        })
        .map(|r| r.get(sys_start).clone())
        .collect();
    Ok(all
        .into_iter()
        .filter(|r| visible_start.contains(r.get(sys_end)))
        .collect())
}

/// K6: selection by *value* instead of key — the evolution of customers
/// whose balance lies in `[lo, hi]` (paper §5.5.3; a value index applies).
pub fn k6(ctx: &Ctx<'_>, lo: f64, hi: f64, sys: SysSpec, app: AppSpec) -> Result<Vec<Row>> {
    let preds = vec![ColRange::between(
        col::customer::ACCTBAL,
        Bound::Included(Value::Double(lo)),
        Bound::Included(Value::Double(hi)),
    )];
    let rows = ctx.scan(ctx.t.customer, &sys, &app, &preds)?;
    Ok(ordered_by_sys_start(ctx, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{assert_equivalent, fixture};
    use bitempo_core::Period;

    #[test]
    fn k1_full_history_dimensions() {
        let p = fixture().params.clone();
        let key = p.hot_customer.clone();
        // Current system time, all app versions.
        let cur = assert_equivalent(|ctx| k1(ctx, &key, SysSpec::Current, AppSpec::All));
        assert!(!cur.is_empty());
        // Full bitemporal history must dominate every other slice.
        let both = assert_equivalent(|ctx| k1(ctx, &key, SysSpec::All, AppSpec::All));
        assert_eq!(both.len(), p.hot_customer_versions);
        assert!(both.len() >= cur.len());
        // Past system time.
        let past =
            assert_equivalent(|ctx| k1(ctx, &key, SysSpec::AsOf(p.sys_initial), AppSpec::All));
        assert!(past.len() <= both.len());
        // App point over system history.
        let app = assert_equivalent(|ctx| k1(ctx, &key, SysSpec::All, AppSpec::AsOf(p.app_mid)));
        assert!(app.len() <= both.len());
    }

    #[test]
    fn k2_k3_time_restriction() {
        let p = fixture().params.clone();
        let key = p.hot_customer.clone();
        let sys_range = SysSpec::Range(Period::new(p.sys_initial, p.sys_mid));
        let restricted = assert_equivalent(|ctx| k2(ctx, &key, sys_range, AppSpec::All));
        let full = assert_equivalent(|ctx| k1(ctx, &key, SysSpec::All, AppSpec::All));
        assert!(restricted.len() <= full.len());
        let narrow = assert_equivalent(|ctx| k3(ctx, &key, sys_range, AppSpec::All));
        assert_eq!(narrow.len(), restricted.len());
        if let Some(first) = narrow.first() {
            assert_eq!(first.arity(), 2, "K3 returns one column + timestamp");
        }
    }

    #[test]
    fn k4_top_n_and_k5_predecessor() {
        let p = fixture().params.clone();
        let key = p.hot_customer.clone();
        let top2 = assert_equivalent(|ctx| k4(ctx, &key, SysSpec::All, AppSpec::All, 2));
        assert!(top2.len() <= 2 && !top2.is_empty());
        let pred = assert_equivalent(|ctx| k5(ctx, &key, p.sys_now));
        let full = assert_equivalent(|ctx| k1(ctx, &key, SysSpec::All, AppSpec::All));
        if full.len() > 1 {
            assert!(!pred.is_empty(), "a multi-version key has a predecessor");
        }
        assert!(pred.len() < full.len());
    }

    #[test]
    fn k6_value_selection() {
        let p = fixture().params.clone();
        let (lo, hi) = p.acctbal_band;
        let rows = assert_equivalent(|ctx| k6(ctx, lo, hi, SysSpec::Current, AppSpec::All));
        // The band was derived from the hot customer's current balance.
        assert!(!rows.is_empty());
        for r in &rows {
            let b = r.get(col::customer::ACCTBAL).as_double().unwrap();
            assert!(b >= lo && b <= hi);
        }
        // A wide band over all of history returns more.
        let wide =
            assert_equivalent(|ctx| k6(ctx, -100_000.0, 100_000.0, SysSpec::All, AppSpec::All));
        assert!(wide.len() > rows.len());
    }
}
