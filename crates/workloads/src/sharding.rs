//! Key-space partitioning for the sharded serving layer.
//!
//! A cluster routes every DML statement to the shard that owns its primary
//! key, so the hash must be *stable*: the same key must land on the same
//! shard across processes, runs, and recovery. `std`'s `DefaultHasher` is
//! explicitly unstable across releases, so this module fixes the function
//! to FNV-1a over a canonical byte encoding of the key — tiny, allocation
//! free for integer keys, and identical everywhere.
//!
//! The encoding goes through [`Key::to_values`] so the specialized
//! (`Int`/`Int2`) and general representations of the same key hash alike.

use bitempo_core::{Key, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Stable 64-bit hash of a primary key.
///
/// Each component value is folded with a one-byte type tag so e.g.
/// `Int(0)` and `Null` cannot collide structurally; strings contribute
/// their UTF-8 bytes, doubles their IEEE-754 bit pattern.
pub fn key_hash(key: &Key) -> u64 {
    let mut hash = FNV_OFFSET;
    match key {
        Key::Int(a) => {
            fnv1a(&mut hash, &[1]);
            fnv1a(&mut hash, &a.to_le_bytes());
        }
        Key::Int2(a, b) => {
            fnv1a(&mut hash, &[1]);
            fnv1a(&mut hash, &a.to_le_bytes());
            fnv1a(&mut hash, &[1]);
            fnv1a(&mut hash, &b.to_le_bytes());
        }
        Key::General(values) => {
            for v in values {
                match v {
                    Value::Null => fnv1a(&mut hash, &[0]),
                    Value::Int(i) => {
                        fnv1a(&mut hash, &[1]);
                        fnv1a(&mut hash, &i.to_le_bytes());
                    }
                    Value::Double(d) => {
                        fnv1a(&mut hash, &[2]);
                        fnv1a(&mut hash, &d.to_bits().to_le_bytes());
                    }
                    Value::Str(s) => {
                        fnv1a(&mut hash, &[3]);
                        fnv1a(&mut hash, &(s.len() as u64).to_le_bytes());
                        fnv1a(&mut hash, s.as_bytes());
                    }
                    Value::Date(d) => {
                        fnv1a(&mut hash, &[4]);
                        fnv1a(&mut hash, &d.0.to_le_bytes());
                    }
                    Value::SysTime(t) => {
                        fnv1a(&mut hash, &[5]);
                        fnv1a(&mut hash, &t.0.to_le_bytes());
                    }
                }
            }
        }
    }
    hash
}

/// The shard (in `0..shards`) that owns `key`.
///
/// With one shard everything routes to shard 0, so a single-shard cluster
/// degenerates to the PR 8 serving layer exactly.
pub fn shard_of(key: &Key, shards: usize) -> usize {
    debug_assert!(shards > 0, "a cluster has at least one shard");
    (key_hash(key) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialized_and_general_keys_hash_alike() {
        assert_eq!(
            key_hash(&Key::int(7)),
            key_hash(&Key::General(vec![Value::Int(7)]))
        );
        assert_eq!(
            key_hash(&Key::int2(7, 9)),
            key_hash(&Key::General(vec![Value::Int(7), Value::Int(9)]))
        );
    }

    #[test]
    fn hash_is_stable() {
        // Pinned values: a change here silently re-partitions every
        // cluster, so it must be deliberate.
        assert_eq!(key_hash(&Key::int(1)), 0x7194_f3e5_9ae4_7dcd);
        assert_eq!(shard_of(&Key::int(1), 4), 1);
    }

    #[test]
    fn components_do_not_collide_by_concatenation() {
        // ("ab","c") vs ("a","bc") differ because lengths are folded in.
        let k1 = Key::General(vec![Value::str("ab"), Value::str("c")]);
        let k2 = Key::General(vec![Value::str("a"), Value::str("bc")]);
        assert_ne!(key_hash(&k1), key_hash(&k2));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for i in 0..1000 {
            counts[shard_of(&Key::int(i), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 100, "shard {s} got only {c}/1000 keys");
        }
    }
}
