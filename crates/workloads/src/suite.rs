//! One representative query per workload class, bundled for equivalence
//! checks.
//!
//! Crash recovery (and any other "same state?" question) needs a quick,
//! broad probe of an engine's logical state. Running the full workload is
//! overkill; scanning raw versions misses the query layer. This module
//! picks one query from each of the five classes of §3.3 — time travel,
//! TPC-H under time travel, pure-key audit, range-timeslice, and the
//! bitemporal-dimension matrix — and returns their canonically-sorted
//! answers, so two engines can be compared class by class with one call.

use crate::{bitemporal, key, range, sort_canonical, tpch, tt, Ctx, QueryParams};
use bitempo_core::{Result, Row};
use bitempo_engine::api::{AppSpec, SysSpec};

/// The class labels, in the order [`five_class_answers`] reports them.
pub const FIVE_CLASSES: [&str; 5] = ["tt/T1", "tpch/Q6", "key/K1", "range/R1", "bitemporal/B3.2"];

/// Runs one representative query per workload class and returns the
/// canonically-sorted answers, labeled. The picks cover every temporal
/// access shape: a system-time `AS OF` aggregate (T1), an application-time
/// `AS OF` TPC-H filter (Q6), a full-history key audit (K1), an
/// all-versions range-timeslice (R1), and a mixed bitemporal point query
/// (B3.2).
pub fn five_class_answers(ctx: &Ctx<'_>, p: &QueryParams) -> Result<Vec<(&'static str, Vec<Row>)>> {
    let mut out = Vec::with_capacity(FIVE_CLASSES.len());
    let mut push = |label: &'static str, mut rows: Vec<Row>| {
        sort_canonical(&mut rows);
        out.push((label, rows));
    };
    push(
        FIVE_CLASSES[0],
        tt::t1(ctx, SysSpec::AsOf(p.sys_mid), AppSpec::All)?,
    );
    push(
        FIVE_CLASSES[1],
        tpch::run_query(ctx, 6, &tpch::Tt::app(p.app_mid))?,
    );
    push(
        FIVE_CLASSES[2],
        key::k1(ctx, &p.hot_customer, SysSpec::All, AppSpec::All)?,
    );
    push(FIVE_CLASSES[3], range::r1(ctx)?);
    push(
        FIVE_CLASSES[4],
        bitemporal::b3_variant(ctx, 2, 55, p.app_mid, p.sys_initial)?,
    );
    Ok(out)
}

/// Compares two [`five_class_answers`] outputs with float tolerance.
/// Returns the first mismatch as `"<class>: <difference>"`, or `None`
/// when every class agrees.
pub fn five_class_diff(
    a: &[(&'static str, Vec<Row>)],
    b: &[(&'static str, Vec<Row>)],
) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("class count {} vs {}", a.len(), b.len()));
    }
    for ((la, ra), (lb, rb)) in a.iter().zip(b) {
        if la != lb {
            return Some(format!("class order {la} vs {lb}"));
        }
        if let Some(diff) = crate::rows_approx_diff(ra, rb, 1e-9) {
            return Some(format!("{la}: {diff}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fixture;

    #[test]
    fn five_classes_agree_across_all_engines() {
        let fx = fixture();
        let mut reference: Option<Vec<(&'static str, Vec<Row>)>> = None;
        for (kind, engine) in &fx.engines {
            let ctx = Ctx::new(engine.as_ref()).unwrap();
            let answers = five_class_answers(&ctx, &fx.params).unwrap();
            assert_eq!(answers.len(), FIVE_CLASSES.len());
            // Each class must produce a label from the canonical list.
            for ((label, _), expect) in answers.iter().zip(FIVE_CLASSES) {
                assert_eq!(*label, expect);
            }
            match &reference {
                None => reference = Some(answers),
                Some(expected) => {
                    if let Some(diff) = five_class_diff(&answers, expected) {
                        panic!("{kind:?} disagrees with the reference: {diff}");
                    }
                }
            }
        }
        // At least one class must return rows on the tiny fixture, or the
        // equivalence check would be vacuous.
        let answers = reference.unwrap();
        assert!(
            answers.iter().any(|(_, rows)| !rows.is_empty()),
            "all five classes returned empty answers"
        );
    }
}
