//! Bitemporal-dimension queries B3.1–B3.11 (paper §3.3, Table 3).
//!
//! All variants derive from one non-temporal base query — a PARTSUPP
//! self-join: *"What (other) parts are supplied by the suppliers who supply
//! part `[P]`?"* — and vary how each time dimension is used:
//! **point** (`AS OF`), **correlation** (periods of the two sides must
//! overlap), or **agnostic** (no constraint), covering all nine cases of
//! Snodgrass's classification plus the current/past system-point split the
//! partitioned storage makes interesting (B3.1/B3.2, B3.6/B3.7).

use crate::Ctx;
use bitempo_core::{AppDate, Result, Row, SysTime, Value};
use bitempo_dbgen::col;
use bitempo_engine::api::{AppSpec, ColRange, SysSpec};
use bitempo_query::{distinct, hash_join, sort_by, temporal_join, JoinKind, SortKey};

/// How one time dimension participates in a B3 query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim<T> {
    /// `AS OF` a point.
    Point(T),
    /// The two join sides' periods must overlap.
    Correlation,
    /// Dimension unconstrained.
    Agnostic,
}

/// Executes the B3 self-join under the given dimension treatments and
/// returns the distinct other part keys, sorted.
pub fn b3(ctx: &Ctx<'_>, part: i64, app: Dim<AppDate>, sys: Dim<SysTime>) -> Result<Vec<Row>> {
    let app_spec = match app {
        Dim::Point(d) => AppSpec::AsOf(d),
        _ => AppSpec::All,
    };
    let sys_spec = match sys {
        Dim::Point(t) => SysSpec::AsOf(t),
        _ => SysSpec::All,
    };
    // Left side: versions supplying the probe part.
    let probe = vec![ColRange::eq(col::partsupp::PARTKEY, Value::Int(part))];
    let left = ctx.scan(ctx.t.partsupp, &sys_spec, &app_spec, &probe)?;
    // Right side: all partsupp versions under the same specs.
    let right = ctx.scan(ctx.t.partsupp, &sys_spec, &app_spec, &[])?;

    let app_cols = ctx.app_cols(ctx.t.partsupp);
    let sys_cols = ctx.sys_cols(ctx.t.partsupp);
    let left_arity = left.first().map_or(0, Row::arity);

    // Join on suppkey, honouring correlations.
    let mut joined = match (app, sys) {
        (Dim::Correlation, Dim::Correlation) => {
            let app_joined = temporal_join(
                &left,
                &right,
                &[col::partsupp::SUPPKEY],
                &[col::partsupp::SUPPKEY],
                app_cols,
                app_cols,
            );
            // Additionally require system-period overlap.
            app_joined
                .into_iter()
                .filter(|r| {
                    let ls = r.get(sys_cols.0);
                    let le = r.get(sys_cols.1);
                    let rs = r.get(left_arity + sys_cols.0);
                    let re = r.get(left_arity + sys_cols.1);
                    ls < re && rs < le
                })
                .collect()
        }
        (Dim::Correlation, _) => temporal_join(
            &left,
            &right,
            &[col::partsupp::SUPPKEY],
            &[col::partsupp::SUPPKEY],
            app_cols,
            app_cols,
        ),
        (_, Dim::Correlation) => temporal_join(
            &left,
            &right,
            &[col::partsupp::SUPPKEY],
            &[col::partsupp::SUPPKEY],
            sys_cols,
            sys_cols,
        ),
        _ => hash_join(
            &left,
            &right,
            &[col::partsupp::SUPPKEY],
            &[col::partsupp::SUPPKEY],
            JoinKind::Inner,
        ),
    };

    // Project the *other* part key and deduplicate.
    let other_part = left_arity + col::partsupp::PARTKEY;
    joined.retain(|r| r.get(other_part) != &Value::Int(part));
    let mut out = distinct(
        &joined
            .iter()
            .map(|r| r.project(&[other_part]))
            .collect::<Vec<_>>(),
    );
    sort_by(&mut out, &[SortKey::asc(0)]);
    Ok(out)
}

/// The eleven Table-3 variants, addressed by index 1..=11.
///
/// | # | App time | System time |
/// |---|---|---|
/// | 1 | point | point (current) |
/// | 2 | point | point (past) |
/// | 3 | correlation | point (current) |
/// | 4 | point | correlation |
/// | 5 | correlation | correlation |
/// | 6 | agnostic | point (current) |
/// | 7 | agnostic | point (past) |
/// | 8 | agnostic | correlation |
/// | 9 | point | agnostic |
/// | 10 | correlation | agnostic |
/// | 11 | agnostic | agnostic |
pub fn b3_variant(
    ctx: &Ctx<'_>,
    variant: u8,
    part: i64,
    app_point: AppDate,
    sys_past: SysTime,
) -> Result<Vec<Row>> {
    let now = ctx.engine.now();
    let (app, sys) = match variant {
        1 => (Dim::Point(app_point), Dim::Point(now)),
        2 => (Dim::Point(app_point), Dim::Point(sys_past)),
        3 => (Dim::Correlation, Dim::Point(now)),
        4 => (Dim::Point(app_point), Dim::Correlation),
        5 => (Dim::Correlation, Dim::Correlation),
        6 => (Dim::Agnostic, Dim::Point(now)),
        7 => (Dim::Agnostic, Dim::Point(sys_past)),
        8 => (Dim::Agnostic, Dim::Correlation),
        9 => (Dim::Point(app_point), Dim::Agnostic),
        10 => (Dim::Correlation, Dim::Agnostic),
        11 => (Dim::Agnostic, Dim::Agnostic),
        other => {
            return Err(bitempo_core::Error::Invalid(format!(
                "B3 variant {other} (valid: 1..=11)"
            )))
        }
    };
    b3(ctx, part, app, sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{assert_equivalent, fixture};

    const PROBE_PART: i64 = 55;

    #[test]
    fn all_eleven_variants_run_and_agree() {
        let p = fixture().params.clone();
        for variant in 1..=11u8 {
            let rows = assert_equivalent(|ctx| {
                b3_variant(ctx, variant, PROBE_PART, p.app_mid, p.sys_initial)
            });
            // The probe part itself never appears.
            for r in &rows {
                assert_ne!(r.get(0), &Value::Int(PROBE_PART), "variant {variant}");
            }
        }
    }

    #[test]
    fn agnostic_dominates_points() {
        let p = fixture().params.clone();
        let agnostic =
            assert_equivalent(|ctx| b3_variant(ctx, 11, PROBE_PART, p.app_mid, p.sys_initial));
        let current =
            assert_equivalent(|ctx| b3_variant(ctx, 6, PROBE_PART, p.app_mid, p.sys_initial));
        let pointy =
            assert_equivalent(|ctx| b3_variant(ctx, 1, PROBE_PART, p.app_mid, p.sys_initial));
        assert!(agnostic.len() >= current.len());
        assert!(current.len() >= pointy.len());
        assert!(
            !agnostic.is_empty(),
            "part 55's suppliers supply other parts"
        );
    }

    #[test]
    fn invalid_variant_rejected() {
        let fx = fixture();
        let ctx = Ctx::new(fx.engines[0].1.as_ref()).unwrap();
        assert!(b3_variant(
            &ctx,
            12,
            PROBE_PART,
            fx.params.app_mid,
            fx.params.sys_initial
        )
        .is_err());
        assert!(b3_variant(
            &ctx,
            0,
            PROBE_PART,
            fx.params.app_mid,
            fx.params.sys_initial
        )
        .is_err());
    }

    #[test]
    fn correlation_is_a_subset_of_agnostic() {
        let p = fixture().params.clone();
        let corr =
            assert_equivalent(|ctx| b3_variant(ctx, 5, PROBE_PART, p.app_mid, p.sys_initial));
        let agnostic =
            assert_equivalent(|ctx| b3_variant(ctx, 11, PROBE_PART, p.app_mid, p.sys_initial));
        use std::collections::HashSet;
        let a: HashSet<_> = agnostic.iter().collect();
        for r in &corr {
            assert!(a.contains(r), "correlated results must appear in agnostic");
        }
    }
}
