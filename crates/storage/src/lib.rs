//! # bitempo-storage
//!
//! Physical storage primitives for the bitemporal engines:
//!
//! * [`heap`] — an append-only slotted row heap (the row-store substrate for
//!   Systems A, B and D).
//! * [`mod@column`] — a dictionary-encoded columnar store with a delta/main
//!   split and an explicit merge operation (the System C substrate; the
//!   paper's §2.6 "delta/main approach").
//! * [`btree`] — an in-memory B+Tree with duplicate keys and linked leaves,
//!   used for every B-Tree index setting in the benchmark (paper §5.1).
//! * [`rtree`] — an R-Tree over period rectangles, the stand-in for
//!   PostgreSQL's GiST index (paper §2.5, §5.3.2).
//! * [`wal`] — write-ahead-log record framing (CRC-chained frames with
//!   torn-tail detection) and the labeled durability modes.
//!
//! None of the commercial systems in the paper uses temporal-specific storage
//! — and neither does this crate, deliberately: engines compose exactly these
//! conventional structures, which is the architectural finding under test.

pub mod btree;
pub mod column;
pub mod heap;
pub mod rtree;
pub mod wal;

pub use btree::BPlusTree;
pub use column::ColumnTable;
pub use heap::{Heap, SlotId};
pub use rtree::{RTree, Rect};
pub use wal::DurabilityMode;
