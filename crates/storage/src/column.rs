//! Dictionary-encoded columnar storage with a delta/main split.
//!
//! This is the System C substrate (paper §2.6): a columnar table where new
//! rows land in an appendable *delta* and a *merge* operation periodically
//! seals them into the read-optimized *main*. Strings are dictionary
//! encoded. Row ids are stable across merges (main rows keep their position;
//! delta rows are renumbered onto the end of main in append order, which
//! preserves ids because the delta always sits logically after main).

use bitempo_core::time::{AppDate, SysTime};
use bitempo_core::{DataType, Error, Result, Row, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One column's typed payload. `u32::MAX` is the dictionary code for NULL;
/// numeric columns carry a separate null mask only when NULLs appear.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<u32>),
    Date(Vec<i64>),
    SysTime(Vec<u64>),
}

impl ColumnData {
    fn new(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::SysTime => ColumnData::SysTime(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::SysTime(v) => v.len(),
        }
    }

    fn append_from(&mut self, other: &ColumnData) {
        match (self, other) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Double(a), ColumnData::Double(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (ColumnData::Date(a), ColumnData::Date(b)) => a.extend_from_slice(b),
            (ColumnData::SysTime(a), ColumnData::SysTime(b)) => a.extend_from_slice(b),
            _ => unreachable!("merge between differently-typed columns"),
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnData::Int(v) => v.clear(),
            ColumnData::Double(v) => v.clear(),
            ColumnData::Str(v) => v.clear(),
            ColumnData::Date(v) => v.clear(),
            ColumnData::SysTime(v) => v.clear(),
        }
    }
}

/// NULL sentinel for dictionary codes.
const NULL_CODE: u32 = u32::MAX;

/// A shared per-column string dictionary.
#[derive(Debug, Clone, Default)]
struct Dictionary {
    strings: Vec<Arc<str>>,
    codes: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    fn encode(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.codes.get(s) {
            return c;
        }
        let c = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.codes.insert(Arc::clone(s), c);
        c
    }

    fn decode(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }
}

/// A columnar table: main fragment + delta fragment + per-column dictionary.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    schema: Schema,
    main: Vec<ColumnData>,
    delta: Vec<ColumnData>,
    /// Null masks parallel to main/delta, one bit vec per column, lazily
    /// allocated (TPC-BiH data is NOT NULL almost everywhere).
    main_nulls: Vec<Option<Vec<bool>>>,
    delta_nulls: Vec<Option<Vec<bool>>>,
    dicts: Vec<Dictionary>,
    main_len: usize,
}

impl ColumnTable {
    /// Creates an empty table with the given value schema.
    pub fn new(schema: Schema) -> ColumnTable {
        let main = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.dtype))
            .collect();
        let delta = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.dtype))
            .collect();
        let n = schema.arity();
        ColumnTable {
            schema,
            main,
            delta,
            main_nulls: vec![None; n],
            delta_nulls: vec![None; n],
            dicts: vec![Dictionary::default(); n],
            main_len: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows (main + delta).
    pub fn len(&self) -> usize {
        self.main_len + self.delta_len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows currently sitting in the delta fragment.
    pub fn delta_len(&self) -> usize {
        self.delta.first().map_or(0, ColumnData::len)
    }

    /// Appends a row; returns its stable row id.
    ///
    /// (Named `append_row` rather than `append` so the workspace-unique
    /// name `append` stays reserved for the WAL's blocking append — tblint
    /// TB008 resolves intra-workspace calls by name, one hop deep.)
    pub fn append_row(&mut self, row: &Row) -> Result<usize> {
        if row.arity() != self.schema.arity() {
            return Err(Error::Invalid(format!(
                "row arity {} vs schema arity {}",
                row.arity(),
                self.schema.arity()
            )));
        }
        let delta_pos = self.delta_len();
        for (col, value) in row.values().iter().enumerate() {
            self.push_value(col, value, delta_pos)?;
        }
        Ok(self.main_len + delta_pos)
    }

    fn push_value(&mut self, col: usize, value: &Value, delta_pos: usize) -> Result<()> {
        let is_null = value.is_null();
        if is_null {
            let mask = self.delta_nulls[col].get_or_insert_with(|| vec![false; delta_pos]);
            mask.resize(delta_pos, false);
            mask.push(true);
        } else if let Some(mask) = self.delta_nulls[col].as_mut() {
            mask.resize(delta_pos, false);
            mask.push(false);
        }
        match (&mut self.delta[col], value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Int(v), Value::Null) => v.push(0),
            (ColumnData::Double(v), Value::Double(x)) => v.push(*x),
            (ColumnData::Double(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Double(v), Value::Null) => v.push(0.0),
            (ColumnData::Str(v), Value::Str(s)) => {
                let code = self.dicts[col].encode(s);
                v.push(code);
            }
            (ColumnData::Str(v), Value::Null) => v.push(NULL_CODE),
            (ColumnData::Date(v), Value::Date(d)) => v.push(d.0),
            (ColumnData::Date(v), Value::Null) => v.push(0),
            (ColumnData::SysTime(v), Value::SysTime(t)) => v.push(t.0),
            (ColumnData::SysTime(v), Value::Null) => v.push(0),
            (col_data, v) => {
                return Err(Error::TypeMismatch {
                    expected: format!("{:?}", self.schema.column(col).dtype),
                    found: format!("{v:?} for column storage {col_data:?}"),
                })
            }
        }
        Ok(())
    }

    /// Reads one cell.
    pub fn get_value(&self, col: usize, row: usize) -> Value {
        let (data, nulls, pos) = if row < self.main_len {
            (&self.main[col], &self.main_nulls[col], row)
        } else {
            (
                &self.delta[col],
                &self.delta_nulls[col],
                row - self.main_len,
            )
        };
        if let Some(mask) = nulls {
            if mask.get(pos).copied().unwrap_or(false) {
                return Value::Null;
            }
        }
        match data {
            ColumnData::Int(v) => Value::Int(v[pos]),
            ColumnData::Double(v) => Value::Double(v[pos]),
            ColumnData::Str(v) => {
                let code = v[pos];
                if code == NULL_CODE {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(self.dicts[col].decode(code)))
                }
            }
            ColumnData::Date(v) => Value::Date(AppDate(v[pos])),
            ColumnData::SysTime(v) => Value::SysTime(SysTime(v[pos])),
        }
    }

    /// Overwrites one cell in place (used by the engine to close the system
    /// period of a superseded version — the only in-place write a column
    /// store performs).
    pub fn set_value(&mut self, col: usize, row: usize, value: &Value) -> Result<()> {
        let main_len = self.main_len;
        let (data, pos) = if row < main_len {
            (&mut self.main[col], row)
        } else {
            (&mut self.delta[col], row - main_len)
        };
        match (data, value) {
            (ColumnData::Int(v), Value::Int(x)) => v[pos] = *x,
            (ColumnData::Double(v), Value::Double(x)) => v[pos] = *x,
            (ColumnData::Date(v), Value::Date(d)) => v[pos] = d.0,
            (ColumnData::SysTime(v), Value::SysTime(t)) => v[pos] = t.0,
            (ColumnData::Str(v), Value::Str(s)) => {
                let code = self.dicts[col].encode(s);
                v[pos] = code;
            }
            (_, v) => {
                return Err(Error::TypeMismatch {
                    expected: format!("{:?}", self.schema.column(col).dtype),
                    found: format!("{v:?}"),
                })
            }
        }
        Ok(())
    }

    /// Materializes a full row.
    pub fn get_row(&self, row: usize) -> Row {
        (0..self.schema.arity())
            .map(|c| self.get_value(c, row))
            .collect()
    }

    /// Merges the delta fragment into main. Row ids are unchanged.
    pub fn merge(&mut self) {
        let delta_rows = self.delta_len();
        for col in 0..self.schema.arity() {
            // Reconcile null masks before concatenating payloads.
            match (&mut self.main_nulls[col], &self.delta_nulls[col]) {
                (Some(m), Some(d)) => {
                    m.resize(self.main_len, false);
                    let mut d2 = d.clone();
                    d2.resize(delta_rows, false);
                    m.extend_from_slice(&d2);
                }
                (Some(m), None) => {
                    m.resize(self.main_len + delta_rows, false);
                }
                (None, Some(d)) => {
                    let mut m = vec![false; self.main_len];
                    let mut d2 = d.clone();
                    d2.resize(delta_rows, false);
                    m.extend_from_slice(&d2);
                    self.main_nulls[col] = Some(m);
                }
                (None, None) => {}
            }
            self.delta_nulls[col] = None;
            let delta = std::mem::replace(
                &mut self.delta[col],
                ColumnData::new(self.schema.column(col).dtype),
            );
            self.main[col].append_from(&delta);
            let mut recycled = delta;
            recycled.clear();
            self.delta[col] = recycled;
        }
        self.main_len += delta_rows;
    }

    /// Typed scan over an Int column (both fragments), for tight loops.
    pub fn scan_int(&self, col: usize) -> impl Iterator<Item = i64> + '_ {
        let main = match &self.main[col] {
            ColumnData::Int(v) => v.as_slice(),
            _ => &[],
        };
        let delta = match &self.delta[col] {
            ColumnData::Int(v) => v.as_slice(),
            _ => &[],
        };
        main.iter().chain(delta.iter()).copied()
    }

    /// Typed scan over a SysTime column (both fragments).
    pub fn scan_sys_time(&self, col: usize) -> impl Iterator<Item = SysTime> + '_ {
        let main = match &self.main[col] {
            ColumnData::SysTime(v) => v.as_slice(),
            _ => &[],
        };
        let delta = match &self.delta[col] {
            ColumnData::SysTime(v) => v.as_slice(),
            _ => &[],
        };
        main.iter().chain(delta.iter()).map(|&t| SysTime(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("price", DataType::Double),
            Column::new("since", DataType::Date),
            Column::new("sys_start", DataType::SysTime),
        ])
    }

    fn row(id: i64, name: &str, price: f64) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::str(name),
            Value::Double(price),
            Value::Date(AppDate(100 + id)),
            Value::SysTime(SysTime(id as u64)),
        ])
    }

    #[test]
    fn append_and_read_back() {
        let mut t = ColumnTable::new(schema());
        for i in 0..10 {
            let id = t.append_row(&row(i, "widget", i as f64 * 1.5)).unwrap();
            assert_eq!(id, i as usize);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.get_row(3), row(3, "widget", 4.5));
        assert_eq!(t.get_value(1, 7), Value::str("widget"));
    }

    #[test]
    fn dictionary_deduplicates() {
        let mut t = ColumnTable::new(schema());
        for i in 0..100 {
            t.append_row(&row(i, if i % 2 == 0 { "even" } else { "odd" }, 1.0))
                .unwrap();
        }
        assert_eq!(t.dicts[1].strings.len(), 2);
    }

    #[test]
    fn merge_preserves_row_ids_and_values() {
        let mut t = ColumnTable::new(schema());
        for i in 0..20 {
            t.append_row(&row(i, "x", 0.0)).unwrap();
        }
        let before: Vec<Row> = (0..20).map(|i| t.get_row(i)).collect();
        assert_eq!(t.delta_len(), 20);
        t.merge();
        assert_eq!(t.delta_len(), 0);
        assert_eq!(t.len(), 20);
        for (i, b) in before.iter().enumerate() {
            assert_eq!(&t.get_row(i), b);
        }
        // Appends after merge continue the id sequence.
        let id = t.append_row(&row(99, "y", 9.9)).unwrap();
        assert_eq!(id, 20);
        t.merge();
        assert_eq!(t.get_row(20), row(99, "y", 9.9));
    }

    #[test]
    fn nulls_round_trip_across_merge() {
        let mut t = ColumnTable::new(schema());
        t.append_row(&row(1, "a", 1.0)).unwrap();
        t.append_row(&Row::new(vec![
            Value::Int(2),
            Value::Null,
            Value::Null,
            Value::Date(AppDate(5)),
            Value::SysTime(SysTime(0)),
        ]))
        .unwrap();
        t.append_row(&row(3, "c", 3.0)).unwrap();
        assert!(t.get_value(1, 1).is_null());
        assert!(t.get_value(2, 1).is_null());
        assert!(!t.get_value(1, 2).is_null());
        t.merge();
        assert!(t.get_value(1, 1).is_null());
        assert!(t.get_value(2, 1).is_null());
        assert_eq!(t.get_value(1, 2), Value::str("c"));
    }

    #[test]
    fn set_value_closes_system_period() {
        let mut t = ColumnTable::new(schema());
        t.append_row(&row(1, "a", 1.0)).unwrap();
        t.merge();
        t.set_value(4, 0, &Value::SysTime(SysTime(42))).unwrap();
        assert_eq!(t.get_value(4, 0), Value::SysTime(SysTime(42)));
        // And in the delta fragment too.
        t.append_row(&row(2, "b", 2.0)).unwrap();
        t.set_value(0, 1, &Value::Int(7)).unwrap();
        assert_eq!(t.get_value(0, 1), Value::Int(7));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = ColumnTable::new(schema());
        let bad = Row::new(vec![Value::Int(1)]);
        assert!(t.append_row(&bad).is_err());
    }

    #[test]
    fn typed_scans() {
        let mut t = ColumnTable::new(schema());
        for i in 0..5 {
            t.append_row(&row(i, "s", 0.0)).unwrap();
        }
        t.merge();
        for i in 5..8 {
            t.append_row(&row(i, "s", 0.0)).unwrap();
        }
        let ids: Vec<i64> = t.scan_int(0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let ts: Vec<u64> = t.scan_sys_time(4).map(|t| t.0).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
