//! In-memory B+Tree with duplicate keys and linked leaves.
//!
//! This is the index structure behind every "B-Tree" setting in the
//! benchmark (paper §5.1: Time Index, Key+Time Index, Value Index). Keys are
//! generic, duplicates are allowed (a time index maps many rows to the same
//! date), and leaves are chained for cheap range scans — the access pattern
//! of `FOR SYSTEM_TIME FROM .. TO ..` queries.
//!
//! Deletion tolerates underfull leaves (no rebalancing): the engines delete
//! only when versions move from the current to the history partition, and a
//! slightly sparse leaf chain changes constants, not complexity. Separator
//! keys in internal nodes remain valid bounds after any delete.

use std::ops::Bound;

const MAX_KEYS: usize = 32;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` separates `children[i]` (strictly less) from
        /// `children[i + 1]` (greater or equal).
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<usize>,
    },
}

/// A B+Tree multimap.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Duplicate keys are kept in insertion order.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some((sep, right)) = self.insert_into(self.root, key, value) {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `(separator, new_right_node)` on split.
    fn insert_into(&mut self, node: usize, key: K, value: V) -> Option<(K, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                // Upper bound keeps duplicates in insertion order.
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                values.insert(pos, value);
                if keys.len() > MAX_KEYS {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal { keys, children } => {
                let child_pos = keys.partition_point(|k| *k <= key);
                let child = children[child_pos];
                if let Some((sep, right)) = self.insert_into(child, key, value) {
                    if let Node::Internal { keys, children } = &mut self.nodes[node] {
                        keys.insert(child_pos, sep);
                        children.insert(child_pos + 1, right);
                        if keys.len() > MAX_KEYS {
                            return Some(self.split_internal(node));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let Node::Leaf { keys, values, next } = &mut self.nodes[node] else {
            unreachable!("split_leaf on internal node");
        };
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid);
        let right_values: Vec<V> = values.split_off(mid);
        let sep = right_keys[0].clone();
        let right = Node::Leaf {
            keys: right_keys,
            values: right_values,
            next: next.take(),
        };
        *next = Some(new_idx);
        self.nodes.push(right);
        (sep, new_idx)
    }

    fn split_internal(&mut self, node: usize) -> (K, usize) {
        let new_idx = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!("split_internal on leaf");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys: Vec<K> = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children: Vec<usize> = children.split_off(mid + 1);
        let right = Node::Internal {
            keys: right_keys,
            children: right_children,
        };
        self.nodes.push(right);
        (sep, new_idx)
    }

    /// The leaf that may contain `key`, and the index of the first entry
    /// `>= key` within it (following bounds semantics of `lower`).
    fn seek(&self, key: &K, lower: bool) -> (usize, usize) {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    // For lower-bound seeks descend left of equal separators
                    // so duplicates spanning leaves are not skipped.
                    let pos = if lower {
                        keys.partition_point(|k| k < key)
                    } else {
                        keys.partition_point(|k| k <= key)
                    };
                    node = children[pos];
                }
                Node::Leaf { keys, .. } => {
                    let pos = if lower {
                        keys.partition_point(|k| k < key)
                    } else {
                        keys.partition_point(|k| k <= key)
                    };
                    return (node, pos);
                }
            }
        }
    }

    /// The leftmost leaf.
    fn leftmost(&self) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => node = children[0],
                Node::Leaf { .. } => return node,
            }
        }
    }

    /// All values for `key`, in insertion order.
    pub fn get(&self, key: &K) -> Vec<V> {
        self.range((Bound::Included(key), Bound::Included(key)))
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Iterates entries whose keys fall in `range`, in key order.
    pub fn range(&self, range: (Bound<&K>, Bound<&K>)) -> impl Iterator<Item = (&K, &V)> + '_ {
        let (leaf, pos) = match range.0 {
            Bound::Included(k) => self.seek(k, true),
            Bound::Excluded(k) => self.seek(k, false),
            Bound::Unbounded => (self.leftmost(), 0),
        };
        let upper: Option<(K, bool)> = match range.1 {
            Bound::Included(k) => Some((k.clone(), true)),
            Bound::Excluded(k) => Some((k.clone(), false)),
            Bound::Unbounded => None,
        };
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            pos,
            upper,
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.range((Bound::Unbounded, Bound::Unbounded))
    }

    /// Removes the first entry equal to `(key, value)`. Returns true if an
    /// entry was removed.
    pub fn remove(&mut self, key: &K, value: &V) -> bool
    where
        V: PartialEq,
    {
        let (mut leaf, mut pos) = self.seek(key, true);
        loop {
            let Node::Leaf { keys, values, next } = &mut self.nodes[leaf] else {
                unreachable!("seek returned internal node");
            };
            if pos >= keys.len() {
                match *next {
                    Some(n) => {
                        leaf = n;
                        pos = 0;
                        continue;
                    }
                    None => return false,
                }
            }
            if keys[pos] != *key {
                return false;
            }
            if values[pos] == *value {
                keys.remove(pos);
                values.remove(pos);
                self.len -= 1;
                return true;
            }
            pos += 1;
        }
    }
}

struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<usize>,
    pos: usize,
    upper: Option<(K, bool)>,
}

impl<'a, K: Ord + Clone, V: Clone> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            let Node::Leaf { keys, values, next } = &self.tree.nodes[leaf] else {
                unreachable!("leaf chain contains internal node");
            };
            if self.pos >= keys.len() {
                self.leaf = *next;
                self.pos = 0;
                continue;
            }
            let k = &keys[self.pos];
            if let Some((hi, inclusive)) = &self.upper {
                let in_range = if *inclusive { k <= hi } else { k < hi };
                if !in_range {
                    self.leaf = None;
                    return None;
                }
            }
            let v = &values[self.pos];
            self.pos += 1;
            return Some((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_range(t: &BPlusTree<i64, u32>, lo: Bound<&i64>, hi: Bound<&i64>) -> Vec<(i64, u32)> {
        t.range((lo, hi)).map(|(k, v)| (*k, *v)).collect()
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut t = BPlusTree::new();
        for i in 0..1000i64 {
            t.insert(i * 2, i as u32);
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(&10), vec![5]);
        assert_eq!(t.get(&11), Vec::<u32>::new());
        assert_eq!(t.get(&1998), vec![999]);
    }

    #[test]
    fn duplicates_kept_in_insertion_order() {
        let mut t = BPlusTree::new();
        for v in 0..100u32 {
            t.insert(7i64, v);
        }
        t.insert(6, 1000);
        t.insert(8, 2000);
        assert_eq!(t.get(&7), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::new();
        for i in (0..200i64).rev() {
            t.insert(i, i as u32);
        }
        let r = collect_range(&t, Bound::Included(&10), Bound::Excluded(&15));
        assert_eq!(r, vec![(10, 10), (11, 11), (12, 12), (13, 13), (14, 14)]);
        let r = collect_range(&t, Bound::Excluded(&195), Bound::Unbounded);
        assert_eq!(r, vec![(196, 196), (197, 197), (198, 198), (199, 199)]);
        let r = collect_range(&t, Bound::Unbounded, Bound::Included(&2));
        assert_eq!(r, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(t.iter().count(), 200);
    }

    #[test]
    fn range_with_duplicates_spanning_leaves() {
        let mut t = BPlusTree::new();
        // Force many splits with a single hot key surrounded by others.
        for i in 0..50i64 {
            t.insert(i, 0);
        }
        for v in 1..=200u32 {
            t.insert(25, v);
        }
        let vals = t.get(&25);
        assert_eq!(vals.len(), 201);
        assert_eq!(vals[0], 0);
        assert_eq!(*vals.last().unwrap(), 200);
    }

    #[test]
    fn ordered_iteration_after_random_inserts() {
        let mut t = BPlusTree::new();
        let mut rng = bitempo_core::Pcg32::new(99, 1);
        let mut expected = Vec::new();
        for i in 0..5000u32 {
            let k = rng.int_range(0, 999);
            t.insert(k, i);
            expected.push(k);
        }
        expected.sort_unstable();
        let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn remove_specific_entries() {
        let mut t = BPlusTree::new();
        t.insert(1i64, 10u32);
        t.insert(1, 11);
        t.insert(1, 12);
        t.insert(2, 20);
        assert!(t.remove(&1, &11));
        assert_eq!(t.get(&1), vec![10, 12]);
        assert!(!t.remove(&1, &11), "already gone");
        assert!(!t.remove(&3, &0), "missing key");
        assert!(t.remove(&2, &20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_across_leaf_boundaries() {
        let mut t = BPlusTree::new();
        for v in 0..500u32 {
            t.insert(42i64, v);
        }
        assert!(t.remove(&42, &499), "last duplicate lives in last leaf");
        assert_eq!(t.get(&42).len(), 499);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: BPlusTree<i64, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), Vec::<u32>::new());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn large_sequential_and_reverse_load() {
        for reverse in [false, true] {
            let mut t = BPlusTree::new();
            let keys: Vec<i64> = if reverse {
                (0..20_000).rev().collect()
            } else {
                (0..20_000).collect()
            };
            for &k in &keys {
                t.insert(k, k as u32);
            }
            assert_eq!(t.len(), 20_000);
            assert_eq!(t.get(&12_345), vec![12_345]);
            let slice = collect_range(&t, Bound::Included(&100), Bound::Excluded(&110));
            assert_eq!(slice.len(), 10);
        }
    }
}
