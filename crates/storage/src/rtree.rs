//! An R-Tree over period rectangles — the GiST stand-in.
//!
//! PostgreSQL (System D in the paper) can index periods with GiST, whose
//! default operator class builds an R-Tree over intervals. A bitemporal
//! version is a rectangle in the (application time × system time) plane, so
//! intersection queries answer "all versions overlapping this time window"
//! directly. The paper found GiST consistently *slower* than B-Trees for
//! these workloads (§5.3.2) — reproducing that requires a faithful R-Tree,
//! not a strawman, so this is a standard quadratic-split Guttman R-Tree.

/// An axis-aligned rectangle with inclusive integer coordinates.
///
/// Periods map their half-open `[start, end)` to `[start, end - 1]`.
/// One-dimensional (single period) indexes set the y-axis to `0..=0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Minimum x (e.g. application-time start).
    pub x_min: i64,
    /// Maximum x, inclusive.
    pub x_max: i64,
    /// Minimum y (e.g. system-time start).
    pub y_min: i64,
    /// Maximum y, inclusive.
    pub y_max: i64,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x_min: i64, x_max: i64, y_min: i64, y_max: i64) -> Rect {
        Rect {
            x_min,
            x_max,
            y_min,
            y_max,
        }
    }

    /// A 1-D interval `[lo, hi]` embedded on the x-axis.
    pub fn interval(lo: i64, hi: i64) -> Rect {
        Rect::new(lo, hi, 0, 0)
    }

    /// A degenerate point rectangle.
    pub fn point(x: i64, y: i64) -> Rect {
        Rect::new(x, x, y, y)
    }

    /// True if the rectangle contains no point: some axis is inverted
    /// (`min > max`). A half-open period `[s, e)` with `e <= s` converts to
    /// exactly such a rectangle (`[s, e - 1]` with `e - 1 < s`), so empty
    /// query periods become empty rectangles.
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max || self.y_min > self.y_max
    }

    /// True if the rectangles share any point. Inclusive on both ends —
    /// rectangles touching only at an edge *do* intersect, which is why
    /// half-open periods must be converted with `end - 1` before indexing
    /// (see [`Rect`] docs). An empty rectangle (inverted axis) intersects
    /// nothing: the coordinate comparisons alone would spuriously accept
    /// `other` ranges that straddle the inversion point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
    }

    /// The smallest rectangle covering both.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x_min: self.x_min.min(other.x_min),
            x_max: self.x_max.max(other.x_max),
            y_min: self.y_min.min(other.y_min),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Semi-perimeter based "area" used by the split heuristics. Saturating
    /// so sentinel-valued coordinates (`i64::MAX` period ends) stay finite.
    fn measure(&self) -> u64 {
        let w = self.x_max.saturating_sub(self.x_min).max(0) as u64;
        let h = self.y_max.saturating_sub(self.y_min).max(0) as u64;
        w.saturating_add(h)
    }

    /// How much `self` must grow to cover `other`.
    fn enlargement(&self, other: &Rect) -> u64 {
        self.union(other).measure().saturating_sub(self.measure())
    }
}

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 4;

/// Per-level node budget of [`RTree::estimate_fraction`]'s sampled descent.
const ESTIMATE_NODE_CAP: usize = 8;

#[derive(Debug, Clone)]
struct Entry<T> {
    rect: Rect,
    payload: Payload<T>,
}

#[derive(Debug, Clone)]
enum Payload<T> {
    Child(usize),
    Leaf(T),
}

#[derive(Debug, Clone)]
struct RNode<T> {
    entries: Vec<Entry<T>>,
    is_leaf: bool,
}

/// A Guttman R-Tree with quadratic split.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    nodes: Vec<RNode<T>>,
    root: usize,
    len: usize,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            nodes: vec![RNode {
                entries: Vec::new(),
                is_leaf: true,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `rect`.
    pub fn insert(&mut self, rect: Rect, value: T) {
        if let Some((r1, n1, r2, n2)) = self.insert_into(self.root, rect, value) {
            let new_root = RNode {
                entries: vec![
                    Entry {
                        rect: r1,
                        payload: Payload::Child(n1),
                    },
                    Entry {
                        rect: r2,
                        payload: Payload::Child(n2),
                    },
                ],
                is_leaf: false,
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Recursive insert; on split returns both halves' bounding rects/ids.
    fn insert_into(
        &mut self,
        node: usize,
        rect: Rect,
        value: T,
    ) -> Option<(Rect, usize, Rect, usize)> {
        if self.nodes[node].is_leaf {
            self.nodes[node].entries.push(Entry {
                rect,
                payload: Payload::Leaf(value),
            });
            if self.nodes[node].entries.len() > MAX_ENTRIES {
                return Some(self.split(node));
            }
            return None;
        }
        // Choose the child needing least enlargement (ties: smaller rect).
        let best = self.nodes[node]
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.rect.enlargement(&rect), e.rect.measure()))
            .map(|(i, _)| i)
            .expect("internal node has children");
        let child = match self.nodes[node].entries[best].payload {
            Payload::Child(c) => c,
            Payload::Leaf(_) => unreachable!("leaf payload in internal node"),
        };
        self.nodes[node].entries[best].rect = self.nodes[node].entries[best].rect.union(&rect);
        if let Some((r1, n1, r2, n2)) = self.insert_into(child, rect, value) {
            // Replace the split child entry with the two halves.
            self.nodes[node].entries[best] = Entry {
                rect: r1,
                payload: Payload::Child(n1),
            };
            self.nodes[node].entries.push(Entry {
                rect: r2,
                payload: Payload::Child(n2),
            });
            if self.nodes[node].entries.len() > MAX_ENTRIES {
                return Some(self.split(node));
            }
        }
        None
    }

    /// Quadratic split (Guttman 1984).
    fn split(&mut self, node: usize) -> (Rect, usize, Rect, usize) {
        let is_leaf = self.nodes[node].is_leaf;
        let entries = std::mem::take(&mut self.nodes[node].entries);

        // Pick the two seeds wasting the most area if grouped together.
        let (mut seed_a, mut seed_b, mut worst) = (0, 1, 0u64);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = entries[i]
                    .rect
                    .union(&entries[j].rect)
                    .measure()
                    .saturating_sub(entries[i].rect.measure())
                    .saturating_sub(entries[j].rect.measure());
                if waste >= worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }

        let mut group_a: Vec<Entry<T>> = Vec::new();
        let mut group_b: Vec<Entry<T>> = Vec::new();
        let mut rect_a = entries[seed_a].rect;
        let mut rect_b = entries[seed_b].rect;
        for (i, e) in entries.into_iter().enumerate() {
            if i == seed_a {
                group_a.push(e);
            } else if i == seed_b {
                group_b.push(e);
            } else if group_a.len() + MIN_ENTRIES > MAX_ENTRIES {
                // Force remaining into B to respect the minimum fill.
                rect_b = rect_b.union(&e.rect);
                group_b.push(e);
            } else if group_b.len() + MIN_ENTRIES > MAX_ENTRIES
                || rect_a.enlargement(&e.rect) <= rect_b.enlargement(&e.rect)
            {
                rect_a = rect_a.union(&e.rect);
                group_a.push(e);
            } else {
                rect_b = rect_b.union(&e.rect);
                group_b.push(e);
            }
        }

        self.nodes[node] = RNode {
            entries: group_a,
            is_leaf,
        };
        self.nodes.push(RNode {
            entries: group_b,
            is_leaf,
        });
        let new_idx = self.nodes.len() - 1;
        (rect_a, node, rect_b, new_idx)
    }

    /// All values whose rectangle intersects `query`.
    pub fn search(&self, query: &Rect) -> Vec<T> {
        self.search_counted(query, &mut 0)
    }

    /// Like [`RTree::search`], but counts every tree entry examined
    /// (internal and leaf) into `visits` — the probe-work number scan
    /// metrics report.
    pub fn search_counted(&self, query: &Rect, visits: &mut u64) -> Vec<T> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            for e in &self.nodes[node].entries {
                *visits += 1;
                if e.rect.intersects(query) {
                    match &e.payload {
                        Payload::Child(c) => stack.push(*c),
                        Payload::Leaf(v) => out.push(v.clone()),
                    }
                }
            }
        }
        out
    }

    /// Estimated fraction of indexed rectangles intersecting `query`, from
    /// a bounded sampled descent: at each level, the fraction of entries
    /// whose MBR intersects the query multiplies into the running estimate;
    /// at most [`ESTIMATE_NODE_CAP`] intersecting children are descended
    /// into per level, with unsampled intersecting subtrees assumed to
    /// match at the sampled mean. Cost is `O(cap * fanout * depth)` — far
    /// below a probe — and the result is deterministic (the sample is the
    /// first `cap` intersecting entries in tree order).
    pub fn estimate_fraction(&self, query: &Rect) -> f64 {
        if self.len == 0 || query.is_empty() {
            return 0.0;
        }
        let mut frontier = vec![self.root];
        let mut frac = 1.0_f64;
        loop {
            let mut total = 0usize;
            let mut leaf_hits = 0usize;
            let mut children = Vec::new();
            let mut leaf_level = false;
            for &n in &frontier {
                let node = &self.nodes[n];
                leaf_level |= node.is_leaf;
                for e in &node.entries {
                    total += 1;
                    if e.rect.intersects(query) {
                        match &e.payload {
                            Payload::Child(c) => children.push(*c),
                            Payload::Leaf(_) => leaf_hits += 1,
                        }
                    }
                }
            }
            if total == 0 {
                return 0.0;
            }
            if leaf_level {
                return (frac * leaf_hits as f64 / total as f64).clamp(0.0, 1.0);
            }
            frac *= children.len() as f64 / total as f64;
            if children.is_empty() {
                return 0.0;
            }
            children.truncate(ESTIMATE_NODE_CAP);
            frontier = children;
        }
    }

    /// Visits every value whose rectangle intersects `query`.
    pub fn search_visit(&self, query: &Rect, mut visit: impl FnMut(&Rect, &T)) {
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            for e in &self.nodes[node].entries {
                if e.rect.intersects(query) {
                    match &e.payload {
                        Payload::Child(c) => stack.push(*c),
                        Payload::Leaf(v) => visit(&e.rect, v),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_predicates() {
        let a = Rect::new(0, 10, 0, 10);
        let b = Rect::new(10, 20, 5, 15);
        let c = Rect::new(11, 20, 0, 10);
        assert!(a.intersects(&b), "touching edges intersect (inclusive)");
        assert!(!a.intersects(&c));
        assert_eq!(a.union(&c), Rect::new(0, 20, 0, 10));
        assert!(Rect::point(5, 5).intersects(&a));
    }

    #[test]
    fn empty_rects_intersect_nothing() {
        let a = Rect::new(0, 10, 0, 10);
        // An empty half-open period [5, 5) converts to [5, 4]: inverted.
        let empty_x = Rect::new(5, 4, 0, 10);
        let empty_y = Rect::new(0, 10, 5, 4);
        assert!(empty_x.is_empty());
        assert!(empty_y.is_empty());
        assert!(!a.is_empty());
        // Raw coordinate comparisons would accept these (5 <= 10 && 0 <= 4),
        // matching versions that straddle the inversion point.
        assert!(!empty_x.intersects(&a), "empty query rect matches nothing");
        assert!(!a.intersects(&empty_x), "in either operand position");
        assert!(!empty_y.intersects(&a));
        assert!(!empty_x.intersects(&empty_y));
        // Degenerate-but-nonempty rects (points) still behave.
        assert!(!Rect::point(5, 5).is_empty());
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = RTree::new();
        t.insert(Rect::interval(0, 9), "a");
        t.insert(Rect::interval(10, 19), "b");
        t.insert(Rect::interval(5, 14), "c");
        let mut hits = t.search(&Rect::interval(8, 11));
        hits.sort_unstable();
        assert_eq!(hits, vec!["a", "b", "c"]);
        let hits = t.search(&Rect::interval(30, 40));
        assert!(hits.is_empty());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn search_matches_linear_scan() {
        let mut t = RTree::new();
        let mut rng = bitempo_core::Pcg32::new(17, 4);
        let mut rects = Vec::new();
        for i in 0..2000u32 {
            let x = rng.int_range(0, 10_000);
            let w = rng.int_range(0, 500);
            let y = rng.int_range(0, 1_000);
            let h = rng.int_range(0, 100);
            let r = Rect::new(x, x + w, y, y + h);
            t.insert(r, i);
            rects.push(r);
        }
        for _ in 0..50 {
            let x = rng.int_range(0, 10_000);
            let y = rng.int_range(0, 1_000);
            let q = Rect::new(x, x + 300, y, y + 50);
            let mut got = t.search(&q);
            got.sort_unstable();
            let mut expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn sentinel_coordinates_do_not_overflow() {
        let mut t = RTree::new();
        // Open-ended periods map to i64::MAX - 1 upper bounds.
        for i in 0..100i64 {
            t.insert(Rect::new(i, i64::MAX - 1, 0, 0), i);
        }
        let hits = t.search(&Rect::point(1_000_000, 0));
        assert_eq!(hits.len(), 100, "all open periods cover any future point");
    }

    #[test]
    fn visit_variant_sees_rects() {
        let mut t = RTree::new();
        t.insert(Rect::interval(1, 2), 10);
        t.insert(Rect::interval(3, 4), 20);
        let mut seen = Vec::new();
        t.search_visit(&Rect::interval(0, 10), |r, v| seen.push((r.x_min, *v)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 10), (3, 20)]);
    }
}
