//! Append-only slotted row heap.
//!
//! The current and history partitions of the row-store engines are heaps of
//! version records. Slots are stable (a record never moves), deletion leaves
//! a tombstone, and full scans skip tombstones. This mirrors how the paper's
//! row stores lay out their regular tables — there is nothing temporal here.

/// Stable identifier of a record within one heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// An append-only arena of records with tombstone deletion.
#[derive(Debug, Clone)]
pub struct Heap<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for Heap<T> {
    fn default() -> Self {
        Heap {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> Heap<T> {
    /// Creates an empty heap.
    pub fn new() -> Heap<T> {
        Heap::default()
    }

    /// Creates an empty heap with capacity for `cap` records.
    pub fn with_capacity(cap: usize) -> Heap<T> {
        Heap {
            slots: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Appends a record and returns its slot.
    pub fn insert(&mut self, record: T) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(Some(record));
        self.live += 1;
        id
    }

    /// The record in `slot`, if it has not been deleted.
    pub fn get(&self, slot: SlotId) -> Option<&T> {
        self.slots.get(slot.0 as usize)?.as_ref()
    }

    /// Mutable access to the record in `slot`.
    pub fn get_mut(&mut self, slot: SlotId) -> Option<&mut T> {
        self.slots.get_mut(slot.0 as usize)?.as_mut()
    }

    /// Tombstones `slot` and returns the record, if it was live.
    pub fn remove(&mut self, slot: SlotId) -> Option<T> {
        let r = self.slots.get_mut(slot.0 as usize)?.take();
        if r.is_some() {
            self.live -= 1;
        }
        r
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live records remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + tombstoned). This is what a table
    /// scan has to walk, which is why deletes do not make scans cheaper —
    /// an effect the history tables in the paper exhibit too.
    pub fn allocated(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over live records with their slots, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.iter_range(0..self.slots.len())
    }

    /// Iterates over live records whose slot index falls in `range`, in
    /// insertion order. This is the chunked-access primitive behind
    /// morsel-parallel scans: slot indices are stable, so disjoint ranges
    /// partition the heap without coordination and concatenating per-range
    /// results in range order reproduces a full [`Heap::iter`] exactly.
    pub fn iter_range(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = (SlotId, &T)> {
        let end = range.end.min(self.slots.len());
        let start = range.start.min(end);
        self.slots[start..end]
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|r| (SlotId((start + i) as u32), r)))
    }
}

impl<'a, T> IntoIterator for &'a Heap<T> {
    type Item = (SlotId, &'a T);
    type IntoIter = Box<dyn Iterator<Item = (SlotId, &'a T)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut h = Heap::new();
        let a = h.insert("alpha");
        let b = h.insert("beta");
        assert_eq!(h.get(a), Some(&"alpha"));
        assert_eq!(h.get(b), Some(&"beta"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn remove_tombstones() {
        let mut h = Heap::new();
        let a = h.insert(1);
        let b = h.insert(2);
        assert_eq!(h.remove(a), Some(1));
        assert_eq!(h.remove(a), None, "double remove is a no-op");
        assert_eq!(h.get(a), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.allocated(), 2, "tombstones still occupy slots");
        assert_eq!(h.get(b), Some(&2));
    }

    #[test]
    fn iter_skips_tombstones_preserves_order() {
        let mut h = Heap::new();
        let ids: Vec<_> = (0..5).map(|i| h.insert(i * 10)).collect();
        h.remove(ids[1]);
        h.remove(ids[3]);
        let seen: Vec<_> = h.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![0, 20, 40]);
    }

    #[test]
    fn iter_range_partitions_exactly() {
        let mut h = Heap::new();
        let ids: Vec<_> = (0..10).map(|i| h.insert(i)).collect();
        h.remove(ids[2]);
        h.remove(ids[7]);
        // Disjoint ranges concatenated in order == full iteration.
        let full: Vec<_> = h.iter().map(|(s, v)| (s, *v)).collect();
        let mut chunked = Vec::new();
        for start in (0..h.allocated()).step_by(3) {
            chunked.extend(h.iter_range(start..start + 3).map(|(s, v)| (s, *v)));
        }
        assert_eq!(chunked, full);
        // Out-of-bounds ranges are clamped, not panicking.
        assert_eq!(h.iter_range(8..100).count(), 2);
        assert_eq!(h.iter_range(50..60).count(), 0);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut h = Heap::new();
        let a = h.insert(vec![1, 2]);
        h.get_mut(a).unwrap().push(3);
        assert_eq!(h.get(a), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn out_of_range_slot_is_none() {
        let h: Heap<i32> = Heap::new();
        assert_eq!(h.get(SlotId(99)), None);
        assert!(h.is_empty());
    }
}
