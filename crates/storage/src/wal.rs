//! Write-ahead-log record framing and durability-mode labels.
//!
//! This module owns the *byte format* of the WAL — the same defensive
//! archive-v2 discipline (`len | crc32 | body` records, bounded lengths,
//! checksum-before-parse) applied to an open-ended log:
//!
//! * the stream starts with an 8-byte header `"BIWL" | version: u32`;
//! * every record is `len: u32 | crc32: u32 | body`, where the body is
//!   `seq: u64 | stream_crc: u32 | payload` — `seq` is the dense 1-based
//!   record number and `stream_crc` chains a CRC-32 over every payload up
//!   to and including this one, so a record can neither be reordered nor
//!   substituted without breaking the chain;
//! * there is no footer: a WAL is torn by definition whenever the machine
//!   stops, and [`scan`] recovers the longest valid prefix instead of
//!   demanding completeness.
//!
//! [`scan`] is deliberately infallible: corruption is an *expected* input
//! (that is the whole point of a WAL), so it reports the clean truncation
//! point and the reason the tail was rejected rather than erroring, and it
//! never panics or over-allocates on hostile length prefixes.
//!
//! Durability policy — *when* appended bytes are forced to stable storage —
//! lives with the log writer (`bitempo-wal`), not here; this module only
//! defines the three labeled modes so every layer names them identically.

use bitempo_core::crc::{crc32, Crc32};

/// WAL stream magic.
pub const WAL_MAGIC: [u8; 4] = *b"BIWL";
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version.
pub const WAL_HEADER_LEN: usize = 8;
/// Per-record frame overhead: length + frame checksum.
pub const FRAME_OVERHEAD: usize = 8;
/// Body overhead inside the frame: sequence number + stream checksum.
pub const BODY_OVERHEAD: usize = 12;
/// Upper bound on one record body, mirroring the archive's per-transaction
/// bound: a length prefix above this is corruption, not data.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// When a committed transaction's WAL bytes are forced to stable storage.
///
/// The three labeled modes of the throughput/durability trade-off. The
/// labels (`dur_strict` / `dur_batched_Nms` / `dur_async`) are shared
/// vocabulary across tuning, bench reports and CI, so commit cost is never
/// reported without naming the guarantee it bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// fsync once per commit: an acknowledged commit is durable.
    Strict,
    /// Group commit: a flusher coalesces appended commits and makes them
    /// durable together every `N` milliseconds. A commit is durable once
    /// the flusher acknowledges its batch, not when `append` returns.
    Batched(u32),
    /// Append without syncing: the OS (or process lifetime) decides. A
    /// crash may lose any suffix of acknowledged commits.
    Async,
}

impl DurabilityMode {
    /// The canonical mode label: `dur_strict`, `dur_batched_10ms`,
    /// `dur_async`.
    pub fn label(&self) -> String {
        match self {
            DurabilityMode::Strict => "dur_strict".to_string(),
            DurabilityMode::Batched(ms) => format!("dur_batched_{ms}ms"),
            DurabilityMode::Async => "dur_async".to_string(),
        }
    }

    /// Parses a canonical label back into a mode.
    pub fn parse_label(label: &str) -> Option<DurabilityMode> {
        match label {
            "dur_strict" => Some(DurabilityMode::Strict),
            "dur_async" => Some(DurabilityMode::Async),
            other => {
                let ms = other
                    .strip_prefix("dur_batched_")?
                    .strip_suffix("ms")?
                    .parse()
                    .ok()?;
                Some(DurabilityMode::Batched(ms))
            }
        }
    }
}

impl Default for DurabilityMode {
    /// No sync by default: durability is an explicit tuning decision, like
    /// building an index, and only takes effect where a WAL is attached.
    fn default() -> DurabilityMode {
        DurabilityMode::Async
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The 8-byte WAL stream header.
pub fn header_bytes() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Stateful record encoder: assigns dense sequence numbers and maintains
/// the chained stream CRC. One appender per WAL stream, for its lifetime.
#[derive(Debug, Clone)]
pub struct WalAppender {
    stream: Crc32,
    next_seq: u64,
}

impl Default for WalAppender {
    fn default() -> WalAppender {
        WalAppender::new()
    }
}

impl WalAppender {
    /// A fresh appender for a new stream; the first record gets `seq` 1.
    pub fn new() -> WalAppender {
        WalAppender {
            stream: Crc32::new(),
            next_seq: 1,
        }
    }

    /// An appender resuming after `records` already-encoded records whose
    /// chained stream state is `stream` (as returned by [`WalScan`]).
    pub fn resume(records: u64, stream: Crc32) -> WalAppender {
        WalAppender {
            stream,
            next_seq: records + 1,
        }
    }

    /// The sequence number the next [`WalAppender::encode`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames `payload` as the next record, returning `(seq, frame bytes)`.
    pub fn encode(&mut self, payload: &[u8]) -> (u64, Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stream.update(payload);
        let mut body = Vec::with_capacity(BODY_OVERHEAD + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&self.stream.finish().to_le_bytes());
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        (seq, frame)
    }
}

/// One validated record recovered from a WAL stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Dense 1-based record number.
    pub seq: u64,
    /// The record payload.
    pub payload: Vec<u8>,
}

/// The result of scanning a (possibly torn) WAL stream: the longest valid
/// prefix, where it ends, and why the rest was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every record of the valid prefix, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the first invalid byte — the clean truncation point.
    /// Recovery may truncate the stream here and resume appending.
    pub valid_len: u64,
    /// `Some(reason)` if the stream ended in a torn or corrupt tail;
    /// `None` if every byte of the input was a valid record.
    pub torn: Option<String>,
    /// Chained stream CRC state after the valid prefix, for
    /// [`WalAppender::resume`].
    pub stream: Crc32,
}

impl WalScan {
    /// True when the input parsed completely, with no torn tail.
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
    }

    /// Sequence number of the last valid record (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }
}

/// Scans a WAL stream, recovering the longest valid record prefix.
///
/// Infallible by design: any malformed byte — truncated frame, hostile
/// length, checksum mismatch, broken sequence or stream-CRC chain — stops
/// the scan at the last clean record boundary and is reported in
/// [`WalScan::torn`]. The scan never panics and never allocates more than
/// the input could hold.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan {
        records: Vec::new(),
        valid_len: 0,
        torn: None,
        stream: Crc32::new(),
    };
    if bytes.len() < WAL_HEADER_LEN {
        out.torn = Some(format!("truncated header: {} bytes", bytes.len()));
        return out;
    }
    if bytes[..4] != WAL_MAGIC {
        out.torn = Some("bad stream magic".to_string());
        return out;
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        out.torn = Some(format!("unsupported wal version {version}"));
        return out;
    }
    let mut pos = WAL_HEADER_LEN;
    out.valid_len = pos as u64;
    let mut expect_seq = 1u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return out; // clean end on a record boundary
        }
        if rest.len() < FRAME_OVERHEAD {
            out.torn = Some(format!("torn frame header at offset {pos}"));
            return out;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let expect_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES {
            out.torn = Some(format!(
                "record at offset {pos} claims {len} bytes (bound {MAX_RECORD_BYTES})"
            ));
            return out;
        }
        let body_len = len as usize;
        if body_len < BODY_OVERHEAD {
            out.torn = Some(format!("record at offset {pos} shorter than its envelope"));
            return out;
        }
        let Some(body) = rest.get(FRAME_OVERHEAD..FRAME_OVERHEAD + body_len) else {
            out.torn = Some(format!("torn record at offset {pos}"));
            return out;
        };
        if crc32(body) != expect_crc {
            out.torn = Some(format!("checksum mismatch at offset {pos}"));
            return out;
        }
        let seq = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        if seq != expect_seq {
            out.torn = Some(format!(
                "sequence break at offset {pos}: record {seq}, expected {expect_seq}"
            ));
            return out;
        }
        let chain = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
        let payload = &body[BODY_OVERHEAD..];
        let mut next_stream = out.stream;
        next_stream.update(payload);
        if next_stream.finish() != chain {
            out.torn = Some(format!("stream checksum break at offset {pos}"));
            return out;
        }
        out.stream = next_stream;
        out.records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        pos += FRAME_OVERHEAD + body_len;
        out.valid_len = pos as u64;
        expect_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        let mut app = WalAppender::new();
        for p in payloads {
            let (_, frame) = app.encode(p);
            bytes.extend_from_slice(&frame);
        }
        bytes
    }

    #[test]
    fn roundtrip_clean_stream() {
        let bytes = stream_of(&[b"alpha", b"", b"gamma"]);
        let s = scan(&bytes);
        assert!(s.is_clean(), "{:?}", s.torn);
        assert_eq!(s.valid_len, bytes.len() as u64);
        assert_eq!(s.last_seq(), 3);
        assert_eq!(s.records[0].payload, b"alpha");
        assert_eq!(s.records[1].payload, b"");
        assert_eq!(s.records[2].payload, b"gamma");
    }

    #[test]
    fn header_only_is_clean_and_empty() {
        let s = scan(&header_bytes());
        assert!(s.is_clean());
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, WAL_HEADER_LEN as u64);
    }

    #[test]
    fn truncation_recovers_the_prefix() {
        let bytes = stream_of(&[b"one", b"two", b"three"]);
        let two = stream_of(&[b"one", b"two"]);
        for cut in two.len() + 1..bytes.len() {
            let s = scan(&bytes[..cut]);
            assert!(!s.is_clean());
            assert_eq!(s.records.len(), 2, "cut at {cut}");
            assert_eq!(s.valid_len, two.len() as u64, "cut at {cut}");
        }
        // Cutting exactly on the boundary is a clean two-record stream.
        let s = scan(&two);
        assert!(s.is_clean());
        assert_eq!(s.records.len(), 2);
    }

    #[test]
    fn bit_flip_stops_at_the_flipped_record() {
        let bytes = stream_of(&[b"first-record", b"second-record"]);
        let one = stream_of(&[b"first-record"]).len();
        // Flip one payload bit inside the second record.
        let mut bad = bytes.clone();
        let target = one + FRAME_OVERHEAD + BODY_OVERHEAD + 2;
        bad[target] ^= 0x40;
        let s = scan(&bad);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, one as u64);
        assert!(s.torn.unwrap().contains("checksum mismatch"));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert!(s.torn.unwrap().contains("bound"));
    }

    #[test]
    fn sequence_and_stream_chain_reject_record_substitution() {
        // Swap two equally-framed records: frame CRCs still match, but the
        // seq chain breaks on the first swapped record.
        let mut a = WalAppender::new();
        let (_, f1) = a.encode(b"payload-A");
        let (_, f2) = a.encode(b"payload-B");
        let mut swapped = header_bytes().to_vec();
        swapped.extend_from_slice(&f2);
        swapped.extend_from_slice(&f1);
        let s = scan(&swapped);
        assert!(s.records.is_empty());
        assert!(s.torn.unwrap().contains("sequence break"));

        // A forged record with the right seq but recomputed frame CRC still
        // breaks the chained stream CRC (which covers the true history).
        let mut b = WalAppender::new();
        let (_, g1) = b.encode(b"payload-A");
        let mut c = WalAppender::new();
        let (_, _) = c.encode(b"something-else");
        let (_, g2_forged) = c.encode(b"payload-B");
        let mut forged = header_bytes().to_vec();
        forged.extend_from_slice(&g1);
        forged.extend_from_slice(&g2_forged);
        let s = scan(&forged);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn.unwrap().contains("stream checksum"));
    }

    #[test]
    fn resume_continues_the_chain() {
        let bytes = stream_of(&[b"one", b"two"]);
        let s = scan(&bytes);
        let mut resumed = WalAppender::resume(s.last_seq(), s.stream);
        assert_eq!(resumed.next_seq(), 3);
        let (seq, frame) = resumed.encode(b"three");
        assert_eq!(seq, 3);
        let mut full = bytes;
        full.extend_from_slice(&frame);
        let s = scan(&full);
        assert!(s.is_clean());
        assert_eq!(s.last_seq(), 3);
    }

    #[test]
    fn mode_labels_roundtrip() {
        for mode in [
            DurabilityMode::Strict,
            DurabilityMode::Batched(10),
            DurabilityMode::Batched(250),
            DurabilityMode::Async,
        ] {
            assert_eq!(DurabilityMode::parse_label(&mode.label()), Some(mode));
        }
        assert_eq!(
            DurabilityMode::Batched(10).label(),
            "dur_batched_10ms".to_string()
        );
        assert_eq!(DurabilityMode::parse_label("dur_batched_ms"), None);
        assert_eq!(DurabilityMode::parse_label("fsync"), None);
        assert_eq!(DurabilityMode::default(), DurabilityMode::Async);
    }

    #[test]
    fn never_panics_on_garbage() {
        let mut x = 0x2545_F491u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in 0..64 {
            let garbage: Vec<u8> = (0..len).map(|_| (rng() & 0xFF) as u8).collect();
            let _ = scan(&garbage);
        }
    }
}
