//! Fixture-based rule tests: every TB rule has one firing and one clean
//! fixture under `fixtures/` (a directory the workspace walker skips, so
//! the firing fixtures never pollute a real lint run).

use tblint::rules::{self, check_parity};
use tblint::{check_source, Diagnostic};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn tb001_fixture_fires_outside_bench_and_not_inside() {
    let src = fixture("tb001_fires.rs");
    let diags = check_source("crates/engine/src/lib.rs", &src);
    assert_eq!(codes(&diags), [rules::TB001, rules::TB001], "{diags:?}");
    assert!(diags.iter().all(|d| d.waived.is_none()));
    // The same source is legal where the wall clock is the measurement.
    assert!(check_source("crates/bench/src/runner.rs", &src).is_empty());
    assert!(check_source("crates/core/src/obs.rs", &src).is_empty());
}

#[test]
fn tb001_clean_fixture_passes() {
    let src = fixture("tb001_clean.rs");
    assert!(check_source("crates/engine/src/lib.rs", &src).is_empty());
}

#[test]
fn tb002_fixture_fires_outside_core_time_and_not_inside() {
    let src = fixture("tb002_fires.rs");
    let diags = check_source("crates/query/src/temporal.rs", &src);
    assert_eq!(codes(&diags), [rules::TB002, rules::TB002], "{diags:?}");
    // The half-open matchers themselves live in core::time / core::schema.
    assert!(check_source("crates/core/src/time.rs", &src).is_empty());
    assert!(check_source("crates/core/src/schema.rs", &src).is_empty());
}

#[test]
fn tb002_clean_fixture_passes() {
    let src = fixture("tb002_clean.rs");
    assert!(check_source("crates/query/src/temporal.rs", &src).is_empty());
}

#[test]
fn tb002_tindex_fixture_fires_inside_the_index_crate() {
    // The temporal index is built *from* event-list and endpoint-list
    // comparisons, which makes it the likeliest place for a closed-interval
    // slip — and it is not exempt: only core::time / core::schema own
    // endpoint comparison logic.
    let src = fixture("tb002_tindex_fires.rs");
    let diags = check_source("crates/tindex/src/interval.rs", &src);
    assert_eq!(codes(&diags), [rules::TB002, rules::TB002], "{diags:?}");
    let diags = check_source("crates/tindex/src/timeline.rs", &src);
    assert_eq!(codes(&diags), [rules::TB002, rules::TB002], "{diags:?}");
    assert!(check_source("crates/core/src/time.rs", &src).is_empty());
}

#[test]
fn tb002_tindex_clean_fixture_passes() {
    let src = fixture("tb002_tindex_clean.rs");
    assert!(check_source("crates/tindex/src/interval.rs", &src).is_empty());
    assert!(check_source("crates/tindex/src/timeline.rs", &src).is_empty());
}

#[test]
fn tb003_fixture_fires_in_output_paths_only() {
    let src = fixture("tb003_fires.rs");
    let diags = check_source("crates/bench/src/report.rs", &src);
    assert!(!diags.is_empty());
    assert!(codes(&diags).iter().all(|c| *c == rules::TB003));
    // Hash maps are fine where iteration order never reaches an artifact.
    assert!(check_source("crates/engine/src/catalog.rs", &src).is_empty());
}

#[test]
fn tb003_clean_fixture_passes() {
    let src = fixture("tb003_clean.rs");
    assert!(check_source("crates/bench/src/report.rs", &src).is_empty());
}

#[test]
fn tb003_optimizer_fixture_fires_in_the_feedback_store() {
    // The optimizer's feedback snapshot feeds bench notes and plan
    // tie-breaks, so the module is in TB003 scope like the report writers.
    let src = fixture("tb003_optimizer_fires.rs");
    let diags = check_source("crates/query/src/optimizer.rs", &src);
    assert!(!diags.is_empty());
    assert!(
        codes(&diags).iter().all(|c| *c == rules::TB003),
        "{diags:?}"
    );
    // The same source is out of scope elsewhere in the query crate.
    assert!(check_source("crates/query/src/plan.rs", &src).is_empty());
}

#[test]
fn tb003_optimizer_clean_fixture_passes() {
    let src = fixture("tb003_optimizer_clean.rs");
    assert!(check_source("crates/query/src/optimizer.rs", &src).is_empty());
}

#[test]
fn tb004_fixture_fires_in_hot_paths_only() {
    let src = fixture("tb004_fires.rs");
    let diags = check_source("crates/engine/src/rowscan.rs", &src);
    assert_eq!(
        codes(&diags),
        [rules::TB004, rules::TB004, rules::TB004],
        "unwrap, expect, slice-index: {diags:?}"
    );
    assert!(check_source("crates/engine/src/catalog.rs", &src).is_empty());
}

#[test]
fn tb004_clean_fixture_passes() {
    let src = fixture("tb004_clean.rs");
    assert!(check_source("crates/engine/src/morsel.rs", &src).is_empty());
}

#[test]
fn tb004_waiver_fixture_suppresses_with_reason() {
    let src = fixture("tb004_waived.rs");
    let diags = check_source("crates/engine/src/system_a.rs", &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let reason = diags[0].waived.as_deref().expect("finding is waived");
    assert!(reason.contains("catalog-issued"), "{reason}");
}

#[test]
fn tb006_fixture_fires_on_undeclared_durability() {
    let src = fixture("tb006_fires.rs");
    let diags = check_source("crates/wal/src/log.rs", &src);
    assert_eq!(
        codes(&diags),
        [rules::TB006, rules::TB006],
        "missing mode, defaulted mode: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.waived.is_none()));
}

#[test]
fn tb006_clean_fixture_passes() {
    let src = fixture("tb006_clean.rs");
    assert!(check_source("crates/wal/src/recover.rs", &src).is_empty());
    // The rule is workspace-wide: the same sources stay clean (and would
    // stay flagged) under any path label.
    assert!(check_source("crates/bench/src/experiments.rs", &src).is_empty());
}

#[test]
fn tb006_waiver_fixture_suppresses_with_reason() {
    let src = fixture("tb006_waived.rs");
    let diags = check_source("crates/wal/src/log.rs", &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let reason = diags[0].waived.as_deref().expect("finding is waived");
    assert!(reason.contains("sizing"), "{reason}");
}

#[test]
fn tb007_fixture_fires_outside_sanctioned_paths_only() {
    let src = fixture("tb007_fires.rs");
    let diags = check_source("crates/bench/src/experiments.rs", &src);
    assert_eq!(
        codes(&diags),
        [rules::TB007, rules::TB007],
        "bare and suffixed receivers: {diags:?}"
    );
    // The loader, recovery, MVCC, engine internals and the test tree are
    // the sanctioned write paths.
    assert!(check_source("crates/histgen/src/loader.rs", &src).is_empty());
    assert!(check_source("crates/wal/src/recover.rs", &src).is_empty());
    assert!(check_source("crates/txn/src/lib.rs", &src).is_empty());
    assert!(check_source("crates/engine/src/testutil.rs", &src).is_empty());
    assert!(check_source("tests/tests/mvcc_isolation.rs", &src).is_empty());
}

#[test]
fn tb007_clean_fixture_passes() {
    let src = fixture("tb007_clean.rs");
    assert!(check_source("crates/bench/src/experiments.rs", &src).is_empty());
}

#[test]
fn tb007_shard_fixture_fires_outside_the_coordinator_only() {
    let src = fixture("tb007_shard_fires.rs");
    let diags = check_source("crates/shard/src/recover.rs", &src);
    assert_eq!(
        codes(&diags),
        [rules::TB007, rules::TB007],
        "manager begin and transaction DML: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.waived.is_none()));
    assert!(
        diags[0].message.contains("ClusterTxn"),
        "{}",
        diags[0].message
    );
    // The coordinator is the sanctioned caller of the per-shard layers,
    // and the same tokens are legal outside the shard crate (the serving
    // layer is the sanctioned interface everywhere else).
    assert!(check_source("crates/shard/src/cluster.rs", &src).is_empty());
    assert!(check_source("crates/bench/src/experiments.rs", &src).is_empty());
}

#[test]
fn tb007_shard_clean_fixture_passes() {
    let src = fixture("tb007_shard_clean.rs");
    assert!(check_source("crates/shard/src/recover.rs", &src).is_empty());
    assert!(check_source("crates/shard/src/oracle.rs", &src).is_empty());
}

#[test]
fn tb007_waiver_fixture_suppresses_with_reason() {
    let src = fixture("tb007_waived.rs");
    let diags = check_source("crates/bench/src/experiments.rs", &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let reason = diags[0].waived.as_deref().expect("finding is waived");
    assert!(reason.contains("pre-serving"), "{reason}");
}

#[test]
fn tb005_clean_fixture_pair_has_parity() {
    let files = vec![
        (
            "a.rs".to_string(),
            tblint::lexer::lex(&fixture("tb005_clean_a.rs")).toks,
        ),
        (
            "b.rs".to_string(),
            tblint::lexer::lex(&fixture("tb005_clean_b.rs")).toks,
        ),
    ];
    assert!(check_parity(&files).is_empty(), "order must not matter");
}

#[test]
fn tb005_firing_fixture_reports_divergence() {
    let files = vec![
        (
            "a.rs".to_string(),
            tblint::lexer::lex(&fixture("tb005_clean_a.rs")).toks,
        ),
        (
            "b.rs".to_string(),
            tblint::lexer::lex(&fixture("tb005_fires_b.rs")).toks,
        ),
    ];
    let findings = check_parity(&files);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].0, 1, "the diverging file is flagged");
    let msg = &findings[0].1.message;
    assert!(
        msg.contains("checkpoint") && msg.contains("vacuum"),
        "{msg}"
    );
}

#[test]
fn tb008_fixture_fires_on_blocking_under_a_live_guard() {
    let diags =
        tblint::check_concurrency_sources(&[("crates/fix/src/a.rs", &fixture("tb008_fires.rs"))]);
    assert_eq!(codes(&diags), [rules::TB008, rules::TB008], "{diags:?}");
    assert!(diags.iter().all(|d| d.waived.is_none()));
    assert!(
        diags[0].message.contains("sync_all") && diags[0].message.contains("registry"),
        "{}",
        diags[0].message
    );
    assert!(diags[1].message.contains("sleep"), "{}", diags[1].message);
}

#[test]
fn tb008_clean_fixture_passes_guard_dead_before_blocking() {
    // Explicit `drop(guard)` and scope exit both end the guard region.
    let diags =
        tblint::check_concurrency_sources(&[("crates/fix/src/a.rs", &fixture("tb008_clean.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tb008_waiver_fixture_suppresses_with_reason() {
    let diags =
        tblint::check_concurrency_sources(&[("crates/fix/src/a.rs", &fixture("tb008_waived.rs"))]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let reason = diags[0].waived.as_deref().expect("finding is waived");
    assert!(reason.contains("serializes the sink"), "{reason}");
}

#[test]
fn tb008_one_hop_fixture_charges_the_caller_holding_the_guard() {
    let caller = fixture("tb008_onehop_caller.rs");
    let callee = fixture("tb008_onehop_callee.rs");
    let diags = tblint::check_concurrency_sources(&[
        ("crates/fix/src/caller.rs", &caller),
        ("crates/fix/src/callee.rs", &callee),
    ]);
    assert_eq!(codes(&diags), [rules::TB008], "{diags:?}");
    assert_eq!(diags[0].file, "crates/fix/src/caller.rs");
    let msg = &diags[0].message;
    assert!(
        msg.contains("flush_log") && msg.contains("state") && msg.contains("callee.rs"),
        "the finding names the callee, the lock and the blocking site: {msg}"
    );
    // The callee itself holds nothing and is not a finding.
    let alone = tblint::check_concurrency_sources(&[("crates/fix/src/callee.rs", &callee)]);
    assert!(alone.is_empty(), "{alone:?}");
}

#[test]
fn tb009_fixture_reports_the_inversion_with_both_witness_chains() {
    let diags =
        tblint::check_concurrency_sources(&[("crates/fix/src/a.rs", &fixture("tb009_fires.rs"))]);
    assert_eq!(
        codes(&diags),
        [rules::TB009],
        "one cycle, one finding: {diags:?}"
    );
    let msg = &diags[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    for needle in ["transfer", "report", "accounts", "audit"] {
        assert!(
            msg.contains(needle),
            "missing witness detail {needle:?}: {msg}"
        );
    }
}

#[test]
fn tb009_clean_fixture_passes_under_a_consistent_hierarchy() {
    let diags =
        tblint::check_concurrency_sources(&[("crates/fix/src/a.rs", &fixture("tb009_clean.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tb010_fixture_fires_on_bare_unwrap_of_lock_results() {
    let src = fixture("tb010_fires.rs");
    let diags = check_source("crates/txn/src/lib.rs", &src);
    assert_eq!(codes(&diags), [rules::TB010, rules::TB010], "{diags:?}");
    assert!(diags.iter().all(|d| d.waived.is_none()));
    // The rule only polices production crates, not the integration tests.
    assert!(check_source("tests/tests/mvcc_isolation.rs", &src).is_empty());
}

#[test]
fn tb010_clean_fixture_accepts_both_sanctioned_policies() {
    let src = fixture("tb010_clean.rs");
    assert!(check_source("crates/txn/src/lib.rs", &src).is_empty());
}

#[test]
fn tb010_waiver_fixture_suppresses_with_reason() {
    let diags = check_source("crates/txn/src/lib.rs", &fixture("tb010_waived.rs"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let reason = diags[0].waived.as_deref().expect("finding is waived");
    assert!(reason.contains("single-threaded"), "{reason}");
}

#[test]
fn workspace_run_on_this_repo_is_clean() {
    // The real gate, exercised from the test suite too: zero unwaived
    // findings across the workspace this crate lives in.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = tblint::run_workspace(root).expect("walk workspace");
    let unwaived: Vec<String> = report.unwaived().map(ToString::to_string).collect();
    assert!(unwaived.is_empty(), "{}", unwaived.join("\n"));
}
