//! The TB rule catalogue, evaluated over the lexer's token stream.
//!
//! | Code  | Invariant |
//! |-------|-----------|
//! | TB000 | waiver hygiene: waivers parse, carry reasons, and are used |
//! | TB001 | no wall-clock reads outside the bench harness / obs clock |
//! | TB002 | no closed-interval comparisons on period endpoints |
//! | TB003 | no hash-ordered iteration feeding report/archive/trace output |
//! | TB004 | no `unwrap`/`expect`/slice-indexing in engine scan hot paths |
//! | TB005 | engine parity: all four engines define the same method set |
//! | TB006 | WAL construction sites must declare an explicit durability mode |
//! | TB007 | no direct engine DML outside the sanctioned write paths |
//! | TB008 | no blocking operation (fsync, sleep, group-commit wait, file open) while a lock guard is live, directly or one call deep |
//! | TB009 | the workspace lock-order graph must be acyclic |
//! | TB010 | lock results use the sanctioned poison policy, never bare `.unwrap()` |
//!
//! TB001–TB007 are token-window rules; TB008 and TB009 run on the
//! flow-aware guard-region model ([`crate::model`]) across the whole
//! workspace. Every rule is waivable with
//! `// tblint: allow(TBnnn) <reason>` (see [`crate::waiver`]); the tree is
//! kept at **zero unwaived findings**.

use crate::lexer::{Tok, TokKind};
use crate::model;

/// Waiver-hygiene pseudo-rule (malformed or unused waivers).
pub const TB000: &str = "TB000";
/// Determinism: no `SystemTime::now` / `Instant::now` outside the bench
/// crate and the obs trace clock.
pub const TB001: &str = "TB001";
/// Half-open intervals: no `<=` / `>=` comparisons against `*_end`
/// period-endpoint columns outside `core::time` / `core::schema`.
pub const TB002: &str = "TB002";
/// Deterministic output: no `HashMap` / `HashSet` in files that feed
/// report, archive or trace output.
pub const TB003: &str = "TB003";
/// Panic-free hot paths: no `unwrap` / `expect` / slice-indexing in the
/// engine scan files.
pub const TB004: &str = "TB004";
/// Engine parity: all four `system_*.rs` implement the same
/// `BitemporalEngine` method set.
pub const TB005: &str = "TB005";
/// Explicit durability: every `TxnWal::create` / `TxnWal::open` call must
/// pass a visible [`DurabilityMode`] — a mode-typed expression or a binding
/// named `mode` / `durability` — and never `DurabilityMode::default()`.
/// Whether a commit survives a crash must be a reviewed decision at the
/// append site, not an inherited default.
pub const TB006: &str = "TB006";
/// Sanctioned write paths: outside the history loader, WAL recovery, the
/// MVCC serving layer, the engines themselves and the test trees, no code
/// may call engine DML (`insert` / `update` / `delete` /
/// `overwrite_app_period` / `bulk_load`) directly on an engine value.
/// Interactive writes go through `bitempo_txn::Transaction`, which
/// snapshot-validates and WAL-logs them; a raw engine call bypasses
/// first-committer-wins *and* durability, silently.
pub const TB007: &str = "TB007";
/// No blocking while holding a lock: an fsync-class sync, sleep, park,
/// channel receive, group-commit wait or file open must not run — directly
/// or through one level of intra-workspace calls — while a `Mutex`/`RwLock`
/// guard is live. A guard region pins every other user of that lock to the
/// blocked operation's latency: the p99 cliff the serving-layer experiment
/// measures. `Condvar::wait` on the guard it releases is sanctioned.
pub const TB008: &str = "TB008";
/// The lock-order graph must be acyclic: if one code path acquires `b`
/// while holding `a` and another acquires `a` while holding `b`, the two
/// can deadlock under load. Findings report every edge of the cycle with a
/// witness chain (function, hold site, acquisition site).
pub const TB009: &str = "TB009";
/// Lock results follow the sanctioned poison policy: either
/// `.expect("<lock name> poisoned")` — a deliberate, named fail-stop — or
/// explicit poison recovery (`.unwrap_or_else(|p| p.into_inner())`). A
/// bare `.unwrap()` on a lock result is an unreviewed crash site.
pub const TB010: &str = "TB010";

/// One rule finding, before waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Stable rule code.
    pub code: &'static str,
    /// What is wrong.
    pub message: String,
}

/// Files allowed to read the wall clock (TB001): the bench harness
/// measures with it, and the obs recorder's trace clock *is* the
/// sanctioned wrapper everything else must go through.
fn tb001_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path == "crates/core/src/obs.rs"
}

/// Files that own period-endpoint comparison logic (TB002): the half-open
/// constructors and matchers live here; everyone else must call them.
fn tb002_exempt(path: &str) -> bool {
    path == "crates/core/src/time.rs" || path == "crates/core/src/schema.rs"
}

/// Files whose output must be deterministic (TB003): benchmark reports,
/// the history archive codec, generator statistics, and the trace
/// recorder. Hash-ordered iteration anywhere here is an ordering bug
/// waiting to happen, so the rule bans the types outright.
fn tb003_scope(path: &str) -> bool {
    path.starts_with("crates/bench/src/")
        || path == "crates/core/src/obs.rs"
        || path == "crates/histgen/src/archive.rs"
        || path == "crates/histgen/src/stats.rs"
        || path == "crates/query/src/optimizer.rs"
}

/// Engine scan hot-path files (TB004).
fn tb004_scope(path: &str) -> bool {
    match path.strip_prefix("crates/engine/src/") {
        Some(rest) => {
            (rest.starts_with("system_") && rest.ends_with(".rs"))
                || rest == "rowscan.rs"
                || rest == "morsel.rs"
        }
        None => false,
    }
}

/// Files allowed to drive engine DML directly (TB007): the archive
/// replayer and loader, WAL recovery (which replays through the loader's
/// codec), the MVCC layer (the commit path *is* the sanction), the engine
/// crate itself, and the integration-test tree. Everyone else writes
/// through `bitempo_txn` or waives with a reason.
fn tb007_exempt(path: &str) -> bool {
    path.starts_with("crates/histgen/")
        || path.starts_with("crates/wal/")
        || path.starts_with("crates/txn/")
        || path.starts_with("crates/engine/")
        || path.starts_with("tests/")
}

/// The shard crate's stricter TB007 scope: inside `crates/shard/`, only
/// the cluster coordinator (`cluster.rs`) may open per-shard `TxnManager`
/// transactions or drive `Transaction` DML. Anywhere else in the crate a
/// direct shard write bypasses the router (key → owning shard), the
/// cluster-level first-committer-wins log and the commit-timestamp
/// oracle — the write lands but no cross-shard snapshot is safe again.
fn tb007_shard_scope(path: &str) -> bool {
    path.starts_with("crates/shard/") && path != "crates/shard/src/cluster.rs"
}

/// The four engine files compared by TB005.
pub fn tb005_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/engine/src/system_a.rs"
            | "crates/engine/src/system_b.rs"
            | "crates/engine/src/system_c.rs"
            | "crates/engine/src/system_d.rs"
    )
}

/// Production lock sites live in `crates/` (TB010); the integration-test
/// and example trees may use `.unwrap()` on locks freely.
fn tb010_scope(path: &str) -> bool {
    path.starts_with("crates/")
}

/// Runs the single-file rules (TB001–TB004, TB006, TB007, TB010) over one
/// token stream.
pub fn check_file(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = strip_test_modules(toks);
    if !tb001_exempt(path) {
        tb001(toks, &mut findings);
    }
    if !tb002_exempt(path) {
        tb002(toks, &mut findings);
    }
    if tb003_scope(path) {
        tb003(toks, &mut findings);
    }
    if tb004_scope(path) {
        tb004(&stripped, &mut findings);
    }
    tb006(toks, &mut findings);
    if !tb007_exempt(path) {
        tb007(&stripped, &mut findings);
    }
    if tb007_shard_scope(path) {
        tb007_shard(&stripped, &mut findings);
    }
    if tb010_scope(path) {
        tb010(&stripped, &mut findings);
    }
    findings
}

/// TB001: `SystemTime :: now` or `Instant :: now` token sequences.
fn tb001(toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(3) {
        let clock =
            w[0].kind == TokKind::Ident && (w[0].text == "SystemTime" || w[0].text == "Instant");
        if clock && w[1].text == "::" && w[2].kind == TokKind::Ident && w[2].text == "now" {
            out.push(Finding {
                line: w[0].line,
                code: TB001,
                message: format!(
                    "`{}::now` outside the bench harness breaks determinism — \
                     use the logical clock (core::time) or obs::trace_clock",
                    w[0].text
                ),
            });
        }
    }
}

/// TB002: `*_end` identifiers adjacent to `<=` / `>=`. Half-open periods
/// compare endpoints with strict `<` / `>`; a closed comparison on an
/// `_end` column is the classic off-by-one the paper's §4 schema exists
/// to prevent.
fn tb002(toks: &[Tok], out: &mut Vec<Finding>) {
    let is_endpoint =
        |t: &Tok| t.kind == TokKind::Ident && t.text.ends_with("_end") && t.text.len() > 4;
    let is_closed_cmp = |t: &Tok| t.kind == TokKind::Punct && (t.text == "<=" || t.text == ">=");
    for w in toks.windows(2) {
        let (endpoint, cmp) = if is_endpoint(&w[0]) && is_closed_cmp(&w[1]) {
            (&w[0], &w[1])
        } else if is_closed_cmp(&w[0]) && is_endpoint(&w[1]) {
            (&w[1], &w[0])
        } else {
            continue;
        };
        out.push(Finding {
            line: cmp.line.min(endpoint.line),
            code: TB002,
            message: format!(
                "closed-interval comparison `{}` against period endpoint `{}` — \
                 half-open [start, end) endpoints compare with strict </>, or go \
                 through the core::time constructors",
                cmp.text, endpoint.text
            ),
        });
    }
}

/// TB003: any `HashMap` / `HashSet` mention in an output-path file.
fn tb003(toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding {
                line: t.line,
                code: TB003,
                message: format!(
                    "`{}` in an output path — iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or sort before emitting",
                    t.text
                ),
            });
        }
    }
}

/// TB004: `.unwrap(` / `.expect(` calls and slice-indexing expressions in
/// the scan hot paths (test modules excluded).
fn tb004(toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap(` / `.expect(` — method calls only, so `unwrap_or` and
        // friends (which are total) stay legal.
        if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let after_dot = i > 0 && toks[i - 1].text == ".";
            let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
            if after_dot && called {
                out.push(Finding {
                    line: t.line,
                    code: TB004,
                    message: format!(
                        "`.{}()` in an engine scan hot path — return a proper \
                         Error or waive with a justification",
                        t.text
                    ),
                });
            }
        }
        // Indexing: `[` whose previous significant token ends an
        // expression (identifier, literal number, `)` or `]`). Attribute
        // (`#[`), macro (`vec![`), type (`: [u8; 4]`) and array-literal
        // brackets all follow non-expression tokens and do not fire.
        if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            let expr_end = matches!(prev.kind, TokKind::Ident | TokKind::Number)
                || prev.text == ")"
                || prev.text == "]";
            // Keywords that *end* in an expression position but cannot be
            // indexed (`return [..]`, `in [..]`, `if x == y [..]` etc.).
            let keyword = prev.kind == TokKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "return" | "in" | "break" | "else" | "match" | "mut" | "ref" | "as"
                );
            if expr_end && !keyword {
                out.push(Finding {
                    line: t.line,
                    code: TB004,
                    message: "slice-indexing in an engine scan hot path — use `.get()` \
                              or waive with a justification"
                        .to_string(),
                });
            }
        }
    }
}

/// TB006: `TxnWal :: create|open ( … )` whose argument tokens carry no
/// durability declaration. A declaration is either a `DurabilityMode`
/// path expression (not `DurabilityMode::default`) or an identifier named
/// `mode` / `durability` — the conventional names for a mode threaded in
/// from configuration.
fn tb006(toks: &[Tok], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 3 < toks.len() {
        let call = toks[i].kind == TokKind::Ident
            && toks[i].text == "TxnWal"
            && toks[i + 1].text == "::"
            && toks[i + 2].kind == TokKind::Ident
            && (toks[i + 2].text == "create" || toks[i + 2].text == "open")
            && toks[i + 3].text == "(";
        if !call {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Argument span: from after the opening paren to its match.
        let open = i + 3;
        let mut depth = 0usize;
        let mut j = open;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let args = &toks[open + 1..j.min(toks.len())];
        let defaulted = args
            .windows(3)
            .any(|w| w[0].text == "DurabilityMode" && w[1].text == "::" && w[2].text == "default");
        let declared = args.iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text == "DurabilityMode" || t.text == "mode" || t.text == "durability")
        });
        if defaulted {
            out.push(Finding {
                line,
                code: TB006,
                message: "`DurabilityMode::default()` at a WAL construction site — \
                          crash-survival semantics must be an explicit, reviewed choice; \
                          name the mode (Strict / Batched(ms) / Async)"
                    .to_string(),
            });
        } else if !declared {
            out.push(Finding {
                line,
                code: TB006,
                message: "WAL construction site does not declare its durability mode — \
                          pass a `DurabilityMode` expression or a binding named `mode` / \
                          `durability` so the commit contract is visible at the append site"
                    .to_string(),
            });
        }
        i = j + 1;
    }
}

/// TB007: `<engine receiver> . <dml method> (` token sequences in
/// production code (test modules excluded). The receiver heuristic is the
/// workspace's naming convention for engine values — `engine`, `eng`, or
/// any `*_engine` binding; DML on anything else (a map's `insert`, a
/// transaction's `update`) does not fire.
fn tb007(toks: &[Tok], out: &mut Vec<Finding>) {
    const DML: [&str; 5] = [
        "insert",
        "update",
        "delete",
        "overwrite_app_period",
        "bulk_load",
    ];
    for w in toks.windows(4) {
        let recv = &w[0];
        let engine_recv = recv.kind == TokKind::Ident
            && (recv.text == "engine" || recv.text == "eng" || recv.text.ends_with("_engine"));
        if engine_recv
            && w[1].text == "."
            && w[2].kind == TokKind::Ident
            && DML.contains(&w[2].text.as_str())
            && w[3].text == "("
        {
            out.push(Finding {
                line: w[2].line,
                code: TB007,
                message: format!(
                    "direct `{}.{}` outside the sanctioned write paths — interactive \
                     writes go through `bitempo_txn::Transaction` (snapshot-validated, \
                     WAL-logged); loaders use histgen's replay. Waive only for \
                     pre-serving setup with a reason",
                    recv.text, w[2].text
                ),
            });
        }
    }
}

/// TB007 (shard scope): `<manager receiver> . begin (` and
/// `<transaction receiver> . <dml method> (` token sequences inside
/// `crates/shard/` outside the coordinator. The receiver heuristics are
/// the workspace's naming conventions — `mgr` / `manager` / `*_mgr` /
/// `*_manager` for serving-layer managers, `txn` / `*_txn` for their
/// transactions.
fn tb007_shard(toks: &[Tok], out: &mut Vec<Finding>) {
    const DML: [&str; 4] = ["insert", "update", "delete", "overwrite_app_period"];
    for w in toks.windows(4) {
        let recv = &w[0];
        if recv.kind != TokKind::Ident || w[1].text != "." || w[3].text != "(" {
            continue;
        }
        let method = &w[2];
        if method.kind != TokKind::Ident {
            continue;
        }
        let mgr_recv = recv.text == "mgr"
            || recv.text == "manager"
            || recv.text.ends_with("_mgr")
            || recv.text.ends_with("_manager");
        let txn_recv = recv.text == "txn" || recv.text.ends_with("_txn");
        let fires = (mgr_recv && method.text == "begin")
            || (txn_recv && DML.contains(&method.text.as_str()));
        if fires {
            out.push(Finding {
                line: method.line,
                code: TB007,
                message: format!(
                    "direct `{}.{}` on a per-shard serving layer from cluster code — \
                     shard writes route through the cluster coordinator \
                     (`ClusterTxn`), which owns the key→shard map, the cluster \
                     first-committer-wins log and the commit-timestamp oracle. \
                     Waive only for shard-local setup with a reason",
                    recv.text, method.text
                ),
            });
        }
    }
}

/// TB010: `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` —
/// a bare unwrap on a lock result, instead of the sanctioned poison policy
/// (a named `.expect("… poisoned")` or explicit recovery via
/// `.unwrap_or_else(|p| p.into_inner())`).
fn tb010(toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(7) {
        let acquire = w[0].text == "."
            && w[1].kind == TokKind::Ident
            && matches!(w[1].text.as_str(), "lock" | "read" | "write")
            && w[2].text == "("
            && w[3].text == ")";
        if acquire
            && w[4].text == "."
            && w[5].kind == TokKind::Ident
            && w[5].text == "unwrap"
            && w[6].text == "("
        {
            out.push(Finding {
                line: w[5].line,
                code: TB010,
                message: format!(
                    "bare `.unwrap()` on a `.{}()` lock result — name the fail-stop with \
                     `.expect(\"<lock name> poisoned\")` or recover the poison explicitly \
                     with `.unwrap_or_else(|p| p.into_inner())`",
                    w[1].text
                ),
            });
        }
    }
}

/// Runs the flow-aware concurrency rules (TB008, TB009) across the
/// workspace files. Test modules are stripped first — tests may hold
/// guards across asserts freely. Returns `(file index, finding)` pairs
/// like [`check_parity`].
pub fn check_concurrency(files: &[(String, Vec<Tok>)]) -> Vec<(usize, Finding)> {
    let models: Vec<model::FileModel> = files
        .iter()
        .map(|(path, toks)| model::build(path, &strip_test_modules(toks)))
        .collect();
    let sums = model::summaries(&models);
    let mut out = Vec::new();

    // TB008: blocking while a guard is live, directly or one call deep.
    for (fi, fm) in models.iter().enumerate() {
        for f in &fm.fns {
            for ev in &f.events {
                match ev {
                    model::Event::Blocking { what, line, held } => {
                        out.push((
                            fi,
                            Finding {
                                line: *line,
                                code: TB008,
                                message: format!(
                                    "blocking `{what}` in `{}` while holding {} — every \
                                     other user of the lock waits out this latency; move \
                                     the blocking work outside the guard region",
                                    f.name,
                                    held_list(held)
                                ),
                            },
                        ));
                    }
                    model::Event::Call { callee, line, held } => {
                        let Some(s) = sums.get(callee) else { continue };
                        let Some((what, cfile, cline)) = s.blocking.first() else {
                            continue;
                        };
                        let more = if s.blocking.len() > 1 {
                            format!(" (+{} more)", s.blocking.len() - 1)
                        } else {
                            String::new()
                        };
                        out.push((
                            fi,
                            Finding {
                                line: *line,
                                code: TB008,
                                message: format!(
                                    "`{}` calls `{callee}`, which blocks on `{what}` \
                                     ({cfile}:{cline}){more}, while holding {} — move the \
                                     call outside the guard region or split the callee",
                                    f.name,
                                    held_list(held)
                                ),
                            },
                        ));
                    }
                    model::Event::Acquire { .. } => {}
                }
            }
        }
    }

    // TB009: lock-order cycles, each reported once with every witness.
    let edges = model::lock_edges(&models, &sums);
    for cycle in model::find_cycles(&edges) {
        let ring: Vec<String> = cycle
            .nodes
            .iter()
            .map(|(file, key)| format!("{file}::{key}"))
            .collect();
        let witnesses: Vec<&str> = cycle.witnesses.iter().map(|w| w.desc.as_str()).collect();
        let Some(anchor) = cycle.witnesses.first() else {
            continue;
        };
        out.push((
            anchor.file_idx,
            Finding {
                line: anchor.line,
                code: TB009,
                message: format!(
                    "lock-order cycle {} -> {} — two paths acquire these locks in opposite \
                     orders and can deadlock under load; witnesses: {}",
                    ring.join(" -> "),
                    ring[0],
                    witnesses.join("; ")
                ),
            },
        ));
    }
    out
}

/// Formats a held-guard set for a finding message.
fn held_list(held: &[model::Held]) -> String {
    held.iter()
        .map(|h| format!("`{}` (held since line {})", h.key, h.line))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Removes `#[cfg(test)] mod … { … }` blocks from a token stream, so TB004
/// does not fire on test assertions.
pub fn strip_test_modules(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            // Skip the attribute itself (7 tokens: # [ cfg ( test ) ]),
            // any further attributes, the `mod name {`, and the block.
            i += 7;
            while toks.get(i).is_some_and(|t| t.text == "#") {
                i = skip_attribute(toks, i);
            }
            if toks.get(i).is_some_and(|t| t.text == "mod") {
                // mod <name> {
                i += 2;
                if toks.get(i).is_some_and(|t| t.text == "{") {
                    i = skip_braced_block(toks, i);
                    continue;
                }
            }
            // Not a `mod` (e.g. a cfg(test) fn) — fall through and skip
            // just the following item conservatively by continuing the
            // normal copy; stripping only applies to test modules.
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// True if tokens at `i` spell `# [ cfg ( test ) ]`.
fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    toks.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| toks[i + k].text == *t)
}

/// Skips an attribute `#[ ... ]` starting at `i` (the `#`), returning the
/// index just past its closing `]`.
fn skip_attribute(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a `{ ... }` block starting at `i` (the `{`), returning the index
/// just past its matching `}`.
fn skip_braced_block(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// The method names a file defines inside
/// `impl BitemporalEngine for <X> { ... }`, with the line of the `impl`.
pub fn engine_method_set(toks: &[Tok]) -> Option<(u32, Vec<String>)> {
    let mut i = 0;
    while i + 3 < toks.len() {
        if toks[i].text == "impl"
            && toks[i + 1].text == "BitemporalEngine"
            && toks[i + 2].text == "for"
            && toks[i + 3].kind == TokKind::Ident
        {
            let impl_line = toks[i].line;
            // Find the opening brace (no generics in our engines, but be
            // tolerant of a `where` clause).
            let mut j = i + 4;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            let mut depth = 0usize;
            let mut methods = Vec::new();
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            methods.sort();
                            return Some((impl_line, methods));
                        }
                    }
                    "fn" if depth == 1 => {
                        if let Some(name) = toks.get(j + 1) {
                            methods.push(name.text.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            methods.sort();
            return Some((impl_line, methods));
        }
        i += 1;
    }
    None
}

/// TB005: compares the `BitemporalEngine` method sets across the engine
/// files. Returns `(file index, finding)` pairs.
pub fn check_parity(files: &[(String, Vec<Tok>)]) -> Vec<(usize, Finding)> {
    let mut sets: Vec<(usize, u32, Vec<String>)> = Vec::new();
    let mut out = Vec::new();
    for (idx, (path, toks)) in files.iter().enumerate() {
        match engine_method_set(toks) {
            Some((line, methods)) => sets.push((idx, line, methods)),
            None => out.push((
                idx,
                Finding {
                    line: 1,
                    code: TB005,
                    message: format!("no `impl BitemporalEngine for …` block found in {path}"),
                },
            )),
        }
    }
    let Some((_, _, reference)) = sets.first() else {
        return out;
    };
    let reference = reference.clone();
    for (idx, line, methods) in &sets[1..] {
        if *methods == reference {
            continue;
        }
        let missing: Vec<&String> = reference.iter().filter(|m| !methods.contains(m)).collect();
        let extra: Vec<&String> = methods.iter().filter(|m| !reference.contains(m)).collect();
        out.push((
            *idx,
            Finding {
                line: *line,
                code: TB005,
                message: format!(
                    "engine method set diverges from {}: missing {missing:?}, extra {extra:?} — \
                     all four engines must define the same BitemporalEngine API surface",
                    files[sets[0].0].0
                ),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, &lex(src).toks)
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn tb001_fires_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(codes("crates/engine/src/lib.rs", src), vec![TB001]);
        assert!(codes("crates/bench/src/runner.rs", src).is_empty());
        assert!(codes("crates/core/src/obs.rs", src).is_empty());
    }

    #[test]
    fn tb002_catches_closed_endpoint_comparisons() {
        assert_eq!(
            codes("crates/query/src/x.rs", "if x <= app_end { }"),
            vec![TB002]
        );
        assert_eq!(
            codes("crates/query/src/x.rs", "if sys_end >= t { }"),
            vec![TB002]
        );
        // Strict comparisons and non-endpoint identifiers are fine.
        assert!(codes("crates/query/src/x.rs", "if x < app_end { }").is_empty());
        assert!(codes("crates/query/src/x.rs", "if end <= start { }").is_empty());
        // The core time module owns these comparisons.
        assert!(codes("crates/core/src/time.rs", "if x <= app_end { }").is_empty());
    }

    #[test]
    fn tb003_bans_hash_collections_in_output_paths() {
        let src = "use std::collections::HashMap; fn f() { let m: HashMap<u8, u8>; }";
        let found = codes("crates/bench/src/report.rs", src);
        assert!(found.iter().all(|c| *c == TB003) && found.len() == 2);
        assert!(codes("crates/engine/src/catalog.rs", src).is_empty());
    }

    #[test]
    fn tb004_catches_panicking_patterns() {
        let path = "crates/engine/src/rowscan.rs";
        assert_eq!(codes(path, "let x = opt.unwrap();"), vec![TB004]);
        assert_eq!(codes(path, "let x = opt.expect(\"msg\");"), vec![TB004]);
        assert_eq!(codes(path, "let x = slots[i];"), vec![TB004]);
        assert_eq!(codes(path, "let x = self.0[i];"), vec![TB004]);
        // Total alternatives and non-indexing brackets are fine.
        assert!(codes(path, "let x = opt.unwrap_or(0);").is_empty());
        assert!(codes(path, "let v = vec![1, 2];").is_empty());
        assert!(codes(path, "#[derive(Debug)] struct S;").is_empty());
        assert!(codes(path, "let a: [u8; 4] = [0; 4];").is_empty());
        // Out-of-scope files are not hot paths.
        assert!(codes("crates/engine/src/catalog.rs", "x.unwrap();").is_empty());
    }

    #[test]
    fn tb004_ignores_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(codes("crates/engine/src/morsel.rs", src).is_empty());
    }

    #[test]
    fn tb006_requires_an_explicit_durability_mode() {
        let path = "crates/wal/src/anywhere.rs";
        // No mode-shaped argument at all.
        assert_eq!(
            codes(path, "let log = TxnWal::create(Box::new(sink))?;"),
            vec![TB006]
        );
        // Defaulting the mode is as bad as omitting it.
        assert_eq!(
            codes(
                path,
                "let log = TxnWal::create(Box::new(sink), DurabilityMode::default())?;"
            ),
            vec![TB006]
        );
        // A named mode expression, a `mode` binding, or a config field
        // named `durability` all declare the choice.
        assert!(codes(
            path,
            "let log = TxnWal::create(Box::new(sink), DurabilityMode::Strict)?;"
        )
        .is_empty());
        assert!(codes(
            path,
            "let log = TxnWal::create(Box::new(sink), opts.mode)?;"
        )
        .is_empty());
        assert!(codes(
            path,
            "let log = TxnWal::create(Box::new(sink), cfg.durability)?;"
        )
        .is_empty());
        // Nested parentheses inside the arguments stay inside the span.
        assert!(codes(
            path,
            "let log = TxnWal::create(Box::new(FaultyWriter::new(buf, plan)), mode)?;"
        )
        .is_empty());
    }

    #[test]
    fn tb007_catches_direct_engine_dml_outside_sanctioned_paths() {
        let path = "crates/bench/src/experiments.rs";
        assert_eq!(codes(path, "engine.insert(id, row, None)?;"), vec![TB007]);
        assert_eq!(
            codes(path, "base_engine.delete(id, &k, None)?;"),
            vec![TB007]
        );
        assert_eq!(
            codes(path, "eng.overwrite_app_period(id, &k, row, p)?;"),
            vec![TB007]
        );
        // Non-engine receivers, reads, and commits are all fine.
        assert!(codes(path, "map.insert(k, v);").is_empty());
        assert!(codes(path, "txn.update(id, &k, &sets, None)?;").is_empty());
        assert!(codes(path, "engine.scan(id, &sys, &app, &[])?;").is_empty());
        assert!(codes(path, "engine.commit();").is_empty());
        // The sanctioned write paths are exempt wholesale.
        for exempt in [
            "crates/histgen/src/loader.rs",
            "crates/wal/src/recover.rs",
            "crates/txn/src/lib.rs",
            "crates/engine/src/testutil.rs",
            "tests/tests/mvcc_isolation.rs",
        ] {
            assert!(codes(exempt, "engine.insert(id, row, None)?;").is_empty());
        }
        // Test modules inside in-scope files are stripped first.
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { engine.insert(a, b, None); }\n}\n";
        assert!(codes(path, src).is_empty());
    }

    #[test]
    fn tb005_detects_method_set_divergence() {
        let a = "impl BitemporalEngine for A { fn scan(&self) {} fn commit(&mut self) {} }";
        let b = "impl BitemporalEngine for B { fn commit(&mut self) {} fn scan(&self) {} }";
        let c = "impl BitemporalEngine for C { fn scan(&self) {} }";
        let files = vec![
            ("a.rs".to_string(), lex(a).toks),
            ("b.rs".to_string(), lex(b).toks),
        ];
        assert!(check_parity(&files).is_empty(), "order must not matter");
        let files = vec![
            ("a.rs".to_string(), lex(a).toks),
            ("c.rs".to_string(), lex(c).toks),
        ];
        let findings = check_parity(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, 1);
        assert!(findings[0].1.message.contains("commit"));
    }
}
