//! # tblint
//!
//! Workspace-wide temporal-invariant static analysis for the TPC-BiH
//! benchmark repo: a dependency-free lexer + token-stream rule engine
//! enforcing the invariants the paper's findings hinge on (half-open
//! periods, deterministic history, panic-free scan hot paths, engine
//! parity). See [`rules`] for the catalogue and DESIGN.md §"Static
//! analysis" for the waiver policy.
//!
//! Run it as `cargo run -p tblint --release`; it exits non-zero on any
//! unwaived finding, which is how CI gates on it.

pub mod lexer;
pub mod model;
pub mod rules;
pub mod waiver;

use rules::Finding;
use std::path::{Path, PathBuf};

/// A fully resolved diagnostic: finding + location + waiver status.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule code (`TB001` …).
    pub code: &'static str,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `Some(reason)` if a waiver suppressed this finding.
    pub waived: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = match &self.waived {
            Some(reason) => format!(" [waived: {reason}]"),
            None => String::new(),
        };
        write!(
            f,
            "{}:{}: {} {}{}\n    | {}",
            self.file, self.line, self.code, self.message, status, self.snippet
        )
    }
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, waived or not, sorted by (file, line, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files analysed.
    pub files: usize,
}

impl Report {
    /// Diagnostics not suppressed by a waiver — the CI-failing set.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived.is_none())
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.waived.is_some())
            .count()
    }
}

/// Lints a single source text under its workspace-relative `path` label.
/// The label decides rule scoping (TB001's bench exemption, TB004's
/// hot-path list, …), so fixture tests can exercise any scope.
pub fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let (mut waivers, malformed) = waiver::parse(&lexed.comments);
    let mut findings = rules::check_file(path, &lexed.toks);
    for m in malformed {
        findings.push(Finding {
            line: m.line,
            code: rules::TB000,
            message: m.problem,
        });
    }
    let mut diags = resolve(path, src, findings, &mut waivers);
    for w in waivers.iter().filter(|w| !w.used) {
        diags.push(Diagnostic {
            file: path.to_string(),
            line: w.line,
            code: rules::TB000,
            message: format!("unused waiver for {} — remove it", w.code),
            snippet: snippet_at(src, w.line),
            waived: None,
        });
    }
    diags.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    diags
}

/// Applies waivers to findings and attaches snippets.
fn resolve(
    path: &str,
    src: &str,
    findings: Vec<Finding>,
    waivers: &mut [waiver::Waiver],
) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .map(|f| {
            let waived = if f.code == rules::TB000 {
                None // waiver hygiene problems cannot be waived away
            } else {
                waiver::claim(waivers, f.code, f.line)
            };
            Diagnostic {
                file: path.to_string(),
                line: f.line,
                code: f.code,
                message: f.message,
                snippet: snippet_at(src, f.line),
                waived,
            }
        })
        .collect()
}

/// The trimmed source line at 1-based `line`, capped for display.
fn snippet_at(src: &str, line: u32) -> String {
    let text = src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim();
    if text.len() > 120 {
        format!("{}…", &text[..119])
    } else {
        text.to_string()
    }
}

/// Runs the flow-aware concurrency rules (TB008, TB009) over a set of
/// labelled sources *as one workspace*, resolving waivers per file. This
/// is the fixture-test entry point for the cross-file rules, the same way
/// [`check_source`] is for the per-file ones. Unused waivers are not
/// reported here (the sources may carry waivers for per-file rules this
/// pass does not run); [`run_workspace`] does the full lifecycle.
pub fn check_concurrency_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let lexed: Vec<lexer::LexOut> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let inputs: Vec<(String, Vec<lexer::Tok>)> = files
        .iter()
        .zip(&lexed)
        .map(|((path, _), l)| (path.to_string(), l.toks.clone()))
        .collect();
    let mut waivers: Vec<Vec<waiver::Waiver>> =
        lexed.iter().map(|l| waiver::parse(&l.comments).0).collect();
    let mut diags = Vec::new();
    for (idx, finding) in rules::check_concurrency(&inputs) {
        let (path, src) = files[idx];
        let waived = waiver::claim(&mut waivers[idx], finding.code, finding.line);
        diags.push(Diagnostic {
            file: path.to_string(),
            line: finding.line,
            code: finding.code,
            message: finding.message,
            snippet: snippet_at(src, finding.line),
            waived,
        });
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    diags
}

/// Per-file analysis state for [`run_workspace`]: one waiver set per file
/// is threaded through *every* pass (per-file rules, TB005 parity, the
/// concurrency pass) so a waiver for a workspace-level finding is claimed
/// by it and only genuinely unclaimed waivers are reported unused.
struct FileCtx {
    rel: String,
    src: String,
    toks: Vec<lexer::Tok>,
    waivers: Vec<waiver::Waiver>,
}

/// Lints the whole workspace rooted at `root`: every `.rs` file under
/// `crates/`, `tests/` and `examples/`, except fixture directories and
/// build output. Runs the per-file rules, the cross-file TB005 parity
/// rule, and the flow-aware concurrency pass (TB008, TB009) over all
/// `crates/` files, then reports unused waivers.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();

    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative_label(root, path);
        let src = std::fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let (waivers, malformed) = waiver::parse(&lexed.comments);
        let ctx = FileCtx {
            rel,
            src,
            toks: lexed.toks,
            waivers,
        };
        for m in malformed {
            report.diagnostics.push(Diagnostic {
                file: ctx.rel.clone(),
                line: m.line,
                code: rules::TB000,
                message: m.problem,
                snippet: snippet_at(&ctx.src, m.line),
                waived: None,
            });
        }
        ctxs.push(ctx);
    }

    // Pass 1: per-file rules.
    let mut findings: Vec<(usize, rules::Finding)> = Vec::new();
    for (i, ctx) in ctxs.iter().enumerate() {
        for f in rules::check_file(&ctx.rel, &ctx.toks) {
            findings.push((i, f));
        }
    }

    // Pass 2: TB005 parity across the engine files.
    let parity_idx: Vec<usize> = (0..ctxs.len())
        .filter(|&i| rules::tb005_scope(&ctxs[i].rel))
        .collect();
    let parity: Vec<(String, Vec<lexer::Tok>)> = parity_idx
        .iter()
        .map(|&i| (ctxs[i].rel.clone(), ctxs[i].toks.clone()))
        .collect();
    for (pi, f) in rules::check_parity(&parity) {
        findings.push((parity_idx[pi], f));
    }

    // Pass 3: the flow-aware concurrency rules over all crate sources.
    let conc_idx: Vec<usize> = (0..ctxs.len())
        .filter(|&i| ctxs[i].rel.starts_with("crates/"))
        .collect();
    let conc: Vec<(String, Vec<lexer::Tok>)> = conc_idx
        .iter()
        .map(|&i| (ctxs[i].rel.clone(), ctxs[i].toks.clone()))
        .collect();
    for (ci, f) in rules::check_concurrency(&conc) {
        findings.push((conc_idx[ci], f));
    }

    // Waiver resolution across everything the passes produced, then the
    // unused-waiver sweep.
    for (i, f) in findings {
        let ctx = &mut ctxs[i];
        let waived = if f.code == rules::TB000 {
            None // waiver hygiene problems cannot be waived away
        } else {
            waiver::claim(&mut ctx.waivers, f.code, f.line)
        };
        report.diagnostics.push(Diagnostic {
            file: ctx.rel.clone(),
            line: f.line,
            code: f.code,
            message: f.message,
            snippet: snippet_at(&ctx.src, f.line),
            waived,
        });
    }
    for ctx in &ctxs {
        for w in ctx.waivers.iter().filter(|w| !w.used) {
            report.diagnostics.push(Diagnostic {
                file: ctx.rel.clone(),
                line: w.line,
                code: rules::TB000,
                message: format!("unused waiver for {} — remove it", w.code),
                snippet: snippet_at(&ctx.src, w.line),
                waived: None,
            });
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Ok(report)
}

/// Recursively collects `.rs` files, skipping fixture sets, build output
/// and hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes (rule scoping is defined on
/// these labels).
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_finding_is_suppressed_and_waiver_consumed() {
        let src = "fn f() { let t = Instant::now(); } // tblint: allow(TB001) test clock\n";
        let diags = check_source("crates/engine/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].waived.is_some());
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// tblint: allow(TB001) nothing here needs this\nfn ok() {}\n";
        let diags = check_source("crates/engine/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, rules::TB000);
        assert!(diags[0].message.contains("unused"));
    }

    #[test]
    fn malformed_waiver_is_reported_and_does_not_suppress() {
        let src = "let t = Instant::now(); // tblint: allow(TB001)\n";
        let diags = check_source("crates/engine/src/lib.rs", src);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&rules::TB000));
        assert!(codes.contains(&rules::TB001));
        assert!(diags.iter().all(|d| d.waived.is_none()));
    }

    #[test]
    fn snippet_and_display_carry_location() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let diags = check_source("crates/engine/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].snippet, "let t = Instant::now();");
        let shown = diags[0].to_string();
        assert!(shown.contains("crates/engine/src/lib.rs:2: TB001"));
    }
}
