//! A small hand-written Rust lexer: just enough token structure for the
//! TB rules, with no dependency on `syn` (registry deps are offline shims).
//!
//! The lexer's one job is to make the rules *comment- and string-safe*:
//! a `SystemTime::now` inside a string literal or a doc comment must never
//! fire TB001. Comments are not emitted as tokens, but line comments are
//! surfaced separately so the waiver parser can read
//! `// tblint: allow(TBnnn) <reason>` markers without ever confusing them
//! with string literals that merely *mention* the waiver syntax.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `impl`, ...).
    Ident,
    /// Punctuation / operator, possibly multi-character (`::`, `<=`, `[`).
    Punct,
    /// Numeric literal (`0`, `1_000`, `0xFF`, `1.5e3`).
    Number,
    /// String, raw-string, byte-string or char literal (contents dropped).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token text (empty for [`TokKind::Literal`] — contents are
    /// irrelevant to every rule and may be arbitrarily large).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `//` comment, surfaced for waiver parsing.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based source line.
    pub line: u32,
    /// Text after the `//` (leading slashes of doc comments included).
    pub body: String,
}

/// Lexer output: significant tokens plus the line comments.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Significant tokens, in source order.
    pub toks: Vec<Tok>,
    /// Every `//` comment, in source order.
    pub comments: Vec<LineComment>,
}

/// Two-character operators that must lex as one token. `<=` and `>=` are
/// the ones TB002 depends on; the rest exist so they are not mistaken for
/// them (`<<=` must not produce a phantom `<=`).
const TWO_CHAR_OPS: &[&str] = &[
    "::", "<=", ">=", "==", "!=", "->", "=>", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

/// Lexes `src`. The lexer is intentionally forgiving: malformed input
/// (unterminated strings, stray bytes) never panics — it produces the best
/// token stream it can, because a lint tool must not crash on the code it
/// is criticising.
pub fn lex(src: &str) -> LexOut {
    let mut out = LexOut::default();
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut line: u32 = 1;

    // Advances `i` over `count` chars, tracking newlines.
    macro_rules! bump {
        ($count:expr) => {{
            for _ in 0..$count {
                if i < n {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Line comment (and doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(LineComment {
                line,
                body: b[start..j].iter().collect(),
            });
            bump!(j - i);
            continue;
        }
        // Block comment, nesting like Rust's.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            bump!(2);
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let tok_line = line;
            // Skip the prefix letters.
            while i < n && (b[i] == 'r' || b[i] == 'b') {
                bump!(1);
            }
            let mut hashes = 0usize;
            while i < n && b[i] == '#' {
                hashes += 1;
                bump!(1);
            }
            bump!(1); // opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' {
                    let mut k = 0;
                    while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        bump!(1 + hashes);
                        break;
                    }
                }
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let tok_line = line;
            if c == 'b' {
                bump!(1);
            }
            bump!(1); // opening quote
            while i < n {
                if b[i] == '\\' {
                    bump!(2);
                } else if b[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let tok_line = line;
            if is_lifetime(&b, i) {
                bump!(1);
                let mut text = String::from("'");
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    text.push(b[i]);
                    bump!(1);
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: tok_line,
                });
            } else {
                bump!(1); // opening quote
                while i < n {
                    if b[i] == '\\' {
                        bump!(2);
                    } else if b[i] == '\'' {
                        bump!(1);
                        break;
                    } else {
                        bump!(1);
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let tok_line = line;
            let mut text = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                text.push(b[i]);
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tok_line,
            });
            continue;
        }
        // Numbers (including tuple-field digits like the `0` in `self.0`,
        // which matters to TB004's indexing detection).
        if c.is_ascii_digit() {
            let tok_line = line;
            let mut text = String::new();
            while i < n {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    text.push(d);
                    bump!(1);
                } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                    // `1.5`, but not the range `0..10`.
                    text.push(d);
                    bump!(1);
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Number,
                text,
                line: tok_line,
            });
            continue;
        }
        // Operators: greedy two-char match, then single char.
        let tok_line = line;
        if i + 1 < n {
            let pair: String = [b[i], b[i + 1]].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                bump!(2);
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line: tok_line,
                });
                continue;
            }
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tok_line,
        });
        bump!(1);
    }
    out
}

/// True if position `i` starts a raw (possibly byte) string: `r"`, `r#`,
/// `br"`, `br#`. Requires the quote/hash to follow immediately so that
/// identifiers starting with `r` (e.g. `rows`) are not misread.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    // Must not already be inside an identifier (`for r in ..` handled by
    // the ident branch running first for `r` alone — here we only see the
    // char sequence, so require quote or hash next).
    matches!(b.get(j), Some('"') | Some('#')) && {
        // `r#ident` is a raw identifier, not a raw string.
        let mut k = j;
        while matches!(b.get(k), Some('#')) {
            k += 1;
        }
        matches!(b.get(k), Some('"'))
    }
}

/// True if the `'` at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some(c) if c.is_alphabetic() || *c == '_' => {
            // `'a'` is a char, `'a` (no closing quote) is a lifetime.
            !matches!(b.get(i + 2), Some('\''))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime::now in a block /* nested */ comment */
            let s = "Instant::now inside a string";
            let r = r#"raw with "quotes" and Instant::now"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn two_char_operators_lex_as_one() {
        let toks = lex("a <= b; c >= d; e::f").toks;
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"<="));
        assert!(puncts.contains(&">="));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n  c");
        let lines: Vec<u32> = out.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        let lifetimes = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn comments_surface_for_waiver_parsing() {
        let out = lex("let x = 1; // tblint: allow(TB001) test reason\n");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].body.contains("tblint: allow(TB001)"));
        assert_eq!(out.comments[0].line, 1);
    }

    #[test]
    fn waiver_syntax_inside_string_is_not_a_comment() {
        let out = lex("let x = \"// tblint: allow(TB001) fake\";");
        assert!(out.comments.is_empty());
    }

    #[test]
    fn tuple_field_digits_are_numbers() {
        let out = lex("self.0[i]");
        let kinds: Vec<TokKind> = out.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Number,
                TokKind::Punct,
                TokKind::Ident,
                TokKind::Punct
            ]
        );
    }
}
