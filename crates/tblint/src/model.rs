//! Flow-aware per-function models for the concurrency rules (TB008–TB010).
//!
//! [`build`] turns one file's token stream into a [`FileModel`]: for every
//! `fn` it tracks *guard regions* — the spans where a `Mutex`/`RwLock`
//! guard obtained via `.lock()` / `.read()` / `.write()` is live — by
//! watching `let` bindings, early `drop(guard)`, statement ends (for
//! guard temporaries never bound to a name) and scope exits. Inside a
//! live region it records three kinds of [`Event`]:
//!
//! * **Blocking** — a blocking operation (fsync-class syncs, sleeps,
//!   parks, group-commit waits, `File::open`/`create`) ran while at least
//!   one guard was held. `Condvar::wait*` is special-cased: waiting on the
//!   guard it atomically releases is the sanctioned pattern, so it only
//!   counts as blocking when *another* guard is also live.
//! * **Acquire** — a second lock was taken while one was held. These are
//!   the edges of the workspace lock-order graph ([`lock_edges`]), whose
//!   cycles ([`find_cycles`]) are the TB009 findings.
//! * **Call** — a workspace function was called while a guard was held.
//!   [`summaries`] aggregates what every *uniquely named* workspace
//!   function blocks on and acquires, so the rules can propagate both
//!   properties one call level deep without a full interprocedural
//!   analysis.
//!
//! The model is a deliberate over-approximation on a token stream, not an
//! AST: guards bound through `if let` / `match` patterns are assumed live
//! to the end of the enclosing scope, closure bodies are scanned inline as
//! part of their defining function, and call resolution is by *name*,
//! restricted to names with exactly one workspace definition and filtered
//! through an ambient blocklist (names that shadow std methods). The
//! trade-offs and escape hatch (waivers with justifications) are
//! documented in DESIGN.md §12.

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Zero-argument methods that produce a lock guard. The empty-parens
/// requirement is what keeps `io::Read::read(buf)` / `Write::write(buf)`
/// calls from being mistaken for `RwLock` acquisitions.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Method / path-call names that block the calling thread. `join` is
/// deliberately absent (`PathBuf::join`, `str::join`); `read_line` too —
/// `stdin.lock().read_line(..)` is the sanctioned stdin pattern.
const BLOCKING_METHODS: [&str; 10] = [
    "sync",
    "sync_all",
    "sync_data",
    "fsync",
    "flush",
    "sleep",
    "park",
    "recv",
    "recv_timeout",
    "wait_for",
];

/// Condvar waits: blocking, but they *consume* the guard passed as the
/// first argument (releasing it atomically), so only foreign guards count.
const CONDVAR_WAITS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// Keywords that can precede `(` without being a call.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "loop", "match", "return", "move", "in", "else", "unsafe", "as", "ref",
    "box", "dyn",
];

/// Names excluded from one-hop call resolution even when uniquely defined
/// in the workspace: they shadow ubiquitous std methods, so a call site
/// almost never refers to the workspace definition.
const AMBIENT_NAMES: [&str; 40] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "clear",
    "iter",
    "next",
    "write",
    "read",
    "lock",
    "drop",
    "fmt",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "min",
    "max",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "map",
    "and_then",
    "ok",
    "take",
    "into_inner",
    "join",
    "find",
    "position",
    "retain",
];

/// One lock guard live at an event, named by the field/static it came
/// from (the last path identifier before `.lock()` / `.read()` /
/// `.write()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Held {
    /// Lock key, e.g. `state`, `wal`, `pins`.
    pub key: String,
    /// 1-based line the guard was acquired on.
    pub line: u32,
}

/// Something that happened inside a live guard region.
#[derive(Debug, Clone)]
pub enum Event {
    /// A blocking operation ran with `held` guards live.
    Blocking {
        /// The blocking call name (`sync_all`, `sleep`, …).
        what: String,
        /// 1-based line of the blocking call.
        line: u32,
        /// Guards live at that point (non-empty).
        held: Vec<Held>,
    },
    /// A workspace-function call with `held` guards live.
    Call {
        /// Callee name as written at the call site.
        callee: String,
        /// 1-based line of the call.
        line: u32,
        /// Guards live at that point (non-empty).
        held: Vec<Held>,
    },
    /// A lock acquisition with `held` (pre-existing) guards live.
    Acquire {
        /// Key of the newly acquired lock.
        key: String,
        /// 1-based line of the acquisition.
        line: u32,
        /// Guards already live (non-empty) — the lock-order predecessors.
        held: Vec<Held>,
    },
}

/// One function's flow model.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Function name as written after `fn`.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Events that happened while at least one guard was live.
    pub events: Vec<Event>,
    /// Every lock acquisition in the body (guarded or not) — the
    /// callee-side half of one-hop lock-order edges.
    pub acquires: Vec<(String, u32)>,
    /// Every blocking operation in the body (guarded or not) — the
    /// callee-side half of one-hop TB008.
    pub blocking: Vec<(String, u32)>,
}

/// One file's functions, including nested ones.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path label.
    pub path: String,
    /// Per-function models in source order.
    pub fns: Vec<FnModel>,
}

/// What a uniquely named workspace function does, for one-hop
/// propagation into its callers.
#[derive(Debug, Clone)]
pub struct Summary {
    /// File of the unique definition.
    pub file: String,
    /// Blocking operations: `(what, file, line)`.
    pub blocking: Vec<(String, String, u32)>,
    /// Lock acquisitions: `(key, file, line)`.
    pub acquires: Vec<(String, String, u32)>,
}

/// A lock-order graph node: the lock key qualified by the file that
/// acquires it, so unrelated fields that happen to share a name (txn's
/// `state` RwLock vs. the WAL flusher's `state` Mutex) are never unified.
pub type Node = (String, String);

/// Why a lock-order edge exists: the acquisition (or call) site.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Index into the `models` slice the edge was found in.
    pub file_idx: usize,
    /// 1-based line of the second acquisition (or the call that reaches
    /// it).
    pub line: u32,
    /// Human-readable chain, e.g. `` `commit` holds `state` (line 426)
    /// and acquires `pins` at crates/txn/src/lib.rs:525 ``.
    pub desc: String,
}

/// A cycle in the lock-order graph, with one witness per edge.
#[derive(Debug, Clone)]
pub struct Cycle {
    /// The nodes on the cycle, starting from the smallest.
    pub nodes: Vec<Node>,
    /// One witness per edge, in cycle order.
    pub witnesses: Vec<Witness>,
}

/// Builds the per-function models for one file.
pub fn build(path: &str, toks: &[Tok]) -> FileModel {
    let mut spans = Vec::new();
    collect_fn_spans(toks, 0, toks.len(), &mut spans);
    let fns = spans.iter().map(|s| scan_fn(toks, s)).collect();
    FileModel {
        path: path.to_string(),
        fns,
    }
}

/// A function's body location: `open` is the index of its `{`, `close`
/// of the matching `}`.
struct FnSpan {
    name: String,
    line: u32,
    open: usize,
    close: usize,
}

/// Finds every `fn` with a body in `toks[i..end]`, recursing into bodies
/// so nested functions get their own span.
fn collect_fn_spans(toks: &[Tok], mut i: usize, end: usize, out: &mut Vec<FnSpan>) {
    while i < end {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            let name = match toks.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // The body `{` is the first brace outside the parameter list /
            // generics; a `;` first means a bodyless trait method.
            let mut j = i + 2;
            let mut nest = 0i32;
            let mut body = None;
            while j < end {
                match toks[j].text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" if nest == 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if nest == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            match body {
                Some(open) => {
                    let close = match_brace(toks, open, end);
                    out.push(FnSpan {
                        name,
                        line: toks[i].line,
                        open,
                        close,
                    });
                    collect_fn_spans(toks, open + 1, close, out);
                    i = close + 1;
                }
                None => i = j + 1,
            }
        } else {
            i += 1;
        }
    }
}

/// Index of the `}` matching the `{` at `open` (or `end - 1`).
fn match_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// A live guard during the scan.
struct Guard {
    key: String,
    /// `Some(binding)` for `let g = ….lock()…`, `None` for a statement
    /// temporary.
    name: Option<String>,
    line: u32,
    /// Brace depth at acquisition; the guard dies when the scan pops
    /// below it.
    depth: u32,
}

fn snapshot(live: &[Guard]) -> Vec<Held> {
    live.iter()
        .map(|g| Held {
            key: g.key.clone(),
            line: g.line,
        })
        .collect()
}

/// Scans one function body, tracking guard regions and recording events.
#[allow(clippy::too_many_lines)]
fn scan_fn(toks: &[Tok], span: &FnSpan) -> FnModel {
    let mut model = FnModel {
        name: span.name.clone(),
        line: span.line,
        events: Vec::new(),
        acquires: Vec::new(),
        blocking: Vec::new(),
    };
    let mut depth: u32 = 0;
    let mut paren: i32 = 0;
    let mut live: Vec<Guard> = Vec::new();
    let mut pending_let: Option<String> = None;
    let mut k = span.open;
    let end = span.close.min(toks.len().saturating_sub(1));
    while k <= end {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    live.retain(|g| g.depth <= depth);
                }
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => {
                    live.retain(|g| g.name.is_some());
                    pending_let = None;
                }
                _ => {}
            }
            k += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let prev = if k > span.open {
            toks[k - 1].text.as_str()
        } else {
            ""
        };
        let next_is = |off: usize, s: &str| toks.get(k + off).is_some_and(|n| n.text == s);

        // Nested fn: skip its body — it gets its own span and scan.
        if t.text == "fn" && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let mut j = k + 2;
            let mut nest = 0i32;
            while j <= end {
                match toks[j].text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" if nest == 0 => {
                        k = match_brace(toks, j, end + 1) + 1;
                        break;
                    }
                    ";" if nest == 0 => {
                        k = j + 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j > end {
                k = j;
            }
            continue;
        }

        // `let <pat> = …` — remember the first bound name so an acquire in
        // the initializer becomes a *named* guard.
        if t.text == "let" {
            let mut j = k + 1;
            while let Some(n) = toks.get(j) {
                if n.kind == TokKind::Ident && n.text != "mut" && n.text != "ref" {
                    pending_let = Some(n.text.clone());
                    break;
                }
                if n.text == "=" || n.text == ";" {
                    break;
                }
                j += 1;
            }
            k += 1;
            continue;
        }

        // `drop(name)` — early end of a named guard region.
        if t.text == "drop"
            && prev != "."
            && next_is(1, "(")
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && next_is(3, ")")
        {
            let name = toks[k + 2].text.clone();
            live.retain(|g| g.name.as_deref() != Some(name.as_str()));
            k += 4; // the skipped `(` and `)` balance out
            continue;
        }

        // `<recv>.lock()` / `.read()` / `.write()` — a guard is born.
        if ACQUIRE_METHODS.contains(&t.text.as_str())
            && prev == "."
            && next_is(1, "(")
            && next_is(2, ")")
        {
            let key = if k >= span.open + 2 {
                let recv = &toks[k - 2];
                match recv.kind {
                    TokKind::Ident | TokKind::Number => recv.text.clone(),
                    _ => "<expr>".to_string(),
                }
            } else {
                "<expr>".to_string()
            };
            model.acquires.push((key.clone(), t.line));
            if !live.is_empty() {
                model.events.push(Event::Acquire {
                    key: key.clone(),
                    line: t.line,
                    held: snapshot(&live),
                });
            }
            live.push(Guard {
                key,
                name: pending_let.clone(),
                line: t.line,
                depth,
            });
            k += 1;
            continue;
        }

        // `cv.wait(guard)` family: blocking only if a *foreign* guard is
        // also live; the consumed guard's region survives (the result is
        // conventionally rebound to the same name).
        if CONDVAR_WAITS.contains(&t.text.as_str()) && prev == "." && next_is(1, "(") {
            let mut arg = None;
            let mut j = k + 2;
            while let Some(n) = toks.get(j) {
                if n.kind == TokKind::Ident && n.text != "mut" {
                    arg = Some(n.text.clone());
                    break;
                }
                if n.text != "&" {
                    break;
                }
                j += 1;
            }
            let foreign: Vec<Held> = live
                .iter()
                .filter(|g| {
                    arg.as_deref()
                        .is_none_or(|a| g.name.as_deref() != Some(a) && g.key != a)
                })
                .map(|g| Held {
                    key: g.key.clone(),
                    line: g.line,
                })
                .collect();
            model.blocking.push((t.text.clone(), t.line));
            if !foreign.is_empty() {
                model.events.push(Event::Blocking {
                    what: format!("{}(…) on a condvar", t.text),
                    line: t.line,
                    held: foreign,
                });
            }
            k += 1;
            continue;
        }

        // Blocking calls: methods/paths from the list, plus file opens.
        if let Some(what) = blocking_name_at(toks, k, prev) {
            model.blocking.push((what.clone(), t.line));
            if !live.is_empty() {
                model.events.push(Event::Blocking {
                    what,
                    line: t.line,
                    held: snapshot(&live),
                });
            }
            k += 1;
            continue;
        }

        // Any other call while a guard is live: a one-hop candidate.
        if !live.is_empty()
            && next_is(1, "(")
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
            && !KEYWORDS.contains(&t.text.as_str())
            && !ACQUIRE_METHODS.contains(&t.text.as_str())
        {
            model.events.push(Event::Call {
                callee: t.text.clone(),
                line: t.line,
                held: snapshot(&live),
            });
        }
        k += 1;
    }
    model
}

/// Classifies the identifier at `k` as a blocking call, if it is one.
fn blocking_name_at(toks: &[Tok], k: usize, prev: &str) -> Option<String> {
    let t = &toks[k];
    if toks.get(k + 1).is_none_or(|n| n.text != "(") {
        return None;
    }
    if BLOCKING_METHODS.contains(&t.text.as_str()) && (prev == "." || prev == "::") {
        return Some(t.text.clone());
    }
    if prev == "::" && k >= 2 && toks[k - 2].kind == TokKind::Ident {
        let owner = toks[k - 2].text.as_str();
        if owner == "File" && matches!(t.text.as_str(), "open" | "create" | "create_new") {
            return Some(format!("File::{}", t.text));
        }
        if owner == "OpenOptions" && t.text == "new" {
            return Some("OpenOptions::new".to_string());
        }
    }
    None
}

/// Aggregates what every *uniquely named* workspace function blocks on and
/// acquires. Names with multiple definitions (trait methods implemented by
/// all four engines, `commit`, `now`, …), uppercase names, and ambient
/// std-shadowing names are excluded: resolving them by name would merge
/// unrelated functions and manufacture false cycles.
pub fn summaries(models: &[FileModel]) -> BTreeMap<String, Summary> {
    let mut defs: BTreeMap<&str, usize> = BTreeMap::new();
    for fm in models {
        for f in &fm.fns {
            *defs.entry(f.name.as_str()).or_insert(0) += 1;
        }
    }
    let mut out = BTreeMap::new();
    for fm in models {
        for f in &fm.fns {
            if defs.get(f.name.as_str()) != Some(&1)
                || AMBIENT_NAMES.contains(&f.name.as_str())
                || !f
                    .name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                || (f.blocking.is_empty() && f.acquires.is_empty())
            {
                continue;
            }
            out.insert(
                f.name.clone(),
                Summary {
                    file: fm.path.clone(),
                    blocking: f
                        .blocking
                        .iter()
                        .map(|(w, l)| (w.clone(), fm.path.clone(), *l))
                        .collect(),
                    acquires: f
                        .acquires
                        .iter()
                        .map(|(key, l)| (key.clone(), fm.path.clone(), *l))
                        .collect(),
                },
            );
        }
    }
    out
}

/// Builds the lock-order graph: an edge `(a, b)` means some function
/// acquired `b` (directly, or through a one-hop call) while holding `a`.
pub fn lock_edges(
    models: &[FileModel],
    sums: &BTreeMap<String, Summary>,
) -> BTreeMap<(Node, Node), Vec<Witness>> {
    let mut edges: BTreeMap<(Node, Node), Vec<Witness>> = BTreeMap::new();
    for (fi, fm) in models.iter().enumerate() {
        for f in &fm.fns {
            for ev in &f.events {
                match ev {
                    Event::Acquire { key, line, held } => {
                        for h in held {
                            let from: Node = (fm.path.clone(), h.key.clone());
                            let to: Node = (fm.path.clone(), key.clone());
                            edges.entry((from, to)).or_default().push(Witness {
                                file_idx: fi,
                                line: *line,
                                desc: format!(
                                    "`{}` holds `{}` (line {}) and acquires `{}` at {}:{}",
                                    f.name, h.key, h.line, key, fm.path, line
                                ),
                            });
                        }
                    }
                    Event::Call { callee, line, held } => {
                        let Some(s) = sums.get(callee) else { continue };
                        for (key, cfile, cline) in &s.acquires {
                            for h in held {
                                let from: Node = (fm.path.clone(), h.key.clone());
                                let to: Node = (cfile.clone(), key.clone());
                                edges.entry((from, to)).or_default().push(Witness {
                                    file_idx: fi,
                                    line: *line,
                                    desc: format!(
                                        "`{}` holds `{}` (line {}) and calls `{}` at {}:{}, \
                                         which acquires `{}` at {}:{}",
                                        f.name,
                                        h.key,
                                        h.line,
                                        callee,
                                        fm.path,
                                        line,
                                        key,
                                        cfile,
                                        cline
                                    ),
                                });
                            }
                        }
                    }
                    Event::Blocking { .. } => {}
                }
            }
        }
    }
    edges
}

/// Finds every elementary cycle reachable from an edge, deduplicated by
/// rotation (each cycle is reported once, anchored at its smallest node).
pub fn find_cycles(edges: &BTreeMap<(Node, Node), Vec<Witness>>) -> Vec<Cycle> {
    let mut adj: BTreeMap<&Node, Vec<&Node>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut seen: BTreeSet<Vec<Node>> = BTreeSet::new();
    let mut out = Vec::new();
    for (a, b) in edges.keys() {
        let cycle_nodes: Option<Vec<Node>> = if a == b {
            Some(vec![a.clone()])
        } else {
            shortest_path(&adj, b, a).map(|path| {
                // path is b → … → a; the cycle is a → b → … → a.
                let mut nodes = vec![a.clone()];
                nodes.extend(path.into_iter().take_while(|n| n != a));
                nodes
            })
        };
        let Some(nodes) = cycle_nodes else { continue };
        let canon = canonical_rotation(&nodes);
        if !seen.insert(canon.clone()) {
            continue;
        }
        let witnesses = canon
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let next = &canon[(i + 1) % canon.len()];
                edges
                    .get(&(n.clone(), next.clone()))
                    .and_then(|ws| ws.first())
                    .cloned()
            })
            .collect();
        out.push(Cycle {
            nodes: canon,
            witnesses,
        });
    }
    out
}

/// BFS shortest path `from → … → to` over the adjacency map, returned as
/// the node list starting at `from` and ending at `to`.
fn shortest_path(adj: &BTreeMap<&Node, Vec<&Node>>, from: &Node, to: &Node) -> Option<Vec<Node>> {
    let mut prev: BTreeMap<&Node, &Node> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    let mut visited: BTreeSet<&Node> = BTreeSet::new();
    visited.insert(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![cur.clone()];
            let mut c = cur;
            while let Some(p) = prev.get(c) {
                path.push((*p).clone());
                c = p;
            }
            path.reverse();
            return Some(path);
        }
        for next in adj.get(cur).into_iter().flatten() {
            if visited.insert(next) {
                prev.insert(next, cur);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Rotates a cycle's node list so the smallest node comes first.
fn canonical_rotation(nodes: &[Node]) -> Vec<Node> {
    let min = nodes
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| *n)
        .map_or(0, |(i, _)| i);
    let mut out = Vec::with_capacity(nodes.len());
    out.extend_from_slice(&nodes[min..]);
    out.extend_from_slice(&nodes[..min]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnModel> {
        build("crates/x/src/lib.rs", &lex(src).toks).fns
    }

    #[test]
    fn named_guard_region_spans_to_scope_exit() {
        let m = &fns(
            "fn f(&self) { let st = self.state.lock().expect(\"p\"); self.file.sync_all()?; }",
        )[0];
        let blocks: Vec<_> = m
            .events
            .iter()
            .filter(|e| matches!(e, Event::Blocking { .. }))
            .collect();
        assert_eq!(blocks.len(), 1);
        if let Event::Blocking { what, held, .. } = blocks[0] {
            assert_eq!(what, "sync_all");
            assert_eq!(held.len(), 1);
            assert_eq!(held[0].key, "state");
        }
    }

    #[test]
    fn drop_ends_the_region_early() {
        let src = "fn f(&self) { let st = self.state.lock().expect(\"p\"); drop(st); \
                   self.file.sync_all()?; }";
        let m = &fns(src)[0];
        assert!(
            !m.events.iter().any(|e| matches!(e, Event::Blocking { .. })),
            "sync after drop(st) must not count as blocking-under-lock"
        );
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "fn f(&self) { *self.pins.lock().expect(\"p\").entry(k).or_insert(0) += 1; \
                   self.file.sync_all()?; }";
        let m = &fns(src)[0];
        assert!(
            !m.events.iter().any(|e| matches!(e, Event::Blocking { .. })),
            "a guard temporary ends with its statement"
        );
    }

    #[test]
    fn scope_exit_ends_the_region() {
        let src = "fn f(&self) { { let g = self.wal.lock().expect(\"p\"); g.touch(); } \
                   self.file.sync_all()?; }";
        let m = &fns(src)[0];
        assert!(!m.events.iter().any(|e| matches!(e, Event::Blocking { .. })));
    }

    #[test]
    fn condvar_wait_on_own_guard_is_sanctioned() {
        let src = "fn f(&self) { let mut st = self.shared.state.lock().expect(\"p\"); \
                   st = self.cv.wait_timeout(st, d).expect(\"p\").0; }";
        let m = &fns(src)[0];
        assert!(
            !m.events.iter().any(|e| matches!(e, Event::Blocking { .. })),
            "waiting on the guard the condvar releases is the sanctioned pattern"
        );
        // …but with a second, foreign guard live it is a finding.
        let src = "fn g(&self) { let a = self.a.lock().expect(\"p\"); \
                   let mut st = self.shared.state.lock().expect(\"p\"); \
                   st = self.cv.wait_timeout(st, d).expect(\"p\").0; }";
        let m = &fns(src)[0];
        let blocks: Vec<_> = m
            .events
            .iter()
            .filter(|e| matches!(e, Event::Blocking { .. }))
            .collect();
        assert_eq!(blocks.len(), 1);
        if let Event::Blocking { held, .. } = blocks[0] {
            assert_eq!(held.len(), 1);
            assert_eq!(held[0].key, "a");
        }
    }

    #[test]
    fn second_acquire_records_a_lock_order_event() {
        let src = "fn f(&self) { let a = self.left.lock().expect(\"p\"); \
                   let b = self.right.lock().expect(\"p\"); }";
        let m = &fns(src)[0];
        let acq: Vec<_> = m
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { key, held, .. } => Some((key.clone(), held.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acq.len(), 1);
        assert_eq!(acq[0].0, "right");
        assert_eq!(acq[0].1[0].key, "left");
    }

    #[test]
    fn calls_under_guard_are_recorded_and_summarized() {
        let src = "fn caller(&self) { let st = self.state.lock().expect(\"p\"); \
                   self.flush_log()?; }\n\
                   fn flush_log(&self) { self.file.sync_all()?; }";
        let models = vec![build("crates/x/src/lib.rs", &lex(src).toks)];
        let caller = &models[0].fns[0];
        assert!(caller
            .events
            .iter()
            .any(|e| matches!(e, Event::Call { callee, .. } if callee == "flush_log")));
        let sums = summaries(&models);
        let s = sums.get("flush_log").expect("unique summary");
        assert_eq!(s.blocking.len(), 1);
        assert_eq!(s.blocking[0].0, "sync_all");
    }

    #[test]
    fn ambiguous_names_get_no_summary() {
        let src = "fn now(&self) { self.state.read().expect(\"p\"); }";
        let src2 = "fn now(&self) -> u64 { 7 }";
        let models = vec![
            build("crates/a/src/lib.rs", &lex(src).toks),
            build("crates/b/src/lib.rs", &lex(src2).toks),
        ];
        assert!(!summaries(&models).contains_key("now"));
    }

    #[test]
    fn nested_fn_bodies_are_scanned_separately_not_inline() {
        let src = "fn outer(&self) { let g = self.state.lock().expect(\"p\"); \
                   fn inner(f: &File) { f.sync_all().ok(); } }";
        let models = build("crates/x/src/lib.rs", &lex(src).toks);
        let outer = models.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(
            !outer
                .events
                .iter()
                .any(|e| matches!(e, Event::Blocking { .. })),
            "inner fn's sync must not be attributed to outer's guard region"
        );
        assert!(models.fns.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn two_lock_inversion_is_a_cycle_with_both_witnesses() {
        let src = "fn ab(&self) { let a = self.left.lock().expect(\"p\"); \
                   let b = self.right.lock().expect(\"p\"); }\n\
                   fn ba(&self) { let b = self.right.lock().expect(\"p\"); \
                   let a = self.left.lock().expect(\"p\"); }";
        let models = vec![build("crates/x/src/lib.rs", &lex(src).toks)];
        let sums = summaries(&models);
        let edges = lock_edges(&models, &sums);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.len(), 2);
        assert_eq!(cycles[0].witnesses.len(), 2);
        let descs: Vec<&str> = cycles[0]
            .witnesses
            .iter()
            .map(|w| w.desc.as_str())
            .collect();
        assert!(descs.iter().any(|d| d.contains("`ab`")));
        assert!(descs.iter().any(|d| d.contains("`ba`")));
    }

    #[test]
    fn acyclic_hierarchy_has_no_cycles() {
        let src = "fn f(&self) { let a = self.state.lock().expect(\"p\"); \
                   let b = self.wal.lock().expect(\"p\"); \
                   let c = self.pins.lock().expect(\"p\"); }";
        let models = vec![build("crates/x/src/lib.rs", &lex(src).toks)];
        let edges = lock_edges(&models, &summaries(&models));
        assert!(!edges.is_empty());
        assert!(find_cycles(&edges).is_empty());
    }
}
