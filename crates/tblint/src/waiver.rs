//! Waiver parsing: `// tblint: allow(TBnnn) <reason>`.
//!
//! Waiver policy (also documented in DESIGN.md):
//!
//! * a waiver suppresses findings of the named rule on its own line and on
//!   the line immediately below it (so it can trail the offending
//!   expression or sit on its own line above it);
//! * the reason is **mandatory** — a waiver without one is itself a
//!   diagnostic ([`crate::rules::TB000`]);
//! * a waiver that suppresses nothing is reported as unused, so stale
//!   waivers cannot accumulate.

use crate::lexer::LineComment;

/// A parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: u32,
    /// The rule code it waives (`"TB004"`).
    pub code: String,
    /// The mandatory justification.
    pub reason: String,
    /// Set by the rule engine when a finding consumes this waiver.
    pub used: bool,
}

/// A waiver-shaped comment that failed to parse, with the reason it failed.
#[derive(Debug, Clone)]
pub struct MalformedWaiver {
    /// 1-based line of the broken comment.
    pub line: u32,
    /// Human-readable description of what is wrong.
    pub problem: String,
}

/// The marker every waiver comment starts with (after `//` and spaces).
const MARKER: &str = "tblint:";

/// Extracts waivers from a file's line comments. Comments that clearly try
/// to be waivers but are malformed are returned separately so the driver
/// can surface them — a typo must not silently un-waive a finding.
pub fn parse(comments: &[LineComment]) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        let body = c.body.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedWaiver {
                line: c.line,
                problem: format!("expected `allow(TBnnn) <reason>` after `{MARKER}`"),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push(MalformedWaiver {
                line: c.line,
                problem: "unclosed `allow(` in waiver".to_string(),
            });
            continue;
        };
        let code = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if !is_rule_code(&code) {
            malformed.push(MalformedWaiver {
                line: c.line,
                problem: format!("`{code}` is not a rule code (expected TB0nn)"),
            });
            continue;
        }
        if reason.is_empty() {
            malformed.push(MalformedWaiver {
                line: c.line,
                problem: format!("waiver for {code} has no reason — justifications are mandatory"),
            });
            continue;
        }
        waivers.push(Waiver {
            line: c.line,
            code,
            reason,
            used: false,
        });
    }
    (waivers, malformed)
}

/// True if `code` has the shape of a rule code (`TB` + 3 digits).
fn is_rule_code(code: &str) -> bool {
    code.len() == 5 && code.starts_with("TB") && code[2..].chars().all(|c| c.is_ascii_digit())
}

/// Marks a matching waiver for (`code`, `line`) used and returns its
/// reason. A waiver on line `L` covers findings on `L` and `L + 1`.
pub fn claim(waivers: &mut [Waiver], code: &str, line: u32) -> Option<String> {
    for w in waivers.iter_mut() {
        if w.code == code && (w.line == line || w.line + 1 == line) {
            w.used = true;
            return Some(w.reason.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
        parse(&lex(src).comments)
    }

    #[test]
    fn well_formed_waiver_parses() {
        let (ws, bad) = parse_src("x(); // tblint: allow(TB004) slot came from insert above\n");
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].code, "TB004");
        assert_eq!(ws[0].reason, "slot came from insert above");
        assert_eq!(ws[0].line, 1);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let (ws, bad) = parse_src("// tblint: allow(TB001)\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("no reason"));
    }

    #[test]
    fn bad_code_is_malformed() {
        let (ws, bad) = parse_src("// tblint: allow(TB1) because\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let (ws, bad) = parse_src("// just a comment mentioning allow(TB004)\n");
        assert!(ws.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn doc_comment_waiver_accepted() {
        // `///` doc comments surface with a leading slash in the body.
        let (ws, bad) = parse_src("/// tblint: allow(TB002) doc example\n");
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn claim_covers_same_and_next_line() {
        let (mut ws, _) = parse_src("// tblint: allow(TB004) reason here\nx();\n");
        assert!(claim(&mut ws, "TB004", 2).is_some());
        assert!(ws[0].used);
        let (mut ws, _) = parse_src("// tblint: allow(TB004) reason here\n");
        assert!(claim(&mut ws, "TB001", 1).is_none());
        assert!(claim(&mut ws, "TB004", 3).is_none());
    }
}
