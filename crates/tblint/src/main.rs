//! The `tblint` CLI: lints the workspace and exits non-zero on any
//! unwaived finding. Usage: `cargo run -p tblint --release [--json] [root]`.
//!
//! Exit codes are stable so CI and tooling can dispatch on them:
//!
//! * `0` — clean (no unwaived findings);
//! * `2` — the workspace could not be walked at all;
//! * `10 + n` — unwaived findings, where `n` is the lowest-numbered firing
//!   rule (`TB000` → 10, `TB001` → 11, …, `TB010` → 20).

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root = Some(PathBuf::from(arg));
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let report = match tblint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tblint: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let unwaived = report.unwaived().count();
    // Write errors (e.g. a closed pipe from `tblint | head`) are ignored:
    // the exit code below is the contract, and a SIGPIPE'd consumer has
    // already read everything it wanted.
    let mut out = std::io::stdout().lock();
    if json {
        let _ = writeln!(out, "{}", render_json(&report, unwaived));
    } else {
        for d in &report.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "tblint: {} files, {} finding(s): {} unwaived, {} waived",
            report.files,
            report.diagnostics.len(),
            unwaived,
            report.waived_count()
        );
        let _ = if unwaived > 0 {
            writeln!(
                out,
                "tblint: FAIL — fix the findings above or waive them with a justification"
            )
        } else {
            writeln!(out, "tblint: OK")
        };
    }
    match lowest_unwaived_rule(&report) {
        Some(n) => ExitCode::from(10 + n),
        None => ExitCode::SUCCESS,
    }
}

/// The lowest rule number among unwaived findings, if any.
fn lowest_unwaived_rule(report: &tblint::Report) -> Option<u8> {
    report
        .unwaived()
        .filter_map(|d| d.code.get(2..)?.parse::<u8>().ok())
        .min()
}

/// Renders the report as a single JSON object (hand-rolled: the workspace
/// deliberately has no serde dependency).
fn render_json(report: &tblint::Report, unwaived: usize) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files\":{},", report.files));
    out.push_str("\"findings\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"code\":{},\"message\":{},\"snippet\":{},\"waived\":{}}}",
            json_str(&d.file),
            d.line,
            json_str(d.code),
            json_str(&d.message),
            json_str(&d.snippet),
            match &d.waived {
                Some(reason) => json_str(reason),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str("],");
    out.push_str(&format!(
        "\"unwaived\":{unwaived},\"waived\":{}}}",
        report.waived_count()
    ));
    out
}

/// JSON string escaping for the small character set that needs it.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks upward from the current directory to the workspace root (the
/// directory containing `crates/`), so the tool runs correctly from any
/// crate directory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
