//! The `tblint` CLI: lints the workspace and exits non-zero on any
//! unwaived finding. Usage: `cargo run -p tblint --release [root]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(find_workspace_root);
    let report = match tblint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tblint: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    let unwaived = report.unwaived().count();
    println!(
        "tblint: {} files, {} finding(s): {} unwaived, {} waived",
        report.files,
        report.diagnostics.len(),
        unwaived,
        report.waived_count()
    );
    if unwaived > 0 {
        println!("tblint: FAIL — fix the findings above or waive them with a justification");
        ExitCode::FAILURE
    } else {
        println!("tblint: OK");
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory to the workspace root (the
/// directory containing `crates/`), so the tool runs correctly from any
/// crate directory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
