// TB008 firing fixture: blocking operations run while a mutex guard is
// still live — every other user of the lock waits out the latency.
fn flush_under_lock(&self) -> Result<()> {
    let mut reg = self.registry.lock().expect("registry poisoned");
    reg.file.sync_all()?;
    Ok(())
}

fn nap_under_lock(&self) {
    let g = self.registry.lock().expect("registry poisoned");
    std::thread::sleep(self.interval);
    drop(g);
}
