// TB004 clean fixture: total alternatives — `.get()` plus explicit error
// handling instead of panicking accessors.
fn read_slot(slots: &[u64], i: usize, version: Option<&Version>) -> Result<u64> {
    let v = version.ok_or_else(|| Error::Internal("slot has no live version".into()))?;
    let _ = v.row.values().first();
    Ok(slots.get(i).copied().unwrap_or(0))
}
