// TB007 shard-scope clean fixture: shard writes route through the
// cluster coordinator (router + FCW log + oracle), shard-local reads and
// recovery-time manager construction stay legal.
fn serve(cluster: &Cluster, id: TableId, k: &Key) -> Result<SysTime> {
    let mut writer = cluster.begin()?;
    writer.insert(id, simple_row(7, 70), None)?;
    writer.update(id, k, &[(1, Value::Int(8))], None)?;
    writer.commit()
}

fn rebuild(rec: Recovered, wal: Option<TxnWal>) -> Result<TxnManager> {
    TxnManager::new(rec.engine, rec.ids, wal)
}

fn observe(cluster: &Cluster, id: TableId) -> Result<usize> {
    let snap = cluster.snapshot();
    let guards = snap.read()?;
    let out = guards.view().scan(id, &SysSpec::Current, &AppSpec::All, &[])?;
    Ok(out.rows.len())
}
