// TB008 one-hop fixture (caller half): the blocking operation hides one
// intra-workspace call away — `flush_log` fsyncs, and this function calls
// it with the state guard live.
fn commit_under_lock(&self) -> Result<()> {
    let mut st = self.state.write().expect("state poisoned");
    flush_log(&mut st)?;
    Ok(())
}
