// TB001 clean fixture: versions are stamped from the logical commit
// counter, never the wall clock.
fn stamp_version(engine: &dyn BitemporalEngine) -> SysTime {
    engine.now()
}
