// TB007 firing fixture: production code driving engine DML directly —
// one bare `engine` receiver, one `*_engine` binding. Both bypass the
// MVCC commit path (no snapshot validation, no WAL record).
fn seed(engine: &mut dyn BitemporalEngine, id: TableId) -> Result<()> {
    engine.insert(id, simple_row(1, 10), None)?;
    Ok(())
}

fn patch(base_engine: &mut dyn BitemporalEngine, id: TableId, k: &Key) -> Result<()> {
    base_engine.update(id, k, &[(1, Value::Int(2))], None)?;
    Ok(())
}
