// TB009 clean fixture: both paths honor the same hierarchy
// (accounts before audit), so the lock-order graph is acyclic.
fn transfer(&self) {
    let a = self.accounts.lock().expect("accounts poisoned");
    let b = self.audit.lock().expect("audit poisoned");
    reconcile(&a, &b);
}

fn report(&self) {
    let a = self.accounts.lock().expect("accounts poisoned");
    let b = self.audit.lock().expect("audit poisoned");
    reconcile(&a, &b);
}
