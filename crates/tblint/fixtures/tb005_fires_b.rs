// TB005 firing fixture (pairs with tb005_clean_a.rs): `checkpoint` is
// missing and `vacuum` is extra, so the method sets diverge.
impl BitemporalEngine for FixtureB {
    fn commit(&mut self) {}
    fn scan(&self) {}
    fn vacuum(&mut self) {}
}
