// TB003 clean fixture for the optimizer: the feedback store keys on a
// BTreeMap, so snapshots (and the bench notes rendered from them) come out
// in site order, byte-identical across runs.
use std::collections::BTreeMap;

fn snapshot(corrections: &BTreeMap<String, f64>) -> Vec<String> {
    corrections
        .iter()
        .map(|(site, c)| format!("{site}: x{c:.2}"))
        .collect()
}
