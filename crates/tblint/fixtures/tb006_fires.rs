// TB006 firing fixture: WAL construction sites that hide the durability
// decision — one passes no mode-shaped argument at all, one launders the
// choice through `DurabilityMode::default()`.
fn open_log(sink: Box<dyn WalSink>) -> Result<TxnWal> {
    TxnWal::create(sink)
}

fn open_defaulted(sink: Box<dyn WalSink>) -> Result<TxnWal> {
    TxnWal::create(sink, DurabilityMode::default())
}
