// TB001 firing fixture: wall-clock reads outside the bench harness.
use std::time::{Instant, SystemTime};

fn stamp_version() -> u128 {
    let started = Instant::now();
    let _ = started;
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}
