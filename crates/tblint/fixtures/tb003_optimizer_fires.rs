// TB003 firing fixture for the optimizer: a hash-keyed feedback store
// iterates in randomized order, so `feedback_snapshot()` — and every bench
// note built from it — changes between runs, and tie-broken plan choices
// can flap with it.
use std::collections::HashMap;

fn snapshot(corrections: &HashMap<String, f64>) -> Vec<String> {
    corrections
        .iter()
        .map(|(site, c)| format!("{site}: x{c:.2}"))
        .collect()
}
