// TB003 clean fixture: BTreeMap iterates in key order, so the report is
// byte-identical across runs.
use std::collections::BTreeMap;

fn emit(cells: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (label, value) in cells {
        out.push_str(&format!("{label}: {value}\n"));
    }
    out
}
