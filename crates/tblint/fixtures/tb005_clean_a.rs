// TB005 clean fixture (pairs with tb005_clean_b.rs): identical method
// sets, different definition order.
impl BitemporalEngine for FixtureA {
    fn scan(&self) {}
    fn commit(&mut self) {}
    fn checkpoint(&mut self) {}
}
