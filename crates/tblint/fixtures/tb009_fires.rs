// TB009 firing fixture: a classic two-lock inversion. `transfer` takes
// accounts then audit; `report` takes audit then accounts. Under load the
// two paths deadlock; tblint reports the cycle with both witness chains.
fn transfer(&self) {
    let a = self.accounts.lock().expect("accounts poisoned");
    let b = self.audit.lock().expect("audit poisoned");
    reconcile(&a, &b);
}

fn report(&self) {
    let b = self.audit.lock().expect("audit poisoned");
    let a = self.accounts.lock().expect("accounts poisoned");
    reconcile(&a, &b);
}
