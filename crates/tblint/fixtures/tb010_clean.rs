// TB010 clean fixture: the two sanctioned poison policies — a named
// `.expect("<lock name> poisoned")`, or explicit recovery that takes the
// data despite the poison.
fn seq(&self) -> u64 {
    let st = self.state.lock().expect("state poisoned");
    st.seq
}

fn first_panic(&self) -> Option<String> {
    self.panics.lock().unwrap_or_else(|p| p.into_inner()).clone()
}
