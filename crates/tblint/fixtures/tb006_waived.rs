// TB006 waived fixture: a justified waiver suppresses the finding; the
// justification is carried into the diagnostic.
fn open_scratch(sink: Box<dyn WalSink>) -> Result<TxnWal> {
    // tblint: allow(TB006) scratch log for sizing only; bytes are discarded
    TxnWal::create(sink)
}
