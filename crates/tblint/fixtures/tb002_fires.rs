// TB002 firing fixture: closed-interval comparisons on period endpoints.
fn visible(point: SysTime, sys_start: SysTime, sys_end: SysTime) -> bool {
    sys_start <= point && point <= sys_end
}

fn overlaps(a_end: AppDate, b_start: AppDate) -> bool {
    b_start <= a_end
}
