// TB007 waived fixture: pre-serving setup may seed an engine directly
// when the justification is stated at the call site.
fn seed(engine: &mut dyn BitemporalEngine, id: TableId) -> Result<()> {
    // tblint: allow(TB007) pre-serving seed; the manager wraps the engine after this
    engine.insert(id, simple_row(1, 10), None)?;
    Ok(())
}
