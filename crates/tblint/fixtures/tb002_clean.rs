// TB002 clean fixture: half-open [start, end) — endpoints compare with
// strict < / >, starts may use <=.
fn visible(point: SysTime, sys_start: SysTime, sys_end: SysTime) -> bool {
    sys_start <= point && point < sys_end
}

fn overlaps(a_end: AppDate, b_start: AppDate) -> bool {
    b_start < a_end
}
