// TB007 shard-scope firing fixture: cluster code reaching past the
// coordinator into a per-shard serving layer — one `begin` on a manager
// receiver, one DML call on the resulting transaction. Both skip the
// key→shard router, the cluster first-committer-wins log and the
// commit-timestamp oracle, so the write lands at a shard-local timestamp
// no cross-shard snapshot can trust.
fn patch_shard(shard_mgr: &TxnManager, id: TableId, k: &Key) -> Result<()> {
    let mut txn = shard_mgr.begin()?;
    txn.update(id, k, &[(1, Value::Int(9))], None)?;
    txn.commit()?;
    Ok(())
}
