// TB007 clean fixture: writes go through the MVCC transaction, reads and
// commits stay legal on the engine, and `insert` on a non-engine receiver
// (a map) does not fire.
fn serve(mgr: &TxnManager, id: TableId, k: &Key) -> Result<()> {
    let mut txn = mgr.begin()?;
    txn.insert(id, simple_row(7, 70), None)?;
    txn.update(id, k, &[(1, Value::Int(8))], None)?;
    txn.commit()?;
    Ok(())
}

fn observe(engine: &dyn BitemporalEngine, id: TableId) -> Result<usize> {
    let out = engine.scan(id, &SysSpec::Current, &AppSpec::All, &[])?;
    let mut seen = BTreeMap::new();
    seen.insert(id, out.rows.len());
    Ok(out.rows.len())
}
