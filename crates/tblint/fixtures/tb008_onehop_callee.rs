// TB008 one-hop fixture (callee half): blocks, but holds nothing itself —
// only callers with live guards are findings.
fn flush_log(st: &mut State) -> Result<()> {
    st.file.sync_all()?;
    Ok(())
}
