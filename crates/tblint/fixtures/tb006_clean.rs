// TB006 clean fixture: every construction site names its durability —
// a literal mode, a threaded `mode` binding, or a config `durability`
// field, including one with nested call parentheses in the sink argument.
fn open_strict(sink: Box<dyn WalSink>) -> Result<TxnWal> {
    TxnWal::create(sink, DurabilityMode::Strict)
}

fn open_from_opts(sink: Box<dyn WalSink>, opts: &DurableOptions) -> Result<TxnWal> {
    TxnWal::create(sink, opts.mode)
}

fn open_from_config(buf: SharedBuf, plan: FaultPlan, cfg: &BenchConfig) -> Result<TxnWal> {
    TxnWal::create(Box::new(FaultyWriter::new(buf, plan)), cfg.durability)
}
