// TB008 waived fixture: a sink's own serialization mutex exists to order
// writes *and* syncs — blocking under it is the design, stated in place.
fn sync_under_sink_lock(&self) -> Result<()> {
    let mut s = self.sink.lock().expect("sink poisoned");
    // tblint: allow(TB008) the sink mutex serializes the sink itself; syncing under it is the point
    s.file.sync_all()?;
    Ok(())
}
