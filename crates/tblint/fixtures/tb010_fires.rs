// TB010 firing fixture: bare `.unwrap()` on lock results erases the
// poison policy — a panic elsewhere cascades as an unexplained panic here.
fn seq(&self) -> u64 {
    let st = self.state.lock().unwrap();
    st.seq
}

fn snapshot(&self) -> u64 {
    self.state.read().unwrap().seq
}
