// TB004 firing fixture: panicking patterns in a scan hot path.
fn read_slot(slots: &[u64], i: usize, version: Option<&Version>) -> u64 {
    let v = version.unwrap();
    let _ = v.row.get(0).expect("first column");
    slots[i]
}
