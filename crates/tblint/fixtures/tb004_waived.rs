// TB004 waived fixture: a justified waiver suppresses the finding; the
// justification text is carried into the diagnostic.
fn table(&self, table: TableId) -> &TableA {
    // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point
    &self.tables[table.0 as usize]
}
