// TB003 firing fixture: hash-ordered collections in an output path.
use std::collections::HashMap;

fn emit(cells: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (label, value) in cells {
        out.push_str(&format!("{label}: {value}\n"));
    }
    out
}
