// TB002 firing fixture, tindex flavor: closed-interval comparisons on
// event-list / endpoint-list entries. The timeline's invalidation events
// and the interval index's sorted end lists carry half-open `[start, end)`
// endpoints; comparing them with `<=` / `>=` re-admits the exact instant a
// version died.
fn replay_covers(event_end: SysTime, probe: SysTime) -> bool {
    event_end <= probe
}

fn stab_hits(date: AppDate, span_end: AppDate) -> bool {
    date >= span_end
}
