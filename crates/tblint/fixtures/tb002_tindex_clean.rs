// TB002 clean fixture, tindex flavor: the half-open discipline on
// event-list / endpoint-list entries — an invalidation at `end` means the
// version is already gone at `end`, so coverage and stabbing compare the
// end strictly.
fn replay_covers(event_end: SysTime, probe: SysTime) -> bool {
    event_end < probe
}

fn stab_hits(date: AppDate, span_end: AppDate) -> bool {
    date < span_end
}
