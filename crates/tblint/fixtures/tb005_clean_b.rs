// TB005 clean fixture (pairs with tb005_clean_a.rs).
impl BitemporalEngine for FixtureB {
    fn checkpoint(&mut self) {}
    fn commit(&mut self) {}
    fn scan(&self) {}
}
