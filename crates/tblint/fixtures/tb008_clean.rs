// TB008 clean fixture: the same blocking operations, but the guard is
// dead first — dropped explicitly or by scope exit.
fn flush_after_drop(&self) -> Result<()> {
    let mut reg = self.registry.lock().expect("registry poisoned");
    let file = reg.take_file();
    drop(reg);
    file.sync_all()?;
    Ok(())
}

fn nap_after_scope(&self) {
    {
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.mark_dirty();
    }
    std::thread::sleep(self.interval);
}
