// TB010 waived fixture: a deliberate bare unwrap with the justification
// stated in place (e.g. a single-threaded harness that wants the panic).
fn seq(&self) -> u64 {
    // tblint: allow(TB010) single-threaded harness; a poisoned lock here is unreachable and should abort loudly
    let st = self.state.lock().unwrap();
    st.seq
}
