//! Cluster crash recovery: per-shard WAL replay plus cross-shard
//! resolution of undecided prepares.
//!
//! Each shard recovers independently with [`bitempo_wal::recover`], which
//! applies every stamped commit and decided prepare in its valid WAL
//! prefix and hands back the *undecided* prepares (presumed aborted
//! locally). The cluster step then unions the commit decisions found in
//! every shard's prefix: a prepare whose global id carries a durable
//! commit decision on **any** shard was globally committed — the
//! coordinator only logs the first decision after every participant's
//! prepare is durable — so recovery finishes it here at its original
//! global timestamp. A prepare with no decision anywhere stays aborted,
//! the presumed-abort default.
//!
//! The convergence matrix (also DESIGN.md §13):
//!
//! | crash point                  | evidence on disk            | outcome |
//! |------------------------------|-----------------------------|---------|
//! | before any prepare durable   | nothing                     | abort   |
//! | some prepares durable        | prepares only, no decision  | abort   |
//! | all prepared, no decision    | prepares only               | abort   |
//! | ≥ 1 commit decision durable  | decision + sibling prepares | commit  |
//! | all decisions durable        | decisions                   | commit  |
//!
//! This is exact under the `Strict` and `Batched` durability modes, where
//! a logged decision implies every participant's prepare is durable.
//! Under `Async` a shard may lose its own prepare *after* a sibling
//! logged the decision; the transaction then recovers on the deciding
//! shards but not the lossy one, and the cluster converges only to that
//! shard's shorter durable prefix. The `sharding` experiment therefore
//! verifies recovery per shard against an uncrashed oracle at each
//! shard's own durable watermark, exactly like the single-engine
//! `recovery` experiment does.

use crate::cluster::Cluster;
use bitempo_core::{Error, Result, SysTime};
use bitempo_engine::api::TuningConfig;
use bitempo_engine::SystemKind;
use bitempo_histgen::apply_op;
use bitempo_txn::TxnManager;
use bitempo_wal::{recover, Recovered, TxnWal};
use std::collections::BTreeSet;

/// One shard's surviving durable state: its WAL image and the encoded
/// checkpoints available to start from (newest last, like the per-shard
/// recovery expects).
pub struct ShardInput {
    /// The shard's WAL bytes as found after the crash.
    pub wal: Vec<u8>,
    /// Encoded checkpoints for this shard (each covering a WAL prefix).
    pub checkpoints: Vec<Vec<u8>>,
}

/// What a cluster recovery produced.
pub struct ClusterRecovered {
    /// Per-shard recovery results, index = shard. Each engine already
    /// includes the cross-shard prepares this recovery decided to commit.
    pub shards: Vec<Recovered>,
    /// Pending prepares committed here from sibling decisions, as
    /// `(shard, gts)` pairs.
    pub committed_pending: Vec<(usize, u64)>,
    /// Pending prepares left aborted (no decision anywhere), as
    /// `(shard, gts)` pairs.
    pub presumed_aborted: Vec<(usize, u64)>,
    /// Sibling-decided prepares that failed to replay, as
    /// `(shard, gts, error)` triples. The shard's engine may hold partial
    /// uncommitted state from the failed apply (there is no rollback), so
    /// the shard cannot serve until it is restored from a checkpoint —
    /// but its siblings recovered normally, which is the contract:
    /// one shard's problems never block the rest of the cluster.
    pub degraded: Vec<(usize, u64, String)>,
}

impl ClusterRecovered {
    /// The newest globally consistent timestamp across the recovered
    /// shards: the *minimum* shard clock. Every commit at or below it
    /// landed on every shard it touched; above it, an `Async` shard may
    /// have lost records its siblings kept.
    pub fn consistent_prefix(&self) -> SysTime {
        self.shards
            .iter()
            .map(|r| r.engine.now())
            .min()
            .unwrap_or(SysTime::ZERO)
    }

    /// Rebuilds a live [`Cluster`] over the recovered shards, pairing
    /// shard `i` with `wals[i]` (fresh logs — the old images were
    /// consumed by recovery; checkpoint each shard first if you want the
    /// new logs to start from a compact base). Refuses a degraded shard:
    /// its engine may hold half-applied state that must never serve.
    pub fn into_cluster(self, wals: Vec<Option<TxnWal>>) -> Result<Cluster> {
        if let Some((si, gts, why)) = self.degraded.first() {
            return Err(Error::Invalid(format!(
                "shard {si} is degraded (decided prepare {gts} failed to replay: {why}); \
                 restore it from a checkpoint before serving"
            )));
        }
        let mut mgrs = Vec::with_capacity(self.shards.len());
        for (rec, wal) in self.shards.into_iter().zip(wals) {
            mgrs.push(TxnManager::new(rec.engine, rec.ids, wal)?);
        }
        Cluster::from_managers(mgrs)
    }
}

/// Recovers every shard of a cluster from its durable remains and resolves
/// cross-shard prepares by the presumed-abort rule described in the module
/// docs. Shards are independent: one shard's torn tail, rejected
/// checkpoint, or failed replay of a decided prepare (reported in
/// [`ClusterRecovered::degraded`]) never blocks its siblings, and only a
/// shard with *no* decodable checkpoint at all fails the recovery.
pub fn recover_cluster(
    kind: SystemKind,
    inputs: &[ShardInput],
    tuning: &TuningConfig,
) -> Result<ClusterRecovered> {
    let mut shards = Vec::with_capacity(inputs.len());
    for input in inputs {
        shards.push(recover(kind, &input.wal, &input.checkpoints, tuning)?);
    }
    // The union of durable commit decisions across the cluster: the
    // evidence that a prepare anywhere was part of a globally committed
    // transaction.
    let decided: BTreeSet<u64> = shards
        .iter()
        .flat_map(|r| r.decided_commits.iter().copied())
        .collect();
    let mut committed_pending = Vec::new();
    let mut presumed_aborted = Vec::new();
    let mut degraded: Vec<(usize, u64, String)> = Vec::new();
    for (si, rec) in shards.iter_mut().enumerate() {
        let mut broken = false;
        for p in std::mem::take(&mut rec.pending) {
            if !decided.contains(&p.gid) {
                presumed_aborted.push((si, p.gts));
                continue;
            }
            rec.report.presumed_aborted -= 1;
            if broken {
                // An earlier decided prepare half-applied on this shard:
                // nothing later can safely land on the partial state.
                degraded.push((
                    si,
                    p.gts,
                    "skipped: an earlier decided prepare failed to replay on this shard".into(),
                ));
                continue;
            }
            // Land it exactly where the live commit would have: clock
            // to gts − 1 so the apply stamps at gts.
            rec.engine.advance_clock(SysTime(p.gts.saturating_sub(1)));
            let mut failed = None;
            for op in &p.txn.ops {
                if let Err(e) = apply_op(rec.engine.as_mut(), &rec.ids, op) {
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                // A decided prepare that cannot apply leaves this shard
                // with partial pending state and no rollback path. Mark
                // the shard degraded and keep going — one shard's
                // problems never block its siblings' recovery.
                rec.report
                    .unreplayable
                    .get_or_insert_with(|| format!("decided prepare {} failed to apply: {e}", p.gts));
                degraded.push((si, p.gts, e.to_string()));
                broken = true;
                continue;
            }
            let ts = rec.engine.commit();
            debug_assert_eq!(ts, SysTime(p.gts), "recovered commit missed its slot");
            rec.report.replayed += 1;
            rec.report.commits += 1;
            committed_pending.push((si, p.gts));
        }
    }
    Ok(ClusterRecovered {
        shards,
        committed_pending,
        presumed_aborted,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::partition_checkpoint;
    use bitempo_core::{Key, Value};
    use bitempo_engine::build_engine;
    use bitempo_engine::testutil::{bitemp_table, simple_row};
    use bitempo_storage::DurabilityMode;
    use bitempo_wal::{canonical_state, Checkpoint, SharedBuf};
    use bitempo_workloads::sharding::shard_of;

    /// Byte offset just past the first `n_records` records — a clean
    /// truncation point for crash simulation.
    fn offset_after(bytes: &[u8], n_records: usize) -> usize {
        use bitempo_storage::wal::{scan, BODY_OVERHEAD, FRAME_OVERHEAD, WAL_HEADER_LEN};
        let scan = scan(bytes);
        assert!(
            scan.records.len() >= n_records,
            "fewer records than expected"
        );
        WAL_HEADER_LEN
            + scan.records[..n_records]
                .iter()
                .map(|r| FRAME_OVERHEAD + BODY_OVERHEAD + r.payload.len())
                .sum::<usize>()
    }

    fn base_checkpoint(n: i64) -> Checkpoint {
        let mut engine = build_engine(SystemKind::A);
        let t = engine.create_table(bitemp_table("t")).expect("create");
        for k in 0..n {
            engine
                .insert(t, simple_row(k, 10 * k), None)
                .expect("insert");
        }
        engine.commit();
        Checkpoint::capture(engine.as_mut(), &[t], 0).expect("capture")
    }

    /// Builds a 2-shard cluster, runs one single-shard and one cross-shard
    /// commit, closes cleanly, and returns (wal images, per-shard base
    /// checkpoints, expected canonical states, split keys).
    #[allow(clippy::type_complexity)]
    fn run_and_close() -> (Vec<Vec<u8>>, Vec<Vec<u8>>, Vec<Vec<String>>, (i64, i64)) {
        let base = base_checkpoint(8);
        let parts = partition_checkpoint(&base, 2);
        let bufs: Vec<SharedBuf> = (0..2).map(|_| SharedBuf::new()).collect();
        let wals = bufs
            .iter()
            .map(|b| {
                Some(
                    TxnWal::create(Box::new(b.clone()), DurabilityMode::Strict)
                        .expect("wal create"),
                )
            })
            .collect();
        let cluster = Cluster::from_checkpoint(SystemKind::A, &base, wals).expect("cluster");
        let t = cluster.table_ids()[0];
        let (a, b) = {
            let mut found = (0, 0);
            for k in 1..8 {
                if shard_of(&Key::int(k), 2) != shard_of(&Key::int(0), 2) {
                    found = (0, k);
                    break;
                }
            }
            assert_ne!(found.1, 0, "need keys on both shards");
            found
        };
        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(a), &[(1, Value::Int(100))], None)
            .expect("update");
        txn.commit().expect("single-shard commit");
        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(a), &[(1, Value::Int(200))], None)
            .expect("update");
        txn.update(t, &Key::int(b), &[(1, Value::Int(300))], None)
            .expect("update");
        txn.commit().expect("cross-shard commit");

        let mut states = Vec::new();
        for closed in cluster.close().expect("close") {
            let (engine, ids, _seq) = closed;
            states.push(canonical_state(engine.as_ref(), &ids).expect("state"));
        }
        (
            bufs.iter().map(|b| b.snapshot()).collect(),
            parts.iter().map(|p| p.encode()).collect(),
            states,
            (a, b),
        )
    }

    #[test]
    fn clean_shutdown_recovers_byte_identical() {
        let (wals, ckpts, expected, _) = run_and_close();
        let inputs: Vec<ShardInput> = wals
            .into_iter()
            .zip(ckpts)
            .map(|(wal, c)| ShardInput {
                wal,
                checkpoints: vec![c],
            })
            .collect();
        let rec = recover_cluster(SystemKind::A, &inputs, &TuningConfig::none()).expect("recover");
        assert!(rec.committed_pending.is_empty());
        assert!(rec.presumed_aborted.is_empty());
        for (r, want) in rec.shards.iter().zip(&expected) {
            let got = canonical_state(r.engine.as_ref(), &r.ids).expect("state");
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn crash_after_decision_commits_the_sibling_prepare() {
        let (wals, ckpts, expected, _) = run_and_close();
        // Truncate shard 1's log right after its *prepare* record (drop its
        // decision): the cross-shard commit is undecided locally, but shard
        // 0's durable decision must finish it.
        let n = bitempo_storage::wal::scan(&wals[1]).records.len();
        assert!(n >= 2, "prepare + decision expected");
        let cut = offset_after(&wals[1], n - 1);
        let truncated = wals[1][..cut].to_vec();
        let inputs = vec![
            ShardInput {
                wal: wals[0].clone(),
                checkpoints: vec![ckpts[0].clone()],
            },
            ShardInput {
                wal: truncated,
                checkpoints: vec![ckpts[1].clone()],
            },
        ];
        let rec = recover_cluster(SystemKind::A, &inputs, &TuningConfig::none()).expect("recover");
        assert_eq!(rec.committed_pending.len(), 1, "shard 1's prepare decided");
        assert_eq!(rec.committed_pending[0].0, 1);
        assert!(rec.presumed_aborted.is_empty());
        for (r, want) in rec.shards.iter().zip(&expected) {
            let got = canonical_state(r.engine.as_ref(), &r.ids).expect("state");
            assert_eq!(&got, want);
        }
        assert_eq!(rec.consistent_prefix(), rec.shards[0].engine.now());
    }

    #[test]
    fn replay_failure_degrades_the_shard_without_blocking_siblings() {
        let base = base_checkpoint(8);
        let parts = partition_checkpoint(&base, 2);
        let gid = 50u64;
        let k0 = (0..8)
            .find(|k| shard_of(&Key::int(*k), 2) == 0)
            .expect("a key on shard 0");
        let mk_wal = |payloads: &[Vec<u8>]| -> Vec<u8> {
            let buf = SharedBuf::new();
            let mut w =
                TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).expect("wal create");
            for p in payloads {
                w.submit(p).expect("submit");
            }
            w.close().expect("close");
            buf.snapshot()
        };
        let good = bitempo_histgen::Transaction {
            scenarios: Vec::new(),
            ops: vec![bitempo_histgen::Op::Update {
                table: 0,
                key: Key::int(k0),
                updates: vec![(1, Value::Int(7))],
                portion: None,
            }],
        };
        // Shard 1's prepared half overwrites the application period of a key
        // that never existed in its partition. Unlike a plain update (a no-op
        // on a missing key), the overwrite raises `KeyNotFound` at the engine,
        // so the sibling-decided replay genuinely cannot apply it.
        let bad = bitempo_histgen::Transaction {
            scenarios: Vec::new(),
            ops: vec![bitempo_histgen::Op::OverwriteApp {
                table: 0,
                key: Key::int(424_242),
                period: bitempo_core::AppPeriod::ALL,
            }],
        };
        let wal0 = mk_wal(&[
            bitempo_wal::encode_prepare(gid, gid, &good).expect("encode"),
            bitempo_wal::encode_decision(gid, gid, true),
        ]);
        let wal1 = mk_wal(&[bitempo_wal::encode_prepare(gid, gid, &bad).expect("encode")]);
        let inputs = vec![
            ShardInput {
                wal: wal0,
                checkpoints: vec![parts[0].encode()],
            },
            ShardInput {
                wal: wal1,
                checkpoints: vec![parts[1].encode()],
            },
        ];
        let rec = recover_cluster(SystemKind::A, &inputs, &TuningConfig::none())
            .expect("one shard's replay failure must not fail the whole cluster recovery");
        // Shard 0 recovered normally from its own prepare + decision...
        assert!(rec.shards[0].report.unreplayable.is_none());
        assert_eq!(rec.shards[0].engine.now(), SysTime(gid));
        // ...while shard 1 is marked degraded, not silently dropped.
        assert_eq!(rec.committed_pending, Vec::new());
        assert!(rec.presumed_aborted.is_empty());
        assert_eq!(rec.degraded.len(), 1);
        assert_eq!((rec.degraded[0].0, rec.degraded[0].1), (1, gid));
        assert!(rec.shards[1].report.unreplayable.is_some());
        // A degraded shard must never go back into service as-is.
        let err = rec
            .into_cluster(vec![None, None])
            .map(|_| ())
            .expect_err("degraded shard must not serve");
        assert!(matches!(err, Error::Invalid(_)), "{err:?}");
    }

    #[test]
    fn crash_at_prepare_presumes_abort_everywhere() {
        let (wals, ckpts, expected, (a, _)) = run_and_close();
        // Truncate *both* shards before their decision records: the
        // cross-shard transaction vanishes atomically — both shards roll
        // back to the single-shard commit's state.
        let mut inputs = Vec::new();
        for (wal, c) in wals.iter().zip(&ckpts) {
            let n = bitempo_storage::wal::scan(wal).records.len();
            assert!(n >= 1, "records expected");
            let cut = offset_after(wal, n - 1);
            inputs.push(ShardInput {
                wal: wal[..cut].to_vec(),
                checkpoints: vec![c.clone()],
            });
        }
        let rec = recover_cluster(SystemKind::A, &inputs, &TuningConfig::none()).expect("recover");
        assert!(rec.committed_pending.is_empty());
        // The shard that hosted key `a` saw a prepare; the truncation cut
        // the decision on both shards, so every surviving prepare aborts.
        assert!(!rec.presumed_aborted.is_empty());
        // Neither shard shows the cross-shard values.
        let owner = shard_of(&Key::int(a), 2);
        let got = canonical_state(rec.shards[owner].engine.as_ref(), &rec.shards[owner].ids)
            .expect("state");
        assert_ne!(
            got, expected[owner],
            "cross-shard commit must not survive an undecided crash"
        );
        assert!(
            got.iter().any(|line| line.contains("100")),
            "the earlier single-shard commit survives: {got:?}"
        );
        assert!(
            !got.iter().any(|line| line.contains("200")),
            "no trace of the aborted cross-shard write"
        );
    }
}
