//! The sharded cluster: a hash-partitioned set of independent serving
//! layers behind one router and one commit-timestamp oracle.
//!
//! Each shard is a full PR 8 stack — its own engine, [`TxnManager`], and
//! WAL with its own durability mode. What makes the set a *cluster* rather
//! than N databases is the time axis: every commit lands at a timestamp
//! drawn from the shared [`CommitOracle`], and the engines' `advance_clock`
//! seam forces the shard's commit to stamp its versions with exactly that
//! timestamp. Shard-local system time and global time are therefore the
//! same axis, and a cross-shard snapshot is simply every shard read
//! `AS OF` one oracle watermark — byte-identical to the state a single
//! engine would hold after the same serial history.
//!
//! **Write protocol.** A [`ClusterTxn`] buffers DML locally, routing each
//! statement by the stable key hash ([`bitempo_workloads::sharding`]). At
//! commit it takes the *commit gate* of every participating shard in
//! ascending shard order (two committers with a key in common always share
//! a shard, hence a gate), validates first-committer-wins against the
//! cluster commit log, draws the global timestamp, and then:
//!
//! * **one participant** — plain [`Transaction::commit_at`]: apply, log a
//!   stamped commit record, publish. No coordination needed; a
//!   single-shard cluster degenerates to PR 8 plus one atomic increment.
//! * **several participants** — two-phase commit over the existing WALs.
//!   Phase one logs a *prepare* record per shard (full op payload, nothing
//!   applied) and waits until every prepare is durable; phase two applies
//!   and logs the *decision* on each shard. An undecided prepare is
//!   presumed aborted by recovery, so a crash anywhere before the first
//!   decision record loses the transaction cleanly, and a crash after it
//!   lets [`crate::recover_cluster`] finish the remaining shards from the
//!   decision evidence.
//!
//! **Lock hierarchy** (outermost first): shard gates (ascending index) →
//! cluster state → oracle. The per-shard `TxnManager` locks nest strictly
//! inside a gate. Durability waits run outside everything except the gates
//! held across the prepare barrier, which is the point of 2PC — and the
//! one deliberate blocking-under-lock site in the workspace.

use crate::oracle::CommitOracle;
use bitempo_core::{AppPeriod, Error, Key, Result, Row, SysTime, TableDef, TableId, Value};
use bitempo_engine::api::{
    AppSpec, BitemporalEngine, ColRange, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use bitempo_engine::{build_engine, ScanMetrics, SystemKind};
use bitempo_txn::{CommitWait, PreparedTxn, Snapshot, TxnCounters, TxnManager};
use bitempo_wal::{Checkpoint, TxnWal};
use bitempo_workloads::sharding::shard_of;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One shard: a serving layer plus its commit gate. The gate serializes
/// commits *to this shard only* — it is held from validation through
/// publish (and across the 2PC prepare barrier), so a shard's WAL never
/// interleaves one transaction's prepare with another's records.
struct Shard {
    mgr: TxnManager,
    gate: Mutex<()>,
}

/// A cluster-level write-set entry, the unit of cross-shard
/// first-committer-wins validation (same shape as the per-shard entry:
/// disjoint `FOR PORTION OF` writes to one key do not conflict).
#[derive(Debug, Clone)]
struct CWrite {
    /// Table index in load order.
    table: u8,
    /// Primary key touched.
    key: Key,
    /// Application-period range touched.
    app: AppPeriod,
}

/// What one committed cluster transaction wrote, kept for validating later
/// committers whose read watermarks predate it.
struct ClusterCommit {
    gts: u64,
    writes: Vec<CWrite>,
}

/// Cluster state under its own mutex: the global commit log for
/// first-committer-wins plus the registry of active read pins (the floor
/// below which log entries can be pruned).
struct ClusterState {
    /// Ascending by `gts` — maintained by sorted insertion in
    /// [`Cluster::publish_commit`], because *publish* order inverts when
    /// disjoint-shard commits race (a later timestamp can publish first).
    commit_log: Vec<ClusterCommit>,
    /// `read watermark -> count` of open [`ClusterTxn`]s pinned there.
    pins: BTreeMap<u64, usize>,
}

/// Monotonic counters for the `sharding` experiment's series.
#[derive(Debug, Default)]
pub struct ClusterCounters {
    /// Cluster transactions begun.
    pub begun: AtomicU64,
    /// Cluster transactions committed (including read-only).
    pub committed: AtomicU64,
    /// Commits that routed to exactly one shard (the fast path).
    pub single_shard: AtomicU64,
    /// Commits that ran two-phase commit across several shards.
    pub cross_shard: AtomicU64,
    /// Read-only commits (no participants, no timestamp drawn).
    pub read_only: AtomicU64,
    /// Transactions aborted by cluster-level first-committer-wins.
    pub conflicts: AtomicU64,
}

/// A hash-sharded cluster of serving layers. See the module docs for the
/// protocol; see [`Cluster::from_checkpoint`] for the canonical way in.
pub struct Cluster {
    shards: Vec<Shard>,
    oracle: CommitOracle,
    cstate: Mutex<ClusterState>,
    /// Table ids in load order — identical on every shard (asserted at
    /// construction), which is what lets one `TableId` address all shards.
    ids: Vec<TableId>,
    /// Immutable table metadata, cached like the per-shard managers do so
    /// routing never takes a shard lock.
    defs: Vec<TableDef>,
    counters: ClusterCounters,
}

impl Cluster {
    /// Builds a cluster over pre-built serving layers (one per shard, all
    /// over engines of the same kind holding *disjoint* key partitions of
    /// the same tables). The oracle starts from the newest shard clock, so
    /// the first issued timestamp is newer than anything any shard holds.
    pub fn from_managers(shards: Vec<TxnManager>) -> Result<Cluster> {
        let first = shards
            .first()
            .ok_or_else(|| Error::Invalid("a cluster needs at least one shard".into()))?;
        let ids = first.table_ids().to_vec();
        for (i, s) in shards.iter().enumerate() {
            if s.table_ids() != ids {
                return Err(Error::Invalid(format!(
                    "shard {i} disagrees with shard 0 on table layout"
                )));
            }
        }
        let defs: Vec<TableDef> = {
            let snap = first.snapshot_at(SysTime::ZERO)?;
            let view = snap.view();
            ids.iter().map(|&id| view.table_def(id).clone()).collect()
        };
        let start = shards
            .iter()
            .map(|s| s.now())
            .max()
            .unwrap_or(SysTime::ZERO);
        Ok(Cluster {
            shards: shards
                .into_iter()
                .map(|mgr| Shard {
                    mgr,
                    gate: Mutex::new(()),
                })
                .collect(),
            oracle: CommitOracle::new(start),
            cstate: Mutex::new(ClusterState {
                commit_log: Vec::new(),
                pins: BTreeMap::new(),
            }),
            ids,
            defs,
            counters: ClusterCounters::default(),
        })
    }

    /// Builds a cluster of `wals.len()` shards from one base checkpoint:
    /// the key space is partitioned by the stable hash, each shard's engine
    /// is restored from its partition, and `wals[i]` becomes shard `i`'s
    /// log (with its own durability mode; `None` runs the shard without
    /// durability). Keep the per-shard partitions of the base — from
    /// [`partition_checkpoint`] — if you intend to run recovery later.
    pub fn from_checkpoint(
        kind: SystemKind,
        base: &Checkpoint,
        wals: Vec<Option<TxnWal>>,
    ) -> Result<Cluster> {
        if wals.is_empty() {
            return Err(Error::Invalid("a cluster needs at least one shard".into()));
        }
        let parts = partition_checkpoint(base, wals.len());
        let mut mgrs = Vec::with_capacity(wals.len());
        for (part, wal) in parts.iter().zip(wals) {
            let mut engine = build_engine(kind);
            let ids = part.restore_into(engine.as_mut())?;
            mgrs.push(TxnManager::new(engine, ids, wal)?);
        }
        Cluster::from_managers(mgrs)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Table ids in load order (valid on every shard).
    pub fn table_ids(&self) -> &[TableId] {
        &self.ids
    }

    /// The cluster counters.
    pub fn counters(&self) -> &ClusterCounters {
        &self.counters
    }

    /// Shard `i`'s serving-layer counters (commits, conflicts, pins).
    pub fn shard_counters(&self, i: usize) -> &TxnCounters {
        self.shards[i].mgr.counters()
    }

    /// Shard `i`'s commit clock — at most the oracle watermark, exactly
    /// the last global timestamp that landed on this shard.
    pub fn shard_now(&self, i: usize) -> SysTime {
        self.shards[i].mgr.now()
    }

    /// Snapshot pins currently registered across all shard managers plus
    /// the cluster's own read pins. Zero once every transaction has
    /// resolved — the balance the isolation suite asserts.
    pub fn active_pins(&self) -> usize {
        let shard_pins: usize = self.shards.iter().map(|s| s.mgr.active_pins()).sum();
        let cs = self.cstate.lock().expect("cluster state poisoned");
        shard_pins + cs.pins.values().sum::<usize>()
    }

    /// The oracle's read watermark: the newest globally consistent
    /// timestamp.
    pub fn read_ts(&self) -> SysTime {
        self.oracle.read_ts()
    }

    /// Captures a durability checkpoint of shard `i` (labelled with the
    /// shard WAL's covered sequence number, exactly as a standalone
    /// manager's would be).
    pub fn checkpoint_shard(&self, i: usize) -> Result<Checkpoint> {
        self.shards[i].mgr.checkpoint()
    }

    /// Shuts the cluster down shard by shard: closes each WAL and returns
    /// every shard's engine, table ids, and durable watermark.
    #[allow(clippy::type_complexity)]
    pub fn close(self) -> Result<Vec<(Box<dyn BitemporalEngine>, Vec<TableId>, u64)>> {
        self.shards.into_iter().map(|s| s.mgr.close()).collect()
    }

    /// Begins a cluster transaction pinned at the current read watermark.
    pub fn begin(&self) -> Result<ClusterTxn<'_>> {
        let read_g = {
            // Register the pin and read the watermark under the cluster
            // lock, so no concurrent committer can prune commit-log
            // entries newer than our watermark in between.
            let mut cs = self.cstate.lock().expect("cluster state poisoned");
            let g = self.oracle.read_ts().0;
            *cs.pins.entry(g).or_insert(0) += 1;
            g
        };
        self.counters.begun.fetch_add(1, Ordering::Relaxed);
        Ok(ClusterTxn {
            cluster: self,
            read_g,
            per_shard: (0..self.shards.len()).map(|_| Vec::new()).collect(),
            writes: Vec::new(),
            unpinned: false,
        })
    }

    /// Opens a read-only snapshot at the current watermark, without a
    /// transaction. The timestamp is captured once; [`ClusterSnapshot::read`]
    /// may be called repeatedly and always sees the same consistent cut.
    pub fn snapshot(&self) -> ClusterSnapshot<'_> {
        ClusterSnapshot {
            cluster: self,
            at: self.oracle.read_ts(),
        }
    }

    /// Opens per-shard read guards pinned at `at` (which must be at or
    /// below the watermark for a consistent cut — [`Cluster::snapshot`]
    /// and [`ClusterTxn::read`] both guarantee that).
    fn read_at(&self, at: SysTime) -> Result<ClusterRead<'_>> {
        let mut snaps = Vec::with_capacity(self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let snap = s.mgr.snapshot_at(at)?;
            // A poisoned shard may be missing a decided cross-shard
            // commit its healthy siblings already serve, so any cut that
            // includes it can be non-atomic at watermarks past the
            // failure. Fail-stop until recovery rebuilds the shard.
            if snap.degraded() {
                return Err(Error::Internal(format!(
                    "shard {i} is poisoned: cluster snapshots are unavailable until recovery"
                )));
            }
            snaps.push(snap);
        }
        Ok(ClusterRead { snaps, at })
    }

    fn def_index(&self, table: TableId) -> Result<usize> {
        self.ids
            .iter()
            .position(|&id| id == table)
            .ok_or_else(|| Error::Invalid(format!("table {table:?} is not managed here")))
    }

    fn unpin(&self, g: u64) {
        let mut cs = self.cstate.lock().expect("cluster state poisoned");
        if let Some(n) = cs.pins.get_mut(&g) {
            *n -= 1;
            if *n == 0 {
                cs.pins.remove(&g);
            }
        }
    }

    /// Inserts the commit record in `gts` order, advances the oracle, and
    /// prunes entries no active pin can still conflict with. Called with
    /// the participating gates held, so any later committer sharing a
    /// shard observes the entry.
    fn publish_commit(&self, gts: u64, writes: Vec<CWrite>) {
        let mut cs = self.cstate.lock().expect("cluster state poisoned");
        // Sorted insertion, not a push: publishes of disjoint-shard
        // commits can arrive out of timestamp order, and the validation
        // scan's early exit relies on the log being ascending by `gts`.
        let at = cs.commit_log.partition_point(|r| r.gts < gts);
        cs.commit_log.insert(at, ClusterCommit { gts, writes });
        // Advance the oracle *while still holding the cluster state* (the
        // documented lock hierarchy runs cluster state → oracle): begin()
        // reads the watermark under this same lock, so a concurrent
        // transaction either pins before this publish — its pin is
        // registered and floors the prune below — or after it, at a
        // watermark past everything pruned here.
        self.oracle.publish(gts);
        // The pruning floor falls back to the *watermark*, never to `gts`
        // itself: with older commits still in flight the watermark (and
        // any future pin) can sit well below `gts`, and a transaction
        // pinned there must still find this entry to validate against.
        let floor = cs
            .pins
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.oracle.read_ts().0);
        if cs.commit_log.first().is_some_and(|r| r.gts <= floor) {
            cs.commit_log.retain(|r| r.gts > floor);
        }
    }
}

/// Partitions a base checkpoint's versions by the stable key hash into one
/// checkpoint per shard (all carrying the base's clock, relabelled to WAL
/// sequence 0 — they pair with *fresh* per-shard WALs). The partitions are
/// disjoint and their union is the base, which is what makes the sharded
/// cluster byte-equivalent to a single engine over the same history.
pub fn partition_checkpoint(base: &Checkpoint, shards: usize) -> Vec<Checkpoint> {
    let mut out: Vec<Checkpoint> = (0..shards)
        .map(|_| Checkpoint {
            seq: 0,
            now: base.now,
            tables: base
                .tables
                .iter()
                .map(|(def, _)| (def.clone(), Vec::new()))
                .collect(),
        })
        .collect();
    for (ti, (def, versions)) in base.tables.iter().enumerate() {
        for v in versions {
            let key = Key::from_row(&v.row, &def.key);
            out[shard_of(&key, shards)].tables[ti].1.push(v.clone());
        }
    }
    out
}

/// A buffered cluster DML statement, replayed into the owning shard's
/// transaction at commit time.
enum BufOp {
    Insert {
        t: usize,
        row: Row,
        app: Option<AppPeriod>,
    },
    Update {
        t: usize,
        key: Key,
        updates: Vec<(usize, Value)>,
        portion: Option<AppPeriod>,
    },
    Delete {
        t: usize,
        key: Key,
        portion: Option<AppPeriod>,
    },
    Overwrite {
        t: usize,
        key: Key,
        period: AppPeriod,
    },
}

/// An open cluster transaction: a read watermark plus DML buffered per
/// owning shard. Dropping it without committing is a rollback.
pub struct ClusterTxn<'a> {
    cluster: &'a Cluster,
    /// The read watermark this transaction's snapshot and validation pin.
    read_g: u64,
    /// Buffered ops, routed; index = shard.
    per_shard: Vec<Vec<BufOp>>,
    /// The cluster-level write set.
    writes: Vec<CWrite>,
    unpinned: bool,
}

impl<'a> ClusterTxn<'a> {
    /// The pinned read watermark.
    pub fn pin(&self) -> SysTime {
        SysTime(self.read_g)
    }

    /// Opens the transaction's consistent snapshot: every shard `AS OF`
    /// the pinned watermark. Holds every shard's shared lock for the
    /// guard's lifetime — obtain per query burst and drop promptly.
    pub fn read(&self) -> Result<ClusterRead<'a>> {
        self.cluster.read_at(SysTime(self.read_g))
    }

    fn route(&mut self, table: TableId) -> Result<(usize, &TableDef)> {
        let idx = self.cluster.def_index(table)?;
        Ok((idx, &self.cluster.defs[idx]))
    }

    /// Buffers an insert of `row` valid for `app`, routed to the shard
    /// owning the row's primary key.
    pub fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let (idx, def) = self.route(table)?;
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        let key = Key::from_row(&row, &def.key);
        let shard = shard_of(&key, self.cluster.shards.len());
        self.writes.push(CWrite {
            table: idx as u8,
            key,
            app: app.unwrap_or(AppPeriod::ALL),
        });
        self.per_shard[shard].push(BufOp::Insert { t: idx, row, app });
        Ok(())
    }

    /// Buffers a sequenced update of `key` for `portion` on its owning
    /// shard.
    pub fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<()> {
        let (idx, _) = self.route(table)?;
        let shard = shard_of(key, self.cluster.shards.len());
        self.writes.push(CWrite {
            table: idx as u8,
            key: key.clone(),
            app: portion.unwrap_or(AppPeriod::ALL),
        });
        self.per_shard[shard].push(BufOp::Update {
            t: idx,
            key: key.clone(),
            updates: updates.to_vec(),
            portion,
        });
        Ok(())
    }

    /// Buffers a sequenced delete of `key` for `portion` on its owning
    /// shard.
    pub fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<()> {
        let (idx, _) = self.route(table)?;
        let shard = shard_of(key, self.cluster.shards.len());
        self.writes.push(CWrite {
            table: idx as u8,
            key: key.clone(),
            app: portion.unwrap_or(AppPeriod::ALL),
        });
        self.per_shard[shard].push(BufOp::Delete {
            t: idx,
            key: key.clone(),
            portion,
        });
        Ok(())
    }

    /// Buffers an application-period overwrite of `key` on its owning
    /// shard (conservatively conflicting with any write to the key, like
    /// the per-shard buffering does).
    pub fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<()> {
        let (idx, _) = self.route(table)?;
        let shard = shard_of(key, self.cluster.shards.len());
        self.writes.push(CWrite {
            table: idx as u8,
            key: key.clone(),
            app: AppPeriod::ALL,
        });
        self.per_shard[shard].push(BufOp::Overwrite {
            t: idx,
            key: key.clone(),
            period,
        });
        Ok(())
    }

    /// Discards the buffered writes and releases the read pin.
    pub fn rollback(mut self) {
        self.per_shard.clear();
        self.writes.clear();
        self.release_pin();
    }

    fn release_pin(&mut self) {
        if !self.unpinned {
            self.unpinned = true;
            self.cluster.unpin(self.read_g);
        }
    }

    /// Commits the buffered writes at one oracle timestamp, waiting for
    /// every participating shard's durability contract before returning.
    /// Returns the global commit timestamp (the read pin for a read-only
    /// transaction, which draws no timestamp at all).
    ///
    /// On [`Error::Conflict`] nothing was logged or applied anywhere;
    /// re-run against a fresh transaction. Other errors follow the
    /// per-shard contracts: validation and preflight failures abort the
    /// whole transaction cleanly (any prepares already logged are decided
    /// *abort*), while a failure after the first commit decision poisons
    /// the failing shard fail-stop and reports `Internal` — the
    /// transaction is then globally committed, the poisoned shard catches
    /// up at recovery.
    pub fn commit(mut self) -> Result<SysTime> {
        let ops = std::mem::take(&mut self.per_shard);
        let writes = std::mem::take(&mut self.writes);
        let cluster = self.cluster;
        let participants: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_empty())
            .map(|(i, _)| i)
            .collect();
        if participants.is_empty() {
            cluster.counters.read_only.fetch_add(1, Ordering::Relaxed);
            cluster.counters.committed.fetch_add(1, Ordering::Relaxed);
            let g = self.read_g;
            self.release_pin();
            return Ok(SysTime(g));
        }

        // Commit gates, ascending shard index (the workspace lock order).
        // Conflicting committers share a key, hence a shard, hence a gate.
        let gates: Vec<_> = participants
            .iter()
            .map(|&i| cluster.shards[i].gate.lock().expect("shard gate poisoned"))
            .collect();

        // Cluster-level first-committer-wins, then draw the timestamp.
        // Validated under the gates: any conflicting commit either already
        // published its record (we see it here) or is queued behind a gate
        // we hold (it will see ours). The log is kept ascending by `gts`
        // (sorted insertion in publish_commit), so the reverse scan may
        // stop at the first record at or below our pin.
        let gts = {
            let cs = cluster.cstate.lock().expect("cluster state poisoned");
            for rec in cs.commit_log.iter().rev() {
                if rec.gts <= self.read_g {
                    break;
                }
                for theirs in &rec.writes {
                    for ours in &writes {
                        if theirs.table == ours.table
                            && theirs.key == ours.key
                            && theirs.app.overlaps(&ours.app)
                        {
                            cluster.counters.conflicts.fetch_add(1, Ordering::Relaxed);
                            return Err(Error::Conflict(format!(
                                "table {} key {} app {:?}: written by the cluster \
                                 transaction committed at {} after this pin {}",
                                theirs.table, theirs.key, theirs.app, rec.gts, self.read_g
                            )));
                        }
                    }
                }
            }
            cluster.oracle.begin_commit()
        };

        match run_on_shards(cluster, &participants, ops, gts) {
            Ok(waits) => {
                cluster.publish_commit(gts, writes);
                self.release_pin();
                cluster.counters.committed.fetch_add(1, Ordering::Relaxed);
                if participants.len() == 1 {
                    cluster
                        .counters
                        .single_shard
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    cluster.counters.cross_shard.fetch_add(1, Ordering::Relaxed);
                }
                // Durability belongs outside every lock: one shard's fsync
                // must never serialize another shard's committers.
                drop(gates);
                for w in waits {
                    w.wait()?;
                }
                Ok(SysTime(gts))
            }
            Err((e, decided_waits)) => match decided_waits {
                Some(waits) => {
                    // At least one shard logged a commit decision: the
                    // transaction *is* committed globally (recovery
                    // finishes the stragglers), so the record and the
                    // watermark must reflect it even though we report the
                    // shard failure to the caller.
                    cluster.publish_commit(gts, writes);
                    self.release_pin();
                    drop(gates);
                    // Honor the committed shards' durability waits exactly
                    // as the success path does: "decided" must mean
                    // *durably* decided before this returns, or a crash
                    // right after could lose every decision record while
                    // readers had already observed the commit. A wait
                    // failure poisons its shard fail-stop on its own; the
                    // error below already tells the caller recovery is
                    // needed.
                    for w in waits {
                        let _ = w.wait();
                    }
                    Err(e)
                }
                None => {
                    cluster.oracle.abort(gts);
                    self.release_pin();
                    drop(gates);
                    Err(e)
                }
            },
        }
    }
}

impl Drop for ClusterTxn<'_> {
    fn drop(&mut self) {
        self.release_pin();
    }
}

/// Replays the routed ops onto the participating shards and lands the
/// commit at `gts`: directly for one participant, via two-phase commit for
/// several. On error the second slot says whether a commit decision was
/// already logged somewhere: `Some(waits)` means the transaction stands
/// globally and carries the committed shards' durability waits, which the
/// caller must still honor; `None` means nothing decided — globally an
/// abort.
fn run_on_shards<'a>(
    cluster: &'a Cluster,
    participants: &[usize],
    mut ops: Vec<Vec<BufOp>>,
    gts: u64,
) -> std::result::Result<Vec<CommitWait<'a>>, (Error, Option<Vec<CommitWait<'a>>>)> {
    // Buffer each shard's ops into a shard transaction. Failures here —
    // poisoned shard, arity or period validation — leave nothing applied
    // and nothing logged.
    let mut txns = Vec::with_capacity(participants.len());
    for &i in participants {
        let mgr = &cluster.shards[i].mgr;
        let ids = mgr.table_ids().to_vec();
        let mut txn = match mgr.begin() {
            Ok(t) => t,
            Err(e) => return Err((e, None)),
        };
        for op in std::mem::take(&mut ops[i]) {
            let buffered = match op {
                BufOp::Insert { t, row, app } => txn.insert(ids[t], row, app),
                BufOp::Update {
                    t,
                    key,
                    updates,
                    portion,
                } => txn.update(ids[t], &key, &updates, portion),
                BufOp::Delete { t, key, portion } => txn.delete(ids[t], &key, portion),
                BufOp::Overwrite { t, key, period } => {
                    txn.overwrite_app_period(ids[t], &key, period)
                }
            };
            if let Err(e) = buffered {
                return Err((e, None));
            }
        }
        txns.push(txn);
    }

    // Fast path: one participant needs no coordination — a stamped commit
    // record already recovers to exactly this state.
    if txns.len() == 1 {
        return match txns.remove(0).commit_at(gts) {
            // `commit_at` publishes before handing back the wait, so an
            // `Ok` here is a decided commit; an `Err` never published nor
            // logged (apply/submit failures poison the shard *without* a
            // WAL record).
            Ok((_ts, wait)) => Ok(wait.into_iter().collect()),
            Err(e) => Err((e, None)),
        };
    }

    // Phase one: prepare everywhere. Any failure aborts every prepare
    // already logged — explicitly, though recovery would presume it.
    let mut prepared: Vec<PreparedTxn<'a>> = Vec::with_capacity(txns.len());
    for txn in txns {
        match txn.prepare(gts) {
            Ok(p) => prepared.push(p),
            Err(e) => {
                abort_all(prepared);
                return Err((e, None));
            }
        }
    }

    // The prepare barrier: every participant's prepare record must be
    // durable before any shard logs a decision — this is what makes an
    // observed decision sufficient evidence for recovery to commit every
    // participant. Blocking on the flusher under the held commit gates is
    // the price of that guarantee, and it is paid per *cluster* commit,
    // not per shard.
    for p in &prepared {
        // Deliberately blocks under the commit gates held by the caller:
        // releasing them before the barrier would let another commit
        // interleave WAL records between our prepares and decisions.
        if let Err(e) = p.wait_prepared() {
            abort_all(prepared);
            return Err((e, None));
        }
    }

    // Phase two: decide commit on every shard. After the first durable
    // decision the transaction stands; a later shard failing to apply is
    // poisoned fail-stop and recovery converges it from the decision
    // evidence, so we keep committing the healthy shards.
    let mut waits = Vec::with_capacity(prepared.len());
    let mut decided = false;
    let mut failure: Option<Error> = None;
    let mut rest = prepared.into_iter();
    while let Some(p) = rest.next() {
        match p.commit() {
            Ok((_ts, wait)) => {
                decided = true;
                waits.extend(wait);
            }
            Err(e) => {
                if !decided {
                    // No decision logged anywhere yet: globally this is an
                    // abort, and the remaining prepares say so explicitly.
                    abort_all(rest.collect());
                    return Err((e, None));
                }
                failure.get_or_insert(e);
            }
        }
    }
    match failure {
        None => Ok(waits),
        Some(e) => Err((
            Error::Internal(format!(
                "cross-shard commit {gts} decided but a shard failed to apply it: {e}"
            )),
            Some(waits),
        )),
    }
}

fn abort_all(prepared: Vec<PreparedTxn<'_>>) {
    for p in prepared {
        // An abort that fails to log poisons its shard; the cluster-level
        // outcome (aborted) is already decided, so the error is not ours
        // to propagate — recovery presumes the abort regardless.
        let _ = p.abort();
    }
}

/// A consistent read point captured from the oracle watermark. Cheap; holds
/// no locks until [`Self::read`].
pub struct ClusterSnapshot<'a> {
    cluster: &'a Cluster,
    at: SysTime,
}

impl ClusterSnapshot<'_> {
    /// The captured global timestamp.
    pub fn at(&self) -> SysTime {
        self.at
    }

    /// Opens the per-shard read guards for this cut.
    pub fn read(&self) -> Result<ClusterRead<'_>> {
        self.cluster.read_at(self.at)
    }
}

/// Open read guards on every shard, all pinned at one global timestamp.
/// Obtain per query burst and drop promptly: the guards are what a
/// committer on each shard waits for.
pub struct ClusterRead<'a> {
    snaps: Vec<Snapshot<'a>>,
    at: SysTime,
}

impl ClusterRead<'_> {
    /// The pinned global timestamp.
    pub fn at(&self) -> SysTime {
        self.at
    }

    /// The read-only engine view over the whole cluster: scans fan out to
    /// every shard and concatenate, key lookups route to the owning shard,
    /// and every system-time specification is capped at the pinned
    /// timestamp by the per-shard snapshot translation. Implements the
    /// full [`BitemporalEngine`] read surface, so the workload query
    /// classes run on a cluster exactly as they run on one engine.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            views: self.snaps.iter().map(|s| s.view()).collect(),
            at: self.at,
        }
    }
}

/// [`BitemporalEngine`] adapter over one consistent cluster-wide cut. DML
/// and schema changes are rejected — writes go through [`ClusterTxn`].
pub struct ClusterView<'a> {
    views: Vec<bitempo_txn::SnapshotView<'a>>,
    at: SysTime,
}

impl ClusterView<'_> {
    fn read_only_err<T>(&self, what: &str) -> Result<T> {
        Err(Error::Unsupported(format!(
            "{what} on a cluster snapshot: buffer writes on the ClusterTxn instead"
        )))
    }
}

impl BitemporalEngine for ClusterView<'_> {
    fn name(&self) -> &'static str {
        self.views[0].name()
    }

    fn architecture(&self) -> &'static str {
        self.views[0].architecture()
    }

    fn create_table(&mut self, _def: TableDef) -> Result<TableId> {
        self.read_only_err("create_table")
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.views[0].resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.views[0].table_names()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.views[0].table_def(table)
    }

    fn apply_tuning(&mut self, _tuning: &TuningConfig) -> Result<()> {
        self.read_only_err("apply_tuning")
    }

    fn insert(&mut self, _table: TableId, _row: Row, _app: Option<AppPeriod>) -> Result<()> {
        self.read_only_err("insert")
    }

    fn update(
        &mut self,
        _table: TableId,
        _key: &Key,
        _updates: &[(usize, Value)],
        _portion: Option<AppPeriod>,
    ) -> Result<usize> {
        self.read_only_err("update")
    }

    fn delete(
        &mut self,
        _table: TableId,
        _key: &Key,
        _portion: Option<AppPeriod>,
    ) -> Result<usize> {
        self.read_only_err("delete")
    }

    fn overwrite_app_period(
        &mut self,
        _table: TableId,
        _key: &Key,
        _period: AppPeriod,
    ) -> Result<usize> {
        self.read_only_err("overwrite_app_period")
    }

    /// A cluster snapshot has nothing to commit; its "commit time" is the
    /// pinned global timestamp.
    fn commit(&mut self) -> SysTime {
        self.at
    }

    /// The frozen global timestamp, so queries deriving parameters from
    /// the commit watermark stay inside the cut.
    fn now(&self) -> SysTime {
        self.at
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        // Fan out and concatenate. Partitioning is by key, so the union of
        // the per-shard row sets *is* the single-engine row set; callers
        // needing a canonical order sort, exactly as they do across
        // engines with different physical scan orders.
        let mut out: Option<ScanOutput> = None;
        for v in &self.views {
            let part = v.scan(table, sys, app, preds)?;
            match &mut out {
                None => out = Some(part),
                Some(acc) => {
                    acc.rows.extend(part.rows);
                    acc.partition_paths.extend(part.partition_paths);
                    acc.metrics = merge_metrics(acc.metrics, part.metrics);
                }
            }
        }
        out.ok_or_else(|| Error::Internal("cluster has no shards".into()))
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        self.views[shard_of(key, self.views.len())].lookup_key(table, key, sys, app)
    }

    fn stats(&self, table: TableId) -> TableStats {
        let mut acc = TableStats {
            current_rows: 0,
            history_rows: 0,
        };
        for v in &self.views {
            let s = v.stats(table);
            acc.current_rows += s.current_rows;
            acc.history_rows += s.history_rows;
        }
        acc
    }

    fn snapshot_versions(&self, _table: TableId) -> Result<Vec<bitempo_engine::Version>> {
        self.read_only_err("snapshot_versions")
    }

    fn restore(
        &mut self,
        _table: TableId,
        _versions: Vec<bitempo_engine::Version>,
        _now: SysTime,
    ) -> Result<()> {
        self.read_only_err("restore")
    }
}

fn merge_metrics(a: ScanMetrics, b: ScanMetrics) -> ScanMetrics {
    ScanMetrics {
        morsels: a.morsels + b.morsels,
        rows_visited: a.rows_visited + b.rows_visited,
        versions_pruned: a.versions_pruned + b.versions_pruned,
        index_probes: a.index_probes + b.index_probes,
        index_hits: a.index_hits + b.index_hits,
        index_node_visits: a.index_node_visits + b.index_node_visits,
        planned_rows: a.planned_rows + b.planned_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recover_cluster, ShardInput};
    use bitempo_core::fault::{FaultKind, FaultPlan, FaultyWriter};
    use bitempo_engine::testutil::{bitemp_table, simple_row};
    use bitempo_storage::wal::{BODY_OVERHEAD, FRAME_OVERHEAD, WAL_HEADER_LEN};
    use bitempo_storage::DurabilityMode;
    use bitempo_wal::SharedBuf;

    /// A base checkpoint with keys 0..n committed at SysTime(1).
    fn base_checkpoint(n: i64) -> Checkpoint {
        let mut engine = build_engine(SystemKind::A);
        let t = engine.create_table(bitemp_table("t")).expect("create");
        for k in 0..n {
            engine
                .insert(t, simple_row(k, 10 * k), None)
                .expect("insert");
        }
        engine.commit();
        Checkpoint::capture(engine.as_mut(), &[t], 0).expect("capture")
    }

    fn cluster_with_bufs(shards: usize, n: i64) -> (Cluster, Vec<SharedBuf>) {
        let base = base_checkpoint(n);
        let bufs: Vec<SharedBuf> = (0..shards).map(|_| SharedBuf::new()).collect();
        let wals = bufs
            .iter()
            .map(|b| {
                Some(
                    TxnWal::create(Box::new(b.clone()), DurabilityMode::Strict)
                        .expect("wal create"),
                )
            })
            .collect();
        (
            Cluster::from_checkpoint(SystemKind::A, &base, wals).expect("cluster"),
            bufs,
        )
    }

    /// Two keys in 0..n guaranteed to live on different shards.
    fn split_keys(shards: usize, n: i64) -> (i64, i64) {
        let first = 0;
        let home = shard_of(&Key::int(first), shards);
        for k in 1..n {
            if shard_of(&Key::int(k), shards) != home {
                return (first, k);
            }
        }
        panic!("no key split across {shards} shards in 0..{n}");
    }

    fn current_vals(view: &ClusterView<'_>, t: TableId) -> Vec<(i64, i64)> {
        let mut rows: Vec<(i64, i64)> = view
            .scan(t, &SysSpec::Current, &AppSpec::All, &[])
            .expect("scan")
            .rows
            .iter()
            .map(|r| match (r.get(0), r.get(1)) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let base = base_checkpoint(20);
        let parts = partition_checkpoint(&base, 4);
        let total: usize = parts.iter().map(|p| p.tables[0].1.len()).sum();
        assert_eq!(total, base.tables[0].1.len());
        for p in &parts {
            assert_eq!(p.now, base.now);
            assert_eq!(p.seq, 0);
        }
    }

    #[test]
    fn single_shard_commits_land_at_oracle_timestamps() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        let before = cluster.read_ts();

        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(0), &[(1, Value::Int(111))], None)
            .expect("update");
        let ts = txn.commit().expect("commit");
        assert_eq!(ts, before.next(), "first commit lands right after the base");
        assert_eq!(cluster.read_ts(), ts, "watermark follows the publish");
        assert_eq!(cluster.counters().single_shard.load(Ordering::Relaxed), 1);

        let read = cluster.snapshot();
        let guards = read.read().expect("read");
        let view = guards.view();
        let vals = current_vals(&view, t);
        assert!(vals.contains(&(0, 111)));
    }

    #[test]
    fn cross_shard_commit_is_atomic_under_the_snapshot() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        let (a, b) = split_keys(2, 8);

        let before = cluster.snapshot();
        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(a), &[(1, Value::Int(-1))], None)
            .expect("update a");
        txn.update(t, &Key::int(b), &[(1, Value::Int(-2))], None)
            .expect("update b");
        let ts = txn.commit().expect("commit");
        assert_eq!(cluster.counters().cross_shard.load(Ordering::Relaxed), 1);

        // The pre-commit snapshot sees neither write...
        let guards = before.read().expect("read");
        let vals = current_vals(&guards.view(), t);
        assert!(vals.contains(&(a, 10 * a)) && vals.contains(&(b, 10 * b)));
        drop(guards);
        // ...and a post-commit snapshot sees both, at one timestamp.
        let after = cluster.snapshot();
        assert_eq!(after.at(), ts);
        let guards = after.read().expect("read");
        let vals = current_vals(&guards.view(), t);
        assert!(vals.contains(&(a, -1)) && vals.contains(&(b, -2)));
        // Both shards landed the same commit time.
        assert_eq!(cluster.shard_now(0), ts);
        assert_eq!(cluster.shard_now(1), ts);
    }

    #[test]
    fn cluster_first_committer_wins_across_shards() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        let (a, b) = split_keys(2, 8);

        let mut first = cluster.begin().expect("begin");
        let mut second = cluster.begin().expect("begin");
        // Both write key `a`; `first` also writes `b` so it runs 2PC.
        first
            .update(t, &Key::int(a), &[(1, Value::Int(1))], None)
            .expect("update");
        first
            .update(t, &Key::int(b), &[(1, Value::Int(2))], None)
            .expect("update");
        second
            .update(t, &Key::int(a), &[(1, Value::Int(3))], None)
            .expect("update");
        first.commit().expect("first commits");
        match second.commit() {
            Err(Error::Conflict(_)) => {}
            other => panic!("expected a conflict, got {other:?}"),
        }
        assert_eq!(cluster.counters().conflicts.load(Ordering::Relaxed), 1);
        assert_eq!(cluster.active_pins(), 0, "all pins released");
    }

    #[test]
    fn failed_cross_shard_commit_applies_nowhere() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        let (a, b) = split_keys(2, 8);

        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(a), &[(1, Value::Int(-5))], None)
            .expect("update");
        // A vanished key on the other shard: preflight fails its prepare.
        let ghost = (b..1000)
            .find(|k| *k >= 8 && shard_of(&Key::int(*k), 2) != shard_of(&Key::int(a), 2))
            .expect("ghost key");
        txn.update(t, &Key::int(ghost), &[(1, Value::Int(0))], None)
            .expect("update");
        match txn.commit() {
            Err(Error::KeyNotFound(_)) => {}
            other => panic!("expected KeyNotFound, got {other:?}"),
        }
        // Nothing applied on either shard, watermark unchanged by the
        // aborted timestamp, and a fresh write still commits.
        let snap = cluster.snapshot();
        let guards = snap.read().expect("read");
        assert!(current_vals(&guards.view(), t).contains(&(a, 10 * a)));
        drop(guards);
        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(a), &[(1, Value::Int(7))], None)
            .expect("update");
        txn.commit().expect("commit after abort");
    }

    #[test]
    fn lookup_routes_to_the_owning_shard() {
        let (cluster, _bufs) = cluster_with_bufs(4, 32);
        let t = cluster.table_ids()[0];
        let snap = cluster.snapshot();
        let guards = snap.read().expect("read");
        let view = guards.view();
        for k in 0..32 {
            let out = view
                .lookup_key(t, &Key::int(k), &SysSpec::Current, &AppSpec::All)
                .expect("lookup");
            assert_eq!(out.rows.len(), 1, "key {k}");
        }
    }

    #[test]
    fn publish_ahead_of_the_watermark_keeps_its_commit_record() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        // Two in-flight timestamps; the *newer* publishes first while the
        // older still holds the watermark back. The record must survive
        // pruning: readers can still pin below it and need it to validate.
        let a = cluster.oracle.begin_commit();
        let b = cluster.oracle.begin_commit();
        cluster.publish_commit(
            b,
            vec![CWrite {
                table: 0,
                key: Key::int(0),
                app: AppPeriod::ALL,
            }],
        );
        assert!(cluster.read_ts().0 < b, "a still in flight");
        {
            let cs = cluster.cstate.lock().expect("cluster state");
            assert!(
                cs.commit_log.iter().any(|r| r.gts == b),
                "pruning must floor at the watermark, not at the published gts"
            );
        }
        let mut txn = cluster.begin().expect("begin");
        assert!(txn.pin().0 < b);
        txn.update(t, &Key::int(0), &[(1, Value::Int(9))], None)
            .expect("update");
        match txn.commit() {
            Err(Error::Conflict(_)) => {}
            other => panic!("expected a conflict with b's write, got {other:?}"),
        }
        cluster.oracle.abort(a);
    }

    #[test]
    fn out_of_order_publishes_cannot_hide_commits_from_validation() {
        let (cluster, _bufs) = cluster_with_bufs(2, 8);
        let t = cluster.table_ids()[0];
        // A long-lived pin keeps the log from pruning.
        let reader = cluster.begin().expect("begin");
        // Three in-flight commits; the newest publishes first, the oldest
        // second, so *append* order would be [c, a] while gts order is
        // [a, c].
        let a = cluster.oracle.begin_commit();
        let b = cluster.oracle.begin_commit();
        let c = cluster.oracle.begin_commit();
        cluster.publish_commit(
            c,
            vec![CWrite {
                table: 0,
                key: Key::int(0),
                app: AppPeriod::ALL,
            }],
        );
        cluster.publish_commit(a, Vec::new());
        {
            let cs = cluster.cstate.lock().expect("cluster state");
            let order: Vec<u64> = cs.commit_log.iter().map(|r| r.gts).collect();
            assert_eq!(order, vec![a, c], "log stays ascending by gts");
        }
        assert_eq!(cluster.read_ts().0, a, "b still holds the watermark at a");
        // A transaction pinned at exactly a must still see c's conflicting
        // write: the reverse scan's early exit stops at the first record
        // at or below the pin, which must never be an out-of-order entry
        // sitting in front of a newer one.
        let mut txn = cluster.begin().expect("begin");
        assert_eq!(txn.pin().0, a);
        txn.update(t, &Key::int(0), &[(1, Value::Int(9))], None)
            .expect("update");
        match txn.commit() {
            Err(Error::Conflict(_)) => {}
            other => panic!("expected a conflict with c's write, got {other:?}"),
        }
        cluster.oracle.abort(b);
        reader.rollback();
    }

    #[test]
    fn poisoned_shard_fail_stops_cluster_reads() {
        let base = base_checkpoint(8);
        let buf0 = SharedBuf::new();
        let buf1 = SharedBuf::new();
        // Shard 1's log accepts the stream header and nothing else: its
        // prepare submit fails, poisoning the shard before any decision.
        let plan = FaultPlan::none().with(FaultKind::TruncateAt(WAL_HEADER_LEN as u64));
        let wals = vec![
            Some(TxnWal::create(Box::new(buf0.clone()), DurabilityMode::Strict).expect("wal")),
            Some(
                TxnWal::create(
                    Box::new(FaultyWriter::new(buf1.clone(), plan)),
                    DurabilityMode::Strict,
                )
                .expect("wal"),
            ),
        ];
        let cluster = Cluster::from_checkpoint(SystemKind::A, &base, wals).expect("cluster");
        let t = cluster.table_ids()[0];
        let k0 = (0..8)
            .find(|k| shard_of(&Key::int(*k), 2) == 0)
            .expect("a key on shard 0");
        let k1 = (0..8)
            .find(|k| shard_of(&Key::int(*k), 2) == 1)
            .expect("a key on shard 1");
        let before = cluster.read_ts();

        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(k0), &[(1, Value::Int(-1))], None)
            .expect("update");
        txn.update(t, &Key::int(k1), &[(1, Value::Int(-2))], None)
            .expect("update");
        match txn.commit() {
            Err(Error::Internal(_)) => {}
            other => panic!("expected the prepare submit failure, got {other:?}"),
        }
        // Nothing decided: the abort burns the slot (the watermark may step
        // over it), but no shard applied anything and nothing was published.
        assert_eq!(cluster.shard_now(0), before);
        assert_eq!(cluster.shard_now(1), before);
        assert!(cluster.cstate.lock().unwrap().commit_log.is_empty());
        // The poisoned shard makes any cluster-wide cut potentially
        // non-atomic; reads fail-stop instead of serving it.
        match cluster.snapshot().read() {
            Err(Error::Internal(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
            other => panic!("expected fail-stop, got {:?}", other.map(|r| r.at())),
        };
    }

    #[test]
    fn decided_commit_with_a_failed_shard_still_publishes_and_waits() {
        let base = base_checkpoint(8);
        let parts = partition_checkpoint(&base, 2);
        let k0 = (0..8)
            .find(|k| shard_of(&Key::int(*k), 2) == 0)
            .expect("a key on shard 0");
        let k1 = (0..8)
            .find(|k| shard_of(&Key::int(*k), 2) == 1)
            .expect("a key on shard 1");
        // Predict shard 1's prepare record byte-for-byte so the fault cuts
        // its log exactly at the record boundary: the prepare lands whole,
        // the decision submit that follows fails. The base commits at 1,
        // so the first oracle timestamp is 2.
        let gts = 2u64;
        let prepare = bitempo_wal::encode_prepare(
            gts,
            gts,
            &bitempo_histgen::Transaction {
                scenarios: Vec::new(),
                ops: vec![bitempo_histgen::Op::Update {
                    table: 0,
                    key: Key::int(k1),
                    updates: vec![(1, Value::Int(-2))],
                    portion: None,
                }],
            },
        )
        .expect("encode");
        let cut = (WAL_HEADER_LEN + FRAME_OVERHEAD + BODY_OVERHEAD + prepare.len()) as u64;
        let buf0 = SharedBuf::new();
        let buf1 = SharedBuf::new();
        let wals = vec![
            Some(TxnWal::create(Box::new(buf0.clone()), DurabilityMode::Strict).expect("wal")),
            Some(
                TxnWal::create(
                    Box::new(FaultyWriter::new(
                        buf1.clone(),
                        FaultPlan::none().with(FaultKind::TruncateAt(cut)),
                    )),
                    DurabilityMode::Strict,
                )
                .expect("wal"),
            ),
        ];
        let cluster = Cluster::from_checkpoint(SystemKind::A, &base, wals).expect("cluster");
        let t = cluster.table_ids()[0];

        let mut txn = cluster.begin().expect("begin");
        txn.update(t, &Key::int(k0), &[(1, Value::Int(-1))], None)
            .expect("update");
        txn.update(t, &Key::int(k1), &[(1, Value::Int(-2))], None)
            .expect("update");
        let err = txn.commit().expect_err("shard 1's decision submit must fail");
        assert!(matches!(err, Error::Internal(_)), "{err:?}");
        // Shard 0 decided: the transaction stands globally — the watermark
        // and commit log reflect it, shard 0 holds the effects, and its
        // durability wait was honored before commit() returned.
        assert_eq!(cluster.read_ts(), SysTime(gts));
        assert_eq!(cluster.shard_now(0), SysTime(gts));
        assert_eq!(cluster.active_pins(), 0, "all pins released");
        // ...but reads fail-stop on the poisoned straggler until recovery.
        assert!(cluster.snapshot().read().is_err());

        // Recovery from the durable remains converges the straggler: shard
        // 0's decision record finishes shard 1's prepared-but-undecided
        // half at the original global timestamp.
        drop(cluster);
        let inputs = vec![
            ShardInput {
                wal: buf0.snapshot(),
                checkpoints: vec![parts[0].encode()],
            },
            ShardInput {
                wal: buf1.snapshot(),
                checkpoints: vec![parts[1].encode()],
            },
        ];
        let rec =
            recover_cluster(SystemKind::A, &inputs, &TuningConfig::none()).expect("recover");
        assert_eq!(rec.committed_pending, vec![(1, gts)]);
        assert!(rec.degraded.is_empty());
        assert_eq!(rec.consistent_prefix(), SysTime(gts));
    }

    #[test]
    fn one_shard_cluster_degenerates_to_the_serving_layer() {
        let (cluster, _bufs) = cluster_with_bufs(1, 4);
        let t = cluster.table_ids()[0];
        let mut txn = cluster.begin().expect("begin");
        txn.insert(t, simple_row(100, 1), None).expect("insert");
        txn.update(t, &Key::int(0), &[(1, Value::Int(5))], None)
            .expect("update");
        let ts = txn.commit().expect("commit");
        assert_eq!(cluster.counters().single_shard.load(Ordering::Relaxed), 1);
        assert_eq!(cluster.shard_now(0), ts);
    }
}
