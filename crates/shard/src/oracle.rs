//! The cluster's monotonic commit-timestamp oracle.
//!
//! Every committing cluster transaction draws one timestamp here, and every
//! shard it touches commits at *exactly* that timestamp (the engines'
//! `advance_clock` seam) — so shard-local system time and global time are
//! the same axis, and a cross-shard snapshot is just "every shard `AS OF t`"
//! for one `t`.
//!
//! The subtlety is which `t` is safe to read at. A timestamp is *issued*
//! before the commit starts landing on its shards; reading at an issued but
//! unpublished timestamp could observe a transaction on one shard and miss
//! it on another. The oracle therefore publishes a **read watermark**: the
//! largest timestamp `w` such that every commit at or below `w` has fully
//! published (or aborted). Readers snapshot at the watermark, so the cut
//! they see is always a prefix of the global commit order — the same
//! guarantee a single engine's commit counter gives for free.

use bitempo_core::SysTime;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// State behind the oracle's mutex: the issue counter plus the set of
/// issued-but-unresolved timestamps.
struct OracleState {
    /// Next timestamp to issue.
    next: u64,
    /// Issued timestamps whose commits have not yet published or aborted.
    in_flight: BTreeSet<u64>,
}

/// Issues globally unique, strictly ascending commit timestamps and tracks
/// the read watermark. See the module docs for the model.
pub struct CommitOracle {
    state: Mutex<OracleState>,
    /// The published read watermark, cached outside the mutex so readers
    /// never contend with committers. Only ever written under `state`'s
    /// lock, so it advances monotonically.
    watermark: AtomicU64,
}

impl CommitOracle {
    /// Creates an oracle whose first issued timestamp is `now + 1` and
    /// whose initial watermark is `now` — the commit clock all shards
    /// started from (they share one base checkpoint).
    pub fn new(now: SysTime) -> CommitOracle {
        CommitOracle {
            state: Mutex::new(OracleState {
                next: now.0 + 1,
                in_flight: BTreeSet::new(),
            }),
            watermark: AtomicU64::new(now.0),
        }
    }

    /// Issues the next commit timestamp and registers it in flight. The
    /// caller must resolve it with exactly one of [`Self::publish`] or
    /// [`Self::abort`], or the watermark stalls forever.
    pub fn begin_commit(&self) -> u64 {
        let mut st = self.state.lock().expect("oracle state poisoned");
        let ts = st.next;
        st.next += 1;
        st.in_flight.insert(ts);
        ts
    }

    /// Marks `ts` fully published on every shard it touched and advances
    /// the watermark as far as the remaining in-flight set allows.
    pub fn publish(&self, ts: u64) {
        self.resolve(ts);
    }

    /// Marks `ts` abandoned; its slot never blocks the watermark. The
    /// timestamp is burned, not reused — uniqueness is what lets a prepare
    /// record's `gts` double as the global transaction id.
    pub fn abort(&self, ts: u64) {
        self.resolve(ts);
    }

    fn resolve(&self, ts: u64) {
        let mut st = self.state.lock().expect("oracle state poisoned");
        let removed = st.in_flight.remove(&ts);
        debug_assert!(removed, "timestamp {ts} resolved twice or never issued");
        let new_mark = match st.in_flight.first() {
            Some(&oldest) => oldest - 1,
            None => st.next - 1,
        };
        // Monotonic by construction: the oldest in-flight timestamp only
        // grows, and `next` never shrinks. `fetch_max` (still under the
        // lock) keeps two resolves from racing each other backwards.
        let prev = self.watermark.fetch_max(new_mark, Ordering::Release);
        debug_assert!(new_mark >= prev, "watermark moved backwards");
    }

    /// The read watermark: the newest timestamp at which a cross-shard
    /// snapshot is a consistent prefix of the global commit order.
    pub fn read_ts(&self) -> SysTime {
        SysTime(self.watermark.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_unique_and_ascending() {
        let o = CommitOracle::new(SysTime(5));
        let a = o.begin_commit();
        let b = o.begin_commit();
        assert_eq!((a, b), (6, 7));
        assert_eq!(o.read_ts(), SysTime(5), "nothing published yet");
    }

    #[test]
    fn watermark_waits_for_the_oldest_in_flight_commit() {
        let o = CommitOracle::new(SysTime(0));
        let a = o.begin_commit(); // 1
        let b = o.begin_commit(); // 2
        o.publish(b);
        assert_eq!(o.read_ts(), SysTime(0), "1 still in flight holds it back");
        o.publish(a);
        assert_eq!(o.read_ts(), SysTime(2), "both published");
    }

    #[test]
    fn aborts_release_the_watermark_like_publishes() {
        let o = CommitOracle::new(SysTime(0));
        let a = o.begin_commit(); // 1
        let b = o.begin_commit(); // 2
        o.abort(a);
        assert_eq!(o.read_ts(), SysTime(1), "abort of 1 unblocks up to 2's gap");
        o.publish(b);
        assert_eq!(o.read_ts(), SysTime(2));
        // The aborted slot is burned: the next issue skips past it.
        assert_eq!(o.begin_commit(), 3);
    }
}
