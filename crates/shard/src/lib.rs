//! Hash-sharded bitemporal cluster: N independent serving layers behind
//! one router and one commit-timestamp oracle.
//!
//! The paper benchmarks single-node bitemporal engines; this crate asks
//! the follow-on scaling question: does the serving layer's throughput
//! scale when the key space is hash-partitioned across shards, each with
//! its own engine, transaction manager, and write-ahead log — *without*
//! giving up globally consistent snapshots?
//!
//! The pieces:
//!
//! * [`oracle::CommitOracle`] — issues globally unique commit timestamps
//!   and publishes the read watermark at which a cross-shard snapshot is a
//!   consistent prefix of the global commit order.
//! * [`cluster::Cluster`] — the router and coordinator: single-key DML
//!   commits on its owning shard alone; multi-shard transactions run
//!   two-phase commit over the shards' existing WALs with presumed-abort
//!   recovery semantics.
//! * [`recover_cluster`] — per-shard crash recovery plus cross-shard
//!   resolution of undecided prepares against the union of durable commit
//!   decisions.
//!
//! Because every commit lands at exactly its oracle timestamp (via the
//! engines' `advance_clock` seam), a sharded cluster's history is
//! byte-identical — per key, per timestamp, for all five query classes —
//! to a single engine executing the same transactions serially. The
//! cross-shard consistency suite in `tests/` asserts precisely that.

// Tests may unwrap freely; production coordination code must not (tblint
// TB010 for lock results, `clippy::unwrap_used` in Cargo.toml for the rest).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cluster;
pub mod oracle;
pub mod recover;

pub use cluster::{
    partition_checkpoint, Cluster, ClusterCounters, ClusterRead, ClusterSnapshot, ClusterTxn,
    ClusterView,
};
pub use oracle::CommitOracle;
pub use recover::{recover_cluster, ClusterRecovered, ShardInput};
