//! # proptest (offline shim)
//!
//! A self-contained, dependency-free re-implementation of the subset of the
//! `proptest` crate API that this workspace's property tests use. The build
//! environment has no registry access, so the real crate cannot be fetched;
//! vendoring the needed surface keeps the tests' *intent* intact (random
//! program generation, differential assertions) while staying fully offline.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and message;
//!   rerunning is deterministic (the RNG is seeded from the test name), so a
//!   failure always reproduces.
//! * **Deterministic by default.** Every `proptest!` test derives its RNG
//!   stream from the test function name, so runs are stable across machines
//!   and invocations — a property this repository relies on everywhere else
//!   (see `bitempo-core`'s PCG streams).
//! * Only the combinators used in-tree are provided: integer ranges, tuple
//!   composition, `prop_map`, `prop_oneof!`, `Just`, `option::of`,
//!   `collection::vec`, `any::<T>()`, `prop::bool::ANY`, and a tiny
//!   character-class pattern strategy for `&str` (e.g. `"[a-z]{0,6}"`).

pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    /// Uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl crate::strategy::Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

/// Strategies over `Option<T>`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` or `Some(inner)` (about 3:1 in favor of
    /// `Some`, mirroring upstream's default probability).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps `inner` into an optional strategy (`proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Arbitrary-value strategies (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Strategy over the full value range of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the enclosing
/// case returns an error (and the harness panics with the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each function body runs `config.cases` times
/// with fresh values drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n(deterministic shim: rerun reproduces)",
                        case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
