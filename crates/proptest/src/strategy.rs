//! The [`Strategy`] trait and the combinators used by this workspace.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the expansion of
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String-pattern strategy: a `&str` literal is interpreted as a simplified
/// regex of character classes with repetition counts, e.g. `"[a-z]{0,6}"`.
/// Supported syntax: literal characters, `[a-z0-9_]` classes (ranges and
/// singletons), and `{n}` / `{m,n}` quantifiers after a class or literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .expect("unterminated character class in pattern");
            let set = parse_class(&chars[i + 1..close]);
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unterminated quantifier in pattern");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            let k = (rng.next_u64() % class.len() as u64) as usize;
            out.push(class[k]);
        }
    }
    out
}

fn parse_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (a, b) = (body[i] as u32, body[i + 2] as u32);
            for c in a..=b {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern");
    set
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (-50i64..7).generate(&mut rng);
            assert!((-50..7).contains(&v));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::for_test("pattern_strategy_matches_shape");
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]{2}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_test("union_uses_every_arm");
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
