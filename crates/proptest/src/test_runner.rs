//! Test-runner support types: configuration, failure reporting, and the
//! deterministic RNG behind every strategy.

use std::fmt;

/// Per-test configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carried out of the test body by
/// [`crate::prop_assert!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator RNG (splitmix64). Each test derives its own
/// stream from the test function name, so property tests reproduce exactly
/// across runs and machines — failures are always re-runnable.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a stream for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
