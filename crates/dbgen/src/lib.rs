//! # bitempo-dbgen
//!
//! A deterministic reimplementation of the TPC-H `dbgen` initial population,
//! extended with the TPC-BiH temporal columns (paper §3.1, Figure 1).
//!
//! The output of this crate is *version 0* of the benchmark database: the
//! state loaded before the history generator (`bitempo-histgen`) starts
//! executing update scenarios. Application-time periods are derived from the
//! time attributes already present in the data — `shipdate`, `receiptdate`,
//! `orderdate` — exactly as the paper prescribes ("All time information is
//! derived from existing values present in the data").
//!
//! Scaling follows TPC-H: `h = 1.0` corresponds to the standard 1 GB
//! population (150 k customers, 1.5 M orders, ~6 M lineitems). The benchmark
//! runs here use laptop-scale fractions; every cardinality is linear in `h`.
//!
//! Determinism: every row draws from its own PCG substream keyed by
//! `(table, primary key)`, so the same `(seed, h)` produces bit-identical
//! data regardless of generation order.

pub mod schema;
pub mod tables;
pub mod text;

pub use schema::{col, table_defs, TPCH_TABLES};
pub use tables::{GeneratedTable, TpchData};

use bitempo_core::AppDate;

/// Default master seed (spells "TPCBIH" if you squint).
pub const DEFAULT_SEED: u64 = 0x7BC_B14;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// TPC-H scale factor (`h`); 1.0 ≈ the 1 GB population.
    pub h: f64,
    /// Master seed for all substreams.
    pub seed: u64,
}

impl ScaleConfig {
    /// A laptop-scale default (h = 0.001: 150 customers, ~6 k lineitems).
    pub fn tiny() -> ScaleConfig {
        ScaleConfig {
            h: 0.001,
            seed: DEFAULT_SEED,
        }
    }

    /// A configuration with the given scale factor and the default seed.
    pub fn with_h(h: f64) -> ScaleConfig {
        ScaleConfig {
            h,
            seed: DEFAULT_SEED,
        }
    }

    /// Cardinality of a base table whose TPC-H size is `per_unit` rows at
    /// scale 1.0 (minimum 1).
    pub fn rows(&self, per_unit: u64) -> u64 {
        ((per_unit as f64 * self.h).round() as u64).max(1)
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> u64 {
        self.rows(10_000)
    }
    /// Number of customers.
    pub fn customers(&self) -> u64 {
        self.rows(150_000)
    }
    /// Number of parts.
    pub fn parts(&self) -> u64 {
        self.rows(200_000)
    }
    /// Number of orders (10 per customer, as in TPC-H).
    pub fn orders(&self) -> u64 {
        self.customers() * 10
    }
}

/// First day of the TPC-H universe (1992-01-01).
pub const START_DATE: AppDate = AppDate::from_ymd(1992, 1, 1);
/// Last order date (1998-08-02).
pub const LAST_ORDER_DATE: AppDate = AppDate::from_ymd(1998, 8, 2);
/// Last day of the TPC-H universe (1998-12-31).
pub const END_DATE: AppDate = AppDate::from_ymd(1998, 12, 31);

/// Generates the full version-0 population.
pub fn generate(config: &ScaleConfig) -> TpchData {
    tables::generate(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_cardinalities() {
        let c = ScaleConfig::with_h(1.0);
        assert_eq!(c.suppliers(), 10_000);
        assert_eq!(c.customers(), 150_000);
        assert_eq!(c.parts(), 200_000);
        assert_eq!(c.orders(), 1_500_000);
        let tiny = ScaleConfig::tiny();
        assert_eq!(tiny.suppliers(), 10);
        assert_eq!(tiny.customers(), 150);
        assert_eq!(tiny.orders(), 1_500);
        // Cardinalities never drop to zero.
        let nano = ScaleConfig::with_h(0.000001);
        assert_eq!(nano.suppliers(), 1);
    }

    #[test]
    fn date_constants() {
        assert_eq!(START_DATE.to_string(), "1992-01-01");
        assert_eq!(LAST_ORDER_DATE.to_string(), "1998-08-02");
        assert!(START_DATE < LAST_ORDER_DATE && LAST_ORDER_DATE < END_DATE);
    }
}
