//! The TPC-BiH logical schema (paper Figure 1): TPC-H plus temporal columns.
//!
//! Temporal properties per table:
//!
//! | Table | Class | Application time |
//! |---|---|---|
//! | REGION, NATION | non-temporal | — |
//! | SUPPLIER | degenerate (system time doubles as app time) | — |
//! | PART | bitemporal | `availability_time` |
//! | PARTSUPP | bitemporal | `validity_time` |
//! | CUSTOMER | bitemporal | `visible_time` |
//! | ORDERS | bitemporal, **two** app times | `active_time` native; `receivable_time` as plain date columns |
//! | LINEITEM | bitemporal | `active_time` |
//!
//! ORDERS' second application time is stored in plain `o_receivable_start` /
//! `o_receivable_end` columns, the paper's prescription for engines limited
//! to one native application time per table.

use bitempo_core::{Column, DataType, Schema, TableDef, TemporalClass};

/// The eight table names in load order (respecting foreign keys).
pub const TPCH_TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Column index constants, one module per table, so workload code reads
/// `col::orders::TOTALPRICE` instead of magic numbers.
pub mod col {
    #![allow(missing_docs)]

    pub mod region {
        pub const REGIONKEY: usize = 0;
        pub const NAME: usize = 1;
    }
    pub mod nation {
        pub const NATIONKEY: usize = 0;
        pub const NAME: usize = 1;
        pub const REGIONKEY: usize = 2;
    }
    pub mod supplier {
        pub const SUPPKEY: usize = 0;
        pub const NAME: usize = 1;
        pub const ADDRESS: usize = 2;
        pub const NATIONKEY: usize = 3;
        pub const PHONE: usize = 4;
        pub const ACCTBAL: usize = 5;
        pub const COMMENT: usize = 6;
    }
    pub mod customer {
        pub const CUSTKEY: usize = 0;
        pub const NAME: usize = 1;
        pub const ADDRESS: usize = 2;
        pub const NATIONKEY: usize = 3;
        pub const PHONE: usize = 4;
        pub const ACCTBAL: usize = 5;
        pub const MKTSEGMENT: usize = 6;
    }
    pub mod part {
        pub const PARTKEY: usize = 0;
        pub const NAME: usize = 1;
        pub const MFGR: usize = 2;
        pub const BRAND: usize = 3;
        pub const TYPE: usize = 4;
        pub const SIZE: usize = 5;
        pub const CONTAINER: usize = 6;
        pub const RETAILPRICE: usize = 7;
    }
    pub mod partsupp {
        pub const PARTKEY: usize = 0;
        pub const SUPPKEY: usize = 1;
        pub const AVAILQTY: usize = 2;
        pub const SUPPLYCOST: usize = 3;
    }
    pub mod orders {
        pub const ORDERKEY: usize = 0;
        pub const CUSTKEY: usize = 1;
        pub const ORDERSTATUS: usize = 2;
        pub const TOTALPRICE: usize = 3;
        pub const ORDERDATE: usize = 4;
        pub const ORDERPRIORITY: usize = 5;
        pub const CLERK: usize = 6;
        pub const SHIPPRIORITY: usize = 7;
        pub const COMMENT: usize = 8;
        pub const RECEIVABLE_START: usize = 9;
        pub const RECEIVABLE_END: usize = 10;
    }
    pub mod lineitem {
        pub const ORDERKEY: usize = 0;
        pub const PARTKEY: usize = 1;
        pub const SUPPKEY: usize = 2;
        pub const LINENUMBER: usize = 3;
        pub const QUANTITY: usize = 4;
        pub const EXTENDEDPRICE: usize = 5;
        pub const DISCOUNT: usize = 6;
        pub const TAX: usize = 7;
        pub const RETURNFLAG: usize = 8;
        pub const LINESTATUS: usize = 9;
        pub const SHIPDATE: usize = 10;
        pub const COMMITDATE: usize = 11;
        pub const RECEIPTDATE: usize = 12;
        pub const SHIPINSTRUCT: usize = 13;
        pub const SHIPMODE: usize = 14;
    }
}

fn c(name: &str, dtype: DataType) -> Column {
    Column::new(name, dtype)
}

/// Builds the eight [`TableDef`]s in load order.
pub fn table_defs() -> Vec<TableDef> {
    use DataType::*;
    let region = TableDef::new(
        "region",
        Schema::new(vec![c("r_regionkey", Int), c("r_name", Str)]),
        vec![0],
        TemporalClass::NonTemporal,
        None,
    );
    let nation = TableDef::new(
        "nation",
        Schema::new(vec![
            c("n_nationkey", Int),
            c("n_name", Str),
            c("n_regionkey", Int),
        ]),
        vec![0],
        TemporalClass::NonTemporal,
        None,
    );
    let supplier = TableDef::new(
        "supplier",
        Schema::new(vec![
            c("s_suppkey", Int),
            c("s_name", Str),
            c("s_address", Str),
            c("s_nationkey", Int),
            c("s_phone", Str),
            c("s_acctbal", Double),
            c("s_comment", Str),
        ]),
        vec![0],
        TemporalClass::Degenerate,
        None,
    );
    let customer = TableDef::new(
        "customer",
        Schema::new(vec![
            c("c_custkey", Int),
            c("c_name", Str),
            c("c_address", Str),
            c("c_nationkey", Int),
            c("c_phone", Str),
            c("c_acctbal", Double),
            c("c_mktsegment", Str),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("visible_time"),
    );
    let part = TableDef::new(
        "part",
        Schema::new(vec![
            c("p_partkey", Int),
            c("p_name", Str),
            c("p_mfgr", Str),
            c("p_brand", Str),
            c("p_type", Str),
            c("p_size", Int),
            c("p_container", Str),
            c("p_retailprice", Double),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("availability_time"),
    );
    let partsupp = TableDef::new(
        "partsupp",
        Schema::new(vec![
            c("ps_partkey", Int),
            c("ps_suppkey", Int),
            c("ps_availqty", Int),
            c("ps_supplycost", Double),
        ]),
        vec![0, 1],
        TemporalClass::Bitemporal,
        Some("validity_time"),
    );
    let orders = TableDef::new(
        "orders",
        Schema::new(vec![
            c("o_orderkey", Int),
            c("o_custkey", Int),
            c("o_orderstatus", Str),
            c("o_totalprice", Double),
            c("o_orderdate", Date),
            c("o_orderpriority", Str),
            c("o_clerk", Str),
            c("o_shippriority", Int),
            c("o_comment", Str),
            c("o_receivable_start", Date),
            c("o_receivable_end", Date),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("active_time"),
    );
    let lineitem = TableDef::new(
        "lineitem",
        Schema::new(vec![
            c("l_orderkey", Int),
            c("l_partkey", Int),
            c("l_suppkey", Int),
            c("l_linenumber", Int),
            c("l_quantity", Double),
            c("l_extendedprice", Double),
            c("l_discount", Double),
            c("l_tax", Double),
            c("l_returnflag", Str),
            c("l_linestatus", Str),
            c("l_shipdate", Date),
            c("l_commitdate", Date),
            c("l_receiptdate", Date),
            c("l_shipinstruct", Str),
            c("l_shipmode", Str),
        ]),
        vec![0, 3],
        TemporalClass::Bitemporal,
        Some("active_time"),
    );
    vec![
        region, nation, supplier, customer, part, partsupp, orders, lineitem,
    ]
    .into_iter()
    .map(|d| d.expect("static schema is valid"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tables_in_fk_order() {
        let defs = table_defs();
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, TPCH_TABLES);
    }

    #[test]
    fn temporal_classes_match_paper() {
        let defs = table_defs();
        let class = |n: &str| defs.iter().find(|d| d.name == n).unwrap().temporal;
        assert_eq!(class("region"), TemporalClass::NonTemporal);
        assert_eq!(class("nation"), TemporalClass::NonTemporal);
        assert_eq!(class("supplier"), TemporalClass::Degenerate);
        for t in ["customer", "part", "partsupp", "orders", "lineitem"] {
            assert_eq!(class(t), TemporalClass::Bitemporal, "{t}");
        }
    }

    #[test]
    fn column_constants_match_schema() {
        let defs = table_defs();
        let orders = defs.iter().find(|d| d.name == "orders").unwrap();
        assert_eq!(
            orders.schema.col("o_totalprice").unwrap(),
            col::orders::TOTALPRICE
        );
        assert_eq!(
            orders.schema.col("o_receivable_end").unwrap(),
            col::orders::RECEIVABLE_END
        );
        let li = defs.iter().find(|d| d.name == "lineitem").unwrap();
        assert_eq!(
            li.schema.col("l_receiptdate").unwrap(),
            col::lineitem::RECEIPTDATE
        );
        assert_eq!(
            li.key,
            vec![col::lineitem::ORDERKEY, col::lineitem::LINENUMBER]
        );
        let ps = defs.iter().find(|d| d.name == "partsupp").unwrap();
        assert_eq!(ps.key, vec![0, 1]);
    }

    #[test]
    fn orders_second_app_time_is_plain_columns() {
        let defs = table_defs();
        let orders = defs.iter().find(|d| d.name == "orders").unwrap();
        assert_eq!(orders.app_time_name.as_deref(), Some("active_time"));
        // receivable_time lives in the value schema, queryable by any engine.
        assert!(orders.schema.col("o_receivable_start").is_ok());
    }
}
