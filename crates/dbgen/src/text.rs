//! Word lists and string synthesis, following the TPC-H specification's
//! vocabulary (abbreviated where the benchmark queries do not depend on it).

use bitempo_core::Pcg32;

/// TPC-H P_NAME color vocabulary (a representative subset of the 92 words;
/// includes every color referenced by the TPC-H query parameters we use,
/// e.g. Q9's "green" and Q20's "forest").
pub const COLORS: [&str; 32] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "forest",
    "frosted",
    "green",
    "honeydew",
    "hot",
    "indian",
];

/// P_TYPE syllables.
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// P_TYPE syllables (second position).
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// P_TYPE syllables (third position).
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// P_CONTAINER syllables.
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// P_CONTAINER syllables (second position).
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// O_ORDERPRIORITY values.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// C_MKTSEGMENT values.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// L_SHIPINSTRUCT values.
pub const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// L_SHIPMODE values.
pub const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Filler nouns for comment synthesis.
const NOUNS: [&str; 12] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
];
const VERBS: [&str; 10] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "boost",
    "detect",
    "integrate",
    "engage",
    "wake",
];
const ADJECTIVES: [&str; 10] = [
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow", "quiet", "ruthless", "final",
];

/// A part name: five distinct-ish colors joined by spaces (TPC-H 4.2.3).
pub fn part_name(rng: &mut Pcg32) -> String {
    let mut words = Vec::with_capacity(5);
    for _ in 0..5 {
        words.push(*rng.pick(&COLORS));
    }
    words.join(" ")
}

/// A pseudo-random address string (TPC-H uses a v-string; queries never
/// inspect addresses, so a compact alphanumeric form suffices).
pub fn address(rng: &mut Pcg32) -> String {
    let len = rng.int_range(10, 25) as usize;
    let mut s = String::with_capacity(len);
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
    for _ in 0..len {
        let i = rng.int_range(0, ALPHABET.len() as i64 - 1) as usize;
        s.push(ALPHABET[i] as char);
    }
    s
}

/// A TPC-H phone number: `CC-LLL-LLL-LLLL` with country code derived from
/// the nation key (TPC-H 4.2.2.9), which Q22 depends on.
pub fn phone(rng: &mut Pcg32, nationkey: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        nationkey + 10,
        rng.int_range(100, 999),
        rng.int_range(100, 999),
        rng.int_range(1000, 9999)
    )
}

/// A filler comment of 2–4 clauses.
// `*rng.pick(..)` converts `&&str` to `&str` for the argument position;
// clippy's auto-deref suggestion does not apply to arguments.
#[allow(clippy::explicit_auto_deref)]
pub fn comment(rng: &mut Pcg32) -> String {
    let clauses = rng.int_range(2, 4);
    let mut s = String::new();
    for i in 0..clauses {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(*rng.pick(&ADJECTIVES));
        s.push(' ');
        s.push_str(*rng.pick(&NOUNS));
        s.push(' ');
        s.push_str(*rng.pick(&VERBS));
        s.push('.');
    }
    s
}

/// An ORDERS comment; a small fraction contains the "special requests"
/// marker that Q13 filters on.
pub fn order_comment(rng: &mut Pcg32) -> String {
    let base = comment(rng);
    if rng.chance(0.05) {
        format!("{base} special deposits requests.")
    } else {
        base
    }
}

/// A SUPPLIER comment; a small fraction contains the "Customer Complaints"
/// marker that Q16 filters on.
pub fn supplier_comment(rng: &mut Pcg32) -> String {
    let base = comment(rng);
    if rng.chance(0.02) {
        format!("{base} Customer insults Complaints.")
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_name_has_five_words() {
        let mut rng = Pcg32::new(1, 1);
        let name = part_name(&mut rng);
        assert_eq!(name.split(' ').count(), 5);
        for w in name.split(' ') {
            assert!(COLORS.contains(&w));
        }
    }

    #[test]
    fn phone_embeds_nation_code() {
        let mut rng = Pcg32::new(2, 2);
        let p = phone(&mut rng, 7);
        assert!(p.starts_with("17-"), "{p}");
        assert_eq!(p.split('-').count(), 4);
    }

    #[test]
    fn nations_reference_valid_regions() {
        assert_eq!(NATIONS.len(), 25);
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
        assert_eq!(REGIONS.len(), 5);
    }

    #[test]
    fn comment_markers_appear_with_configured_rates() {
        let mut rng = Pcg32::new(3, 3);
        let special = (0..2000)
            .filter(|_| order_comment(&mut rng).contains("special"))
            .count();
        assert!((40..200).contains(&special), "special rate: {special}/2000");
        let complaints = (0..2000)
            .filter(|_| supplier_comment(&mut rng).contains("Complaints"))
            .count();
        assert!(
            (10..100).contains(&complaints),
            "complaints rate: {complaints}/2000"
        );
    }

    #[test]
    fn q9_and_q20_colors_present() {
        assert!(COLORS.contains(&"green"));
        assert!(COLORS.contains(&"forest"));
    }

    #[test]
    fn deterministic_output() {
        let mut a = Pcg32::new(9, 9);
        let mut b = Pcg32::new(9, 9);
        assert_eq!(part_name(&mut a), part_name(&mut b));
        assert_eq!(address(&mut a), address(&mut b));
        assert_eq!(comment(&mut a), comment(&mut b));
    }
}
