//! Per-table row generation.
//!
//! Each row is produced from a PCG substream keyed by `(table tag, primary
//! key)`, making generation order-independent and reproducible. Application
//! periods are derived from the generated time attributes (paper §4.1);
//! customer visibility uses a Zipf-skewed offset so the application-time
//! dimension is non-uniform, as the benchmark requires (§3: "The data also
//! features non-uniform distributions along the application time
//! dimension").

use crate::schema::table_defs;
use crate::text;
use crate::{ScaleConfig, LAST_ORDER_DATE, START_DATE};
use bitempo_core::{AppDate, AppPeriod, Pcg32, Period, Row, TableDef, Value};

/// TPC-H CURRENTDATE (1995-06-17), used for order status derivation.
pub const CURRENT_DATE: AppDate = AppDate::from_ymd(1995, 6, 17);

/// Substream tags per table.
mod tag {
    pub const SUPPLIER: u64 = 1 << 40;
    pub const CUSTOMER: u64 = 2 << 40;
    pub const PART: u64 = 3 << 40;
    pub const PARTSUPP: u64 = 4 << 40;
    pub const ORDERS: u64 = 5 << 40;
}

/// One generated table: definition plus rows with their application periods.
#[derive(Debug, Clone)]
pub struct GeneratedTable {
    /// Logical definition.
    pub def: TableDef,
    /// Rows paired with their application period (`None` for tables without
    /// a native application time).
    pub rows: Vec<(Row, Option<AppPeriod>)>,
}

/// The full version-0 population.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Tables in load order.
    pub tables: Vec<GeneratedTable>,
}

impl TpchData {
    /// The generated table named `name`. Panics on unknown names (static
    /// table set).
    pub fn table(&self, name: &str) -> &GeneratedTable {
        self.tables
            .iter()
            .find(|t| t.def.name == name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Total generated tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }
}

/// TPC-H retail price formula (4.2.3).
pub fn retail_price(partkey: i64) -> f64 {
    (90_000.0 + ((partkey / 10) % 20_001) as f64 + 100.0 * (partkey % 1_000) as f64) / 100.0
}

/// The `i`-th (0..=3) supplier of `partkey` among `s_count` suppliers
/// (TPC-H 4.2.3 PS_SUPPKEY formula).
pub fn supplier_of_part(partkey: i64, i: i64, s_count: i64) -> i64 {
    (partkey + i * (s_count / 4 + (partkey - 1) / s_count)) % s_count + 1
}

fn ints(v: i64) -> Value {
    Value::Int(v)
}

/// Generates all eight tables.
pub fn generate(config: &ScaleConfig) -> TpchData {
    let defs = table_defs();
    let root = Pcg32::new(config.seed, 0xB17E);
    let (orders, lineitems) = gen_orders_and_lineitems(config, &root);
    let mut orders = Some(orders);
    let mut lineitems = Some(lineitems);
    let mut tables = Vec::with_capacity(8);
    for def in defs {
        let rows = match def.name.as_str() {
            "region" => gen_region(),
            "nation" => gen_nation(),
            "supplier" => gen_supplier(config, &root),
            "customer" => gen_customer(config, &root),
            "part" => gen_part(config, &root),
            "partsupp" => gen_partsupp(config, &root),
            "orders" => orders.take().expect("orders generated once"),
            "lineitem" => lineitems.take().expect("lineitems generated once"),
            other => unreachable!("unknown table {other}"),
        };
        tables.push(GeneratedTable { def, rows });
    }
    TpchData { tables }
}

fn gen_region() -> Vec<(Row, Option<AppPeriod>)> {
    text::REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| (Row::new(vec![ints(i as i64), Value::str(*name)]), None))
        .collect()
}

fn gen_nation() -> Vec<(Row, Option<AppPeriod>)> {
    text::NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            (
                Row::new(vec![ints(i as i64), Value::str(*name), ints(*region)]),
                None,
            )
        })
        .collect()
}

fn gen_supplier(config: &ScaleConfig, root: &Pcg32) -> Vec<(Row, Option<AppPeriod>)> {
    (1..=config.suppliers() as i64)
        .map(|k| {
            let mut rng = root.derive_stream(tag::SUPPLIER | k as u64);
            let nation = rng.int_range(0, 24);
            let row = Row::new(vec![
                ints(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::str(text::address(&mut rng)),
                ints(nation),
                Value::str(text::phone(&mut rng, nation)),
                Value::Double(rng.int_range(-99_999, 999_999) as f64 / 100.0),
                Value::str(text::supplier_comment(&mut rng)),
            ]);
            (row, None) // degenerate table: no native application time
        })
        .collect()
}

fn gen_customer(config: &ScaleConfig, root: &Pcg32) -> Vec<(Row, Option<AppPeriod>)> {
    (1..=config.customers() as i64)
        .map(|k| {
            let mut rng = root.derive_stream(tag::CUSTOMER | k as u64);
            let nation = rng.int_range(0, 24);
            let row = Row::new(vec![
                ints(k),
                Value::str(format!("Customer#{k:09}")),
                Value::str(text::address(&mut rng)),
                ints(nation),
                Value::str(text::phone(&mut rng, nation)),
                Value::Double(rng.int_range(-99_999, 999_999) as f64 / 100.0),
                Value::str(*rng.pick(&text::SEGMENTS)),
            ]);
            // Non-uniform application time: most customers became visible
            // early in the TPC-H epoch (Zipf-skewed offset).
            let offset = rng.zipf(2_000, 1.05) as i64 - 1;
            let visible = Period::new(START_DATE.plus_days(offset), AppDate::MAX);
            (row, Some(visible))
        })
        .collect()
}

fn gen_part(config: &ScaleConfig, root: &Pcg32) -> Vec<(Row, Option<AppPeriod>)> {
    let span = LAST_ORDER_DATE.0 - START_DATE.0;
    (1..=config.parts() as i64)
        .map(|k| {
            let mut rng = root.derive_stream(tag::PART | k as u64);
            let mfgr = rng.int_range(1, 5);
            let brand = mfgr * 10 + rng.int_range(1, 5);
            let row = Row::new(vec![
                ints(k),
                Value::str(text::part_name(&mut rng)),
                Value::str(format!("Manufacturer#{mfgr}")),
                Value::str(format!("Brand#{brand}")),
                Value::str(format!(
                    "{} {} {}",
                    rng.pick(&text::TYPE_S1),
                    rng.pick(&text::TYPE_S2),
                    rng.pick(&text::TYPE_S3)
                )),
                ints(rng.int_range(1, 50)),
                Value::str(format!(
                    "{} {}",
                    rng.pick(&text::CONTAINER_S1),
                    rng.pick(&text::CONTAINER_S2)
                )),
                Value::Double(retail_price(k)),
            ]);
            // Parts become available somewhere in the first half of the
            // epoch and stay available.
            let avail_from = START_DATE.plus_days(rng.int_range(0, span / 2));
            (row, Some(Period::new(avail_from, AppDate::MAX)))
        })
        .collect()
}

fn gen_partsupp(config: &ScaleConfig, root: &Pcg32) -> Vec<(Row, Option<AppPeriod>)> {
    let s_count = config.suppliers() as i64;
    let span = LAST_ORDER_DATE.0 - START_DATE.0;
    let mut rows = Vec::with_capacity(config.parts() as usize * 4);
    for p in 1..=config.parts() as i64 {
        let mut used = [0i64; 4];
        for i in 0..4 {
            // The TPC-H formula can collide at tiny supplier counts; probe
            // forward deterministically to keep (partkey, suppkey) unique.
            let mut s = supplier_of_part(p, i, s_count);
            while used[..i as usize].contains(&s) {
                s = s % s_count + 1;
            }
            used[i as usize] = s;
            let mut rng = root.derive_stream(tag::PARTSUPP | ((p as u64) << 2) | i as u64);
            let row = Row::new(vec![
                ints(p),
                ints(s),
                ints(rng.int_range(1, 9_999)),
                Value::Double(rng.int_range(100, 100_000) as f64 / 100.0),
            ]);
            let valid_from = START_DATE.plus_days(rng.int_range(0, span / 2));
            rows.push((row, Some(Period::new(valid_from, AppDate::MAX))));
        }
    }
    rows
}

/// Rows of one generated table, paired with their application periods.
type TableRows = Vec<(Row, Option<AppPeriod>)>;

/// Orders and lineitems are generated together: the order's status, total
/// price and both application times derive from its lines.
fn gen_orders_and_lineitems(config: &ScaleConfig, root: &Pcg32) -> (TableRows, TableRows) {
    let customers = config.customers() as i64;
    let parts = config.parts() as i64;
    let suppliers = config.suppliers() as i64;
    let clerks = ((1_000.0 * config.h).round() as i64).max(1);
    let order_span = LAST_ORDER_DATE.0 - START_DATE.0;

    let n_orders = config.orders() as usize;
    let mut orders = Vec::with_capacity(n_orders);
    let mut lineitems = Vec::with_capacity(n_orders * 4);

    for ok in 1..=config.orders() as i64 {
        let mut rng = root.derive_stream(tag::ORDERS | ok as u64);
        let custkey = rng.int_range(1, customers);
        let orderdate = START_DATE.plus_days(rng.int_range(0, order_span));
        let n_lines = rng.int_range(1, 7);

        let mut total = 0.0;
        let mut last_receipt = orderdate;
        let mut shipped = 0;
        for ln in 1..=n_lines {
            let partkey = rng.int_range(1, parts);
            let suppkey = supplier_of_part(partkey, rng.int_range(0, 3), suppliers);
            let quantity = rng.int_range(1, 50) as f64;
            let extended = quantity * retail_price(partkey);
            let discount = rng.int_range(0, 10) as f64 / 100.0;
            let tax = rng.int_range(0, 8) as f64 / 100.0;
            let shipdate = orderdate.plus_days(rng.int_range(1, 121));
            let commitdate = orderdate.plus_days(rng.int_range(30, 90));
            let receiptdate = shipdate.plus_days(rng.int_range(1, 30));
            if receiptdate > last_receipt {
                last_receipt = receiptdate;
            }
            let is_shipped = shipdate <= CURRENT_DATE;
            if is_shipped {
                shipped += 1;
            }
            let returnflag = if receiptdate <= CURRENT_DATE {
                if rng.chance(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if is_shipped { "F" } else { "O" };
            total += extended * (1.0 + tax) * (1.0 - discount);
            let row = Row::new(vec![
                ints(ok),
                ints(partkey),
                ints(suppkey),
                ints(ln),
                Value::Double(quantity),
                Value::Double(extended),
                Value::Double(discount),
                Value::Double(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(*rng.pick(&text::INSTRUCTIONS)),
                Value::str(*rng.pick(&text::MODES)),
            ]);
            // A lineitem is "active" from shipment to receipt.
            lineitems.push((row, Some(Period::new(shipdate, receiptdate))));
        }

        let status = if shipped == n_lines {
            "F"
        } else if shipped == 0 {
            "O"
        } else {
            "P"
        };
        // active_time: placed → fully delivered (open for undelivered).
        let active_end = if status == "F" {
            last_receipt
        } else {
            AppDate::MAX
        };
        // receivable_time: invoiced at last receipt, paid after 10–60 days
        // (open while undelivered) — the second application time, stored as
        // plain columns.
        let (recv_start, recv_end) = if status == "F" {
            (last_receipt, last_receipt.plus_days(rng.int_range(10, 60)))
        } else {
            (last_receipt, AppDate::MAX)
        };
        let row = Row::new(vec![
            ints(ok),
            ints(custkey),
            Value::str(status),
            Value::Double((total * 100.0).round() / 100.0),
            Value::Date(orderdate),
            Value::str(*rng.pick(&text::PRIORITIES)),
            Value::str(format!("Clerk#{:09}", rng.int_range(1, clerks))),
            ints(0),
            Value::str(text::order_comment(&mut rng)),
            Value::Date(recv_start),
            Value::Date(recv_end),
        ]);
        orders.push((row, Some(Period::new(orderdate, active_end))));
    }
    (orders, lineitems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::col;

    fn data() -> TpchData {
        generate(&ScaleConfig::tiny())
    }

    #[test]
    fn cardinalities() {
        let d = data();
        assert_eq!(d.table("region").rows.len(), 5);
        assert_eq!(d.table("nation").rows.len(), 25);
        assert_eq!(d.table("supplier").rows.len(), 10);
        assert_eq!(d.table("customer").rows.len(), 150);
        assert_eq!(d.table("part").rows.len(), 200);
        assert_eq!(d.table("partsupp").rows.len(), 800);
        assert_eq!(d.table("orders").rows.len(), 1_500);
        let li = d.table("lineitem").rows.len();
        assert!((1_500..=10_500).contains(&li), "lineitems: {li}");
    }

    #[test]
    fn determinism_across_runs() {
        let a = data();
        let b = data();
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.rows, tb.rows, "table {}", ta.def.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ScaleConfig { h: 0.001, seed: 1 });
        let b = generate(&ScaleConfig { h: 0.001, seed: 2 });
        assert_ne!(a.table("customer").rows, b.table("customer").rows);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = data();
        let customers = d.table("customer").rows.len() as i64;
        let parts = d.table("part").rows.len() as i64;
        let suppliers = d.table("supplier").rows.len() as i64;
        for (row, _) in &d.table("orders").rows {
            let ck = row.get(col::orders::CUSTKEY).as_int().unwrap();
            assert!((1..=customers).contains(&ck));
        }
        for (row, _) in &d.table("lineitem").rows {
            let pk = row.get(col::lineitem::PARTKEY).as_int().unwrap();
            let sk = row.get(col::lineitem::SUPPKEY).as_int().unwrap();
            assert!((1..=parts).contains(&pk));
            assert!((1..=suppliers).contains(&sk));
        }
        for (row, _) in &d.table("partsupp").rows {
            let sk = row.get(col::partsupp::SUPPKEY).as_int().unwrap();
            assert!((1..=suppliers).contains(&sk));
        }
    }

    #[test]
    fn lineitem_date_ordering_and_app_period() {
        let d = data();
        for (row, app) in &d.table("lineitem").rows {
            let ship = row.get(col::lineitem::SHIPDATE).as_date().unwrap();
            let receipt = row.get(col::lineitem::RECEIPTDATE).as_date().unwrap();
            assert!(ship < receipt);
            let app = app.expect("lineitem is bitemporal");
            assert_eq!(app.start, ship);
            assert_eq!(app.end, receipt);
            assert!(!app.is_empty());
        }
    }

    #[test]
    fn order_status_consistent_with_lines() {
        let d = data();
        let mut f = 0;
        let mut o = 0;
        let mut p = 0;
        for (row, app) in &d.table("orders").rows {
            let status = row
                .get(col::orders::ORDERSTATUS)
                .as_str()
                .unwrap()
                .to_string();
            let app = app.expect("orders is bitemporal");
            match status.as_str() {
                "F" => {
                    f += 1;
                    assert_ne!(app.end, AppDate::MAX, "finished orders close");
                }
                "O" => {
                    o += 1;
                    assert_eq!(app.end, AppDate::MAX, "open orders stay open");
                }
                "P" => p += 1,
                other => panic!("unexpected status {other}"),
            }
            let total = row.get(col::orders::TOTALPRICE).as_double().unwrap();
            assert!(total > 0.0);
        }
        // TPC-H's date spread yields roughly half finished orders, some
        // open, and a small partial share.
        assert!(f > 0 && o > 0, "F = {f}, O = {o}, P = {p}");
        assert!(p < f, "partial orders are the minority");
    }

    #[test]
    fn customer_visibility_is_skewed_early() {
        let d = data();
        let offsets: Vec<i64> = d
            .table("customer")
            .rows
            .iter()
            .map(|(_, app)| app.unwrap().start.0 - START_DATE.0)
            .collect();
        let early = offsets.iter().filter(|&&o| o < 100).count();
        assert!(
            early * 2 > offsets.len(),
            "Zipf skew: {} of {} within 100 days",
            early,
            offsets.len()
        );
    }

    #[test]
    fn partsupp_keys_unique_and_linked() {
        let d = data();
        let mut seen = std::collections::HashSet::new();
        for (row, _) in &d.table("partsupp").rows {
            let pk = row.get(0).as_int().unwrap();
            let sk = row.get(1).as_int().unwrap();
            assert!(seen.insert((pk, sk)), "duplicate partsupp ({pk}, {sk})");
        }
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price(1), 901.00);
        assert_eq!(retail_price(5), 905.00);
        assert_eq!(retail_price(1_000), 901.00);
    }
}
