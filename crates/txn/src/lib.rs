//! # bitempo-txn
//!
//! The MVCC serving layer: interactive snapshot transactions over any of
//! the four engines, with first-committer-wins conflict detection and
//! WAL-backed durability (ROADMAP open item 1).
//!
//! The paper benchmarks single-threaded query streams, but its "ready for
//! the future" question is about serving concurrent mixed workloads. The
//! engines already are version stores ordered by commit time, so snapshot
//! isolation falls out of the bitemporal model itself: a transaction pins
//! the system time `T` of the latest commit at [`TxnManager::begin`], and
//! every read translates its system-time specification so only versions
//! committed at or before `T` are visible (`AS OF T` is the snapshot).
//!
//! **Concurrency model.** A [`std::sync::RwLock`] guards the engine:
//! snapshot reads share it, a committing writer takes it exclusively for
//! the short *validate → apply → log → commit* critical section — the
//! atomic publish point. Readers therefore never observe a partially
//! applied transaction: between commits there is no pending state at all,
//! and during one the writer holds the lock exclusively. Writes are
//! buffered in the [`Transaction`], so the writer's exclusive window is
//! proportional to the write set, never to the user's think time; the
//! expensive part of commit — waiting for group-commit durability — happens
//! *after* the lock is released, so concurrent committers amortize one
//! fsync ([`bitempo_wal::DurabilityWaiter`]).
//!
//! **Durable-log agreement.** Buffered ops are validated against the
//! cached [`TableDef`] as they are buffered (arity, temporal class, empty
//! periods, column bounds), so every deterministic apply failure surfaces
//! before commit even starts. At commit the ops are *applied first and
//! logged after*, still inside the exclusive section: a WAL record
//! therefore always describes a transaction that fully applied, which is
//! what lets [`bitempo_wal::recover`] replay every logged record. In both
//! failure directions the durable log and the reported outcome agree — a
//! failed apply logs nothing, and an append failure after apply poisons
//! the manager without a record, so recovery never resurrects a
//! transaction whose commit returned an error.
//!
//! **First-committer-wins.** Each buffered write contributes a
//! `(table, key, application-period)` entry to the transaction's write
//! set. Commit validation scans the records of transactions that committed
//! after the snapshot was pinned; any entry with the same table and key
//! whose application period overlaps aborts the committer with
//! [`bitempo_core::Error::Conflict`] before anything is logged or applied.
//! The caller re-runs the transaction against a fresh snapshot.
//!
//! **Snapshot contract.** A pinned snapshot guarantees the *row set*: every
//! read returns exactly the rows of the commit-prefix state at `T`. The
//! rendered system-period end of a version closed after `T` reflects the
//! later close (the engines store one period per version); row visibility
//! is unaffected, which is the isolation property the oracle tests check.

// Tests may unwrap freely; production serving-layer code must not (tblint
// TB010 for lock results, `clippy::unwrap_used` in Cargo.toml for the rest).
#![cfg_attr(test, allow(clippy::unwrap_used))]

use bitempo_core::{AppPeriod, Error, Key, Result, Row, SysTime, TableDef, TableId, Value};
use bitempo_engine::api::{
    AppSpec, BitemporalEngine, ColRange, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use bitempo_histgen::{apply_op, Op, Transaction as TxnOps};
use bitempo_wal::{Checkpoint, DurabilityWaiter, TxnWal};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

/// One write-set entry: the unit of first-committer-wins validation.
#[derive(Debug, Clone, PartialEq)]
struct WriteEntry {
    /// Table index (the archive's load-order index, as in [`Op`]).
    table: u8,
    /// Primary key touched.
    key: Key,
    /// Application-period range touched; two entries on the same key
    /// conflict only when these overlap (disjoint `FOR PORTION OF` writes
    /// to one key are serializable as-is).
    app: AppPeriod,
}

/// What one committed transaction wrote, kept for validating later
/// committers whose snapshots predate it.
#[derive(Debug, Clone)]
struct CommitRecord {
    /// Commit (system) time.
    ts: SysTime,
    /// The write set.
    writes: Vec<WriteEntry>,
}

/// Engine-side state under the manager's reader/writer lock.
struct EngineState {
    engine: Box<dyn BitemporalEngine>,
    ids: Vec<TableId>,
    /// Commit records newer than the oldest active pin, ascending by `ts`.
    commit_log: Vec<CommitRecord>,
    /// WAL records appended so far (0 when running without a WAL).
    applied_seq: u64,
    /// Set when an apply failed mid-transaction: the engine holds
    /// uncommitted partial state that has no rollback path. New
    /// transactions are refused and existing snapshots stop using the
    /// current-partition fast path (pending versions are visible there).
    poisoned: Option<String>,
}

/// Monotonic counters for the benchmark's `txn_*`/`conflict_*` series.
#[derive(Debug, Default)]
pub struct TxnCounters {
    /// Transactions committed (including read-only commits).
    pub committed: AtomicU64,
    /// Transactions aborted by first-committer-wins validation.
    pub conflicts: AtomicU64,
    /// Snapshots pinned by [`TxnManager::begin`].
    pub snapshots: AtomicU64,
    /// Snapshot pins released — by commit (at publish), rollback, or drop.
    /// Balances [`Self::snapshots`] once every transaction has resolved;
    /// the isolation suite asserts the two agree after each storm.
    pub released: AtomicU64,
}

/// The MVCC front-end over one engine. See the crate docs for the model.
pub struct TxnManager {
    state: RwLock<EngineState>,
    /// The commit log sink; `None` runs without durability (tests).
    wal: Mutex<Option<TxnWal>>,
    /// Active snapshot pins (`pin -> count`): the floor below which commit
    /// records can be pruned, maintained by [`Transaction`] drop.
    pins: Mutex<BTreeMap<SysTime, usize>>,
    /// Immutable table metadata, cached so write buffering never takes the
    /// state lock (a transaction may buffer while holding a [`Snapshot`],
    /// and `std`'s `RwLock` read-reentrancy can deadlock behind a queued
    /// writer).
    defs: Vec<TableDef>,
    /// Table ids in load order, mirroring `defs` (immutable).
    ids: Vec<TableId>,
    counters: TxnCounters,
}

impl TxnManager {
    /// Wraps a loaded engine. `ids` must be the engine's tables in archive
    /// load order (at most 256, the [`Op`] addressing limit); `wal`, when
    /// present, receives one record per committed writing transaction,
    /// encoded exactly as the durability driver's — [`bitempo_wal::recover`]
    /// replays interactive history and replayed history identically.
    ///
    /// A non-empty `wal` is adopted, not reset: sequence numbering
    /// continues from its last appended record, so checkpoints taken from
    /// this manager stay labelled with the exact WAL seq they cover. The
    /// caller must hand over an engine that already contains the effects
    /// of every record in the log (the WAL only ever records applied
    /// transactions).
    pub fn new(
        engine: Box<dyn BitemporalEngine>,
        ids: Vec<TableId>,
        wal: Option<TxnWal>,
    ) -> Result<TxnManager> {
        if ids.len() > 256 {
            return Err(Error::Invalid(format!(
                "op encoding addresses at most 256 tables, got {}",
                ids.len()
            )));
        }
        let defs = ids.iter().map(|&id| engine.table_def(id).clone()).collect();
        let applied_seq = wal.as_ref().map_or(0, |w| w.submitted_seq());
        Ok(TxnManager {
            state: RwLock::new(EngineState {
                engine,
                ids: ids.clone(),
                commit_log: Vec::new(),
                applied_seq,
                poisoned: None,
            }),
            wal: Mutex::new(wal),
            pins: Mutex::new(BTreeMap::new()),
            defs,
            ids,
            counters: TxnCounters::default(),
        })
    }

    /// The commit counters.
    pub fn counters(&self) -> &TxnCounters {
        &self.counters
    }

    /// Table ids in load order (the same order as at construction).
    pub fn table_ids(&self) -> &[TableId] {
        &self.ids
    }

    /// System time of the latest commit.
    pub fn now(&self) -> SysTime {
        self.state.read().expect("txn state poisoned").engine.now()
    }

    /// Begins a transaction pinned to the latest commit time. Reads through
    /// [`Transaction::snapshot`] see exactly that commit-prefix state;
    /// writes buffer locally until [`Transaction::commit`].
    pub fn begin(&self) -> Result<Transaction<'_>> {
        let pin = {
            let st = self.state.read().expect("txn state poisoned");
            if let Some(why) = &st.poisoned {
                return Err(Error::Internal(format!("txn manager poisoned: {why}")));
            }
            let pin = st.engine.now();
            // Register the pin while still holding the read lock, so no
            // concurrent committer can prune past it in between. The pin
            // registry is the innermost lock in the manager's hierarchy
            // (state -> wal -> pins); naming the guard keeps its region
            // explicit to readers and to tblint's guard-region scanner.
            let mut pins = self.pins.lock().expect("pin registry poisoned");
            *pins.entry(pin).or_insert(0) += 1;
            drop(pins);
            pin
        };
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(Transaction {
            mgr: self,
            pin,
            ops: Vec::new(),
            writes: Vec::new(),
            unpinned: false,
        })
    }

    /// Opens a read-only snapshot pinned at an explicit system time,
    /// without registering a pin or creating a [`Transaction`]. This is
    /// the cross-shard read seam: a cluster snapshot pins every shard at
    /// one oracle timestamp and reads each through the same sys-spec
    /// translation interactive snapshots use. Reading *committed history*
    /// needs no pin bookkeeping — pins only guard the first-committer-wins
    /// log, which read-only views never consult. `pin` may exceed the
    /// shard's local watermark (the shard simply has nothing newer yet);
    /// visibility is still exactly the commit-prefix at `pin`.
    pub fn snapshot_at(&self, pin: SysTime) -> Result<Snapshot<'_>> {
        let guard = self.state.read().expect("txn state poisoned");
        Ok(Snapshot {
            now: guard.engine.now(),
            degraded: guard.poisoned.is_some(),
            guard,
            pin,
        })
    }

    /// Captures a durability checkpoint of the current committed state,
    /// labelled with the exact WAL sequence number it covers. Runs under
    /// the *write* lock: a checkpoint can never interleave with a commit,
    /// so the transaction committing concurrently with checkpoint capture
    /// is either fully inside it (and `seq` covers its WAL record) or fully
    /// after it (and recovery replays it) — never half-captured.
    pub fn checkpoint(&self) -> Result<Checkpoint> {
        let mut st = self.state.write().expect("txn state poisoned");
        let EngineState {
            engine,
            ids,
            applied_seq,
            ..
        } = &mut *st;
        engine.checkpoint();
        Checkpoint::capture(engine.as_mut(), ids, *applied_seq)
    }

    /// Shuts the manager down: closes the WAL (surfacing any sink failure
    /// and the durable watermark) and returns the engine with its ids.
    pub fn close(self) -> Result<(Box<dyn BitemporalEngine>, Vec<TableId>, u64)> {
        let wal = self.wal.into_inner().expect("wal lock poisoned");
        let durable = match wal {
            Some(w) => w.close()?,
            None => 0,
        };
        let st = self.state.into_inner().expect("txn state poisoned");
        Ok((st.engine, st.ids, durable))
    }

    /// Number of currently registered snapshot pins (the pruning floor's
    /// population). Zero once every transaction has committed, rolled
    /// back, or dropped — the balance the isolation suite asserts.
    pub fn active_pins(&self) -> usize {
        let pins = self.pins.lock().expect("pin registry poisoned");
        pins.values().sum()
    }

    fn unpin(&self, pin: SysTime) {
        let mut pins = self.pins.lock().expect("pin registry poisoned");
        if let Some(n) = pins.get_mut(&pin) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&pin);
            }
        }
        drop(pins);
        self.counters.released.fetch_add(1, Ordering::Relaxed);
    }

    fn def_index(&self, table: TableId) -> Result<usize> {
        self.ids
            .iter()
            .position(|&id| id == table)
            .ok_or_else(|| Error::Invalid(format!("table {table:?} is not managed here")))
    }
}

/// An open transaction: a pinned snapshot plus locally buffered writes.
/// Dropping it without committing is a rollback.
pub struct Transaction<'a> {
    mgr: &'a TxnManager,
    pin: SysTime,
    /// Buffered operations, in execution order.
    ops: Vec<Op>,
    /// The write set the buffered ops will be validated under.
    writes: Vec<WriteEntry>,
    unpinned: bool,
}

impl<'a> Transaction<'a> {
    /// The snapshot's pinned system time.
    pub fn pin(&self) -> SysTime {
        self.pin
    }

    /// Opens the pinned snapshot for reading. Holds the manager's shared
    /// lock for the guard's lifetime — queries on it never block each
    /// other, and a committer waits only for guards currently open, not
    /// for the transaction's think time.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let guard = self.mgr.state.read().expect("txn state poisoned");
        Snapshot {
            now: guard.engine.now(),
            degraded: guard.poisoned.is_some(),
            guard,
            pin: self.pin,
        }
    }

    fn def_for(&self, table: TableId) -> Result<(u8, &TableDef)> {
        let idx = self.mgr.def_index(table)?;
        Ok((idx as u8, &self.mgr.defs[idx]))
    }

    /// Buffers an insert of `row` valid for `app`.
    pub fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let (t, def) = self.def_for(table)?;
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        check_app_period(def, app.as_ref(), "application period")?;
        self.writes.push(WriteEntry {
            table: t,
            key: Key::from_row(&row, &def.key),
            app: app.unwrap_or(AppPeriod::ALL),
        });
        self.ops.push(Op::Insert { table: t, row, app });
        Ok(())
    }

    /// Buffers a sequenced update of `key` for `portion`.
    pub fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<()> {
        let (t, def) = self.def_for(table)?;
        for (col, _) in updates {
            if *col >= def.schema.arity() {
                return Err(Error::Invalid(format!(
                    "update column {col} out of range for {} (arity {})",
                    def.name,
                    def.schema.arity()
                )));
            }
        }
        check_portion(def, portion.as_ref())?;
        self.writes.push(WriteEntry {
            table: t,
            key: key.clone(),
            app: portion.unwrap_or(AppPeriod::ALL),
        });
        self.ops.push(Op::Update {
            table: t,
            key: key.clone(),
            updates: updates
                .iter()
                .map(|(c, v)| (*c as u16, v.clone()))
                .collect(),
            portion,
        });
        Ok(())
    }

    /// Buffers a sequenced delete of `key` for `portion`.
    pub fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<()> {
        let (t, def) = self.def_for(table)?;
        check_portion(def, portion.as_ref())?;
        self.writes.push(WriteEntry {
            table: t,
            key: key.clone(),
            app: portion.unwrap_or(AppPeriod::ALL),
        });
        self.ops.push(Op::Delete {
            table: t,
            key: key.clone(),
            portion,
        });
        Ok(())
    }

    /// Buffers an application-period overwrite of `key`. Conservatively
    /// conflicts with any concurrent write to the key: the overwrite
    /// rewrites every visible version's period, so no portion is safe.
    pub fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<()> {
        let (t, def) = self.def_for(table)?;
        check_app_period(def, Some(&period), "application-period overwrite")?;
        self.writes.push(WriteEntry {
            table: t,
            key: key.clone(),
            app: AppPeriod::ALL,
        });
        self.ops.push(Op::OverwriteApp {
            table: t,
            key: key.clone(),
            period,
        });
        Ok(())
    }

    /// Discards the buffered writes and releases the snapshot pin —
    /// explicitly, so the release is symmetric with [`Self::commit`]'s
    /// release-at-publish rather than deferred to a later drop.
    pub fn rollback(mut self) {
        self.ops.clear();
        self.writes.clear();
        self.unpinned = true;
        self.mgr.unpin(self.pin);
    }

    /// Validates, applies, logs and publishes the buffered writes, then
    /// waits for the WAL's durability contract *outside* the publish lock.
    /// Returns the commit's system time (the pin itself for a read-only
    /// transaction, which neither validates nor logs anything).
    ///
    /// On [`Error::Conflict`] nothing was logged or applied; re-run the
    /// whole transaction against a fresh snapshot. On any other error,
    /// one of three states holds and the error says which: nothing applied
    /// (the validation and preflight paths); the manager is poisoned *and
    /// the WAL holds no record of this transaction* (apply/submit
    /// failures — recovery never replays a transaction whose commit
    /// reported failure); or, rarest, the record was published and written
    /// but the durability wait itself failed — the manager poisons
    /// fail-stop, because whether that tail survives a crash is unknown.
    pub fn commit(self) -> Result<SysTime> {
        let (ts, wait) = self.commit_submit(None)?;
        if let Some(wait) = wait {
            wait.wait()?;
        }
        Ok(ts)
    }

    /// [`Self::commit`] stamped with a cluster-issued global commit
    /// timestamp: the engine clock is advanced so the commit lands at
    /// exactly `gts`, and the WAL record carries `gts` so recovery
    /// re-stamps it identically. Returns the publish time plus the
    /// durability wait still owed — the sharded cluster publishes, drops
    /// its shard gate, and *then* waits, so one shard's fsync never
    /// serializes the others. Callers without their own locks to escape
    /// can simply `wait()` immediately.
    pub fn commit_at(self, gts: u64) -> Result<(SysTime, Option<CommitWait<'a>>)> {
        self.commit_submit(Some(gts))
    }

    /// The validate → preflight → apply → log → publish section shared by
    /// [`Self::commit`] and [`Self::commit_at`]; returns without waiting
    /// for durability.
    fn commit_submit(mut self, gts: Option<u64>) -> Result<(SysTime, Option<CommitWait<'a>>)> {
        if self.ops.is_empty() {
            self.mgr.counters.committed.fetch_add(1, Ordering::Relaxed);
            let pin = self.pin;
            self.unpinned = true;
            self.mgr.unpin(pin);
            return Ok((pin, None));
        }
        let ops = std::mem::take(&mut self.ops);
        let writes = std::mem::take(&mut self.writes);

        let mut st = self.mgr.state.write().expect("txn state poisoned");
        if let Some(why) = &st.poisoned {
            return Err(Error::Internal(format!("txn manager poisoned: {why}")));
        }

        // First-committer-wins: compare against every record committed
        // after this snapshot was pinned (the log is ascending in `ts`).
        for rec in st.commit_log.iter().rev() {
            if rec.ts <= self.pin {
                break;
            }
            for theirs in &rec.writes {
                for ours in &writes {
                    if theirs.table == ours.table
                        && theirs.key == ours.key
                        && theirs.app.overlaps(&ours.app)
                    {
                        self.mgr.counters.conflicts.fetch_add(1, Ordering::Relaxed);
                        return Err(Error::Conflict(format!(
                            "table {} key {} app {:?}: written by the transaction \
                             committed at {} after this snapshot's pin {}",
                            theirs.table, theirs.key, theirs.app, rec.ts, self.pin
                        )));
                    }
                }
            }
        }

        // Pre-flight the sequenced ops so the overwhelmingly common apply
        // failure — a vanished key — aborts *before* the engine is touched
        // (the engines have no rollback). Keys this transaction inserts
        // itself count as present.
        preflight(&st, &ops)?;

        // Encode the WAL payload up front: encoding is pure on the
        // buffered ops, so a failure here aborts cleanly, pre-apply.
        let payload = {
            let wal = self.mgr.wal.lock().expect("wal lock poisoned");
            match wal.as_ref() {
                Some(_) => {
                    let body = TxnOps {
                        scenarios: Vec::new(),
                        ops: ops.clone(),
                    };
                    // A plain commit keeps the raw archive framing PR 7
                    // recovery already replays; a cluster commit wraps it
                    // so recovery re-stamps the commit at `gts`.
                    Some(match gts {
                        Some(g) => bitempo_wal::encode_committed_at(g, &body)?,
                        None => bitempo_histgen::encode_txn(&body)?,
                    })
                }
                None => None,
            }
        };

        // Apply before logging: a record only enters the WAL once its
        // transaction has fully applied, so recovery can replay every
        // logged record. An apply failure past preflight leaves
        // unpublishable partial state (no rollback), so it poisons the
        // manager — with nothing logged, the durable history still agrees
        // with the reported failure.
        let EngineState {
            engine,
            ids,
            poisoned,
            applied_seq,
            ..
        } = &mut *st;
        // Cluster commits land at the oracle's global timestamp: advance
        // the shard clock first so the ops' version stamps (`now.next()`)
        // and the commit itself all carry `gts`, byte-identical to a
        // single-engine serial history at the same timestamps.
        if let Some(g) = gts {
            debug_assert!(
                g > engine.now().0,
                "oracle timestamps are unique and ascending"
            );
            engine.advance_clock(SysTime(g.saturating_sub(1)));
        }
        for op in &ops {
            if let Err(e) = apply_op(engine.as_mut(), ids, op) {
                *poisoned = Some(format!("apply failed mid-transaction: {e}"));
                return Err(Error::Internal(format!(
                    "transaction half-applied, manager poisoned: {e}"
                )));
            }
        }

        // Log after apply, still inside the exclusive section, so WAL
        // order is commit order (same encode_txn framing as the durability
        // replay driver — recovery replays interactive history through
        // the same dispatch). `submit` writes the frame without syncing:
        // the fsync belongs to the waiter below, *outside* every lock, so
        // a strict-mode sync never serializes readers behind the disk
        // (tblint TB008). A submit failure here poisons: the applied state
        // cannot be rolled back and must not publish as committed, and
        // since the record never landed, recovery excludes the transaction
        // exactly as the returned error reports.
        let mut waiter: Option<(DurabilityWaiter, u64)> = None;
        if let Some(payload) = payload {
            let mut wal = self.mgr.wal.lock().expect("wal lock poisoned");
            let w = wal.as_mut().expect("wal vanished mid-commit");
            match w.submit(&payload) {
                Ok(seq) => {
                    debug_assert_eq!(seq, *applied_seq + 1, "WAL order must be commit order");
                    waiter = Some((w.waiter(), seq));
                }
                Err(e) => {
                    *poisoned = Some(format!("WAL submit failed after apply: {e}"));
                    return Err(Error::Internal(format!(
                        "transaction applied but not logged, manager poisoned: {e}"
                    )));
                }
            }
        }
        let ts = engine.commit();
        debug_assert!(
            gts.is_none_or(|g| ts.0 == g),
            "a cluster commit must land exactly at its oracle timestamp"
        );
        *applied_seq = match &waiter {
            Some((_, seq)) => *seq,
            None => *applied_seq + 1,
        };
        st.commit_log.push(CommitRecord { ts, writes });

        // Prune commit records no active snapshot can still conflict with.
        let floor = {
            let pins = self.mgr.pins.lock().expect("pin registry poisoned");
            pins.keys().next().copied().unwrap_or(ts)
        };
        if st.commit_log.first().is_some_and(|r| r.ts <= floor) {
            st.commit_log.retain(|r| r.ts > floor);
        }
        drop(st);

        // Release the snapshot pin at publish, not at drop: the pin is a
        // pruning floor, and the durability wait ahead can be as long as
        // an fsync. Rollback and drop release the same way, so pin
        // accounting stays balanced on every path (the isolation suite
        // asserts released == snapshots after each storm).
        self.unpinned = true;
        self.mgr.unpin(self.pin);
        self.mgr.counters.committed.fetch_add(1, Ordering::Relaxed);
        // The durability wait belongs outside every lock. Under `Batched`,
        // concurrent committers park in `wait()` together and one flusher
        // fsync acks them all; under `Strict`, the waiter performs the
        // deferred fsync itself — still amortized, because one waiter's
        // sync covers everything submitted before it ran. Either way
        // readers are never stuck behind the disk.
        let wait = waiter.map(|(waiter, seq)| CommitWait {
            mgr: self.mgr,
            waiter,
            seq,
        });
        Ok((ts, wait))
    }

    /// First half of a cross-shard two-phase commit on this shard:
    /// validates and preflights the buffered ops exactly as commit would,
    /// then logs a *prepare* record — the full op payload tagged with the
    /// global transaction id and its oracle commit timestamp — without
    /// applying anything. The caller must hold this shard's commit gate
    /// from before `prepare` until the decision, wait on
    /// [`PreparedTxn::wait_prepared`] for every participant, and only then
    /// decide. An undecided prepare is *presumed aborted* by recovery, so
    /// crashing here loses nothing and resurrects nothing.
    ///
    /// `gts` doubles as the global transaction id: oracle timestamps are
    /// unique, and carrying the same value in the prepare and decision
    /// records is what lets recovery match them up.
    pub fn prepare(mut self, gts: u64) -> Result<PreparedTxn<'a>> {
        if self.ops.is_empty() {
            return Err(Error::Invalid(
                "nothing to prepare: this shard is not a participant".into(),
            ));
        }
        let ops = std::mem::take(&mut self.ops);
        let writes = std::mem::take(&mut self.writes);

        {
            let st = self.mgr.state.read().expect("txn state poisoned");
            if let Some(why) = &st.poisoned {
                return Err(Error::Internal(format!("txn manager poisoned: {why}")));
            }
            // First-committer-wins against this shard's own log — under a
            // held gate this can't fire, but prepare keeps the same
            // defensive contract as commit.
            for rec in st.commit_log.iter().rev() {
                if rec.ts <= self.pin {
                    break;
                }
                for theirs in &rec.writes {
                    for ours in &writes {
                        if theirs.table == ours.table
                            && theirs.key == ours.key
                            && theirs.app.overlaps(&ours.app)
                        {
                            self.mgr.counters.conflicts.fetch_add(1, Ordering::Relaxed);
                            return Err(Error::Conflict(format!(
                                "table {} key {} app {:?}: written at {} after pin {}",
                                theirs.table, theirs.key, theirs.app, rec.ts, self.pin
                            )));
                        }
                    }
                }
            }
            preflight(&st, &ops)?;
        }

        // Log the prepare record. Unlike a commit record this describes a
        // transaction that has *not* applied — that is the point: it makes
        // the ops durable before any shard applies, so a crash between
        // shards can always finish (or presume-abort) the transaction.
        let mut logged = None;
        let payload = {
            let wal = self.mgr.wal.lock().expect("wal lock poisoned");
            match wal.as_ref() {
                Some(_) => Some(bitempo_wal::encode_prepare(
                    gts,
                    gts,
                    &TxnOps {
                        scenarios: Vec::new(),
                        ops: ops.clone(),
                    },
                )?),
                None => None,
            }
        };
        if let Some(payload) = payload {
            let mut wal = self.mgr.wal.lock().expect("wal lock poisoned");
            let w = wal.as_mut().expect("wal vanished mid-prepare");
            match w.submit(&payload) {
                Ok(seq) => logged = Some((w.waiter(), seq)),
                Err(e) => {
                    // Nothing applied, but the WAL stream's integrity is
                    // now unknown (a torn frame mid-log would silently
                    // truncate every later record at recovery). Fail-stop,
                    // exactly like a commit-path submit failure.
                    drop(wal);
                    let mut st = self.mgr.state.write().expect("txn state poisoned");
                    if st.poisoned.is_none() {
                        st.poisoned = Some(format!("WAL submit failed during prepare: {e}"));
                    }
                    return Err(Error::Internal(format!(
                        "prepare not logged, manager poisoned: {e}"
                    )));
                }
            }
        }
        let pin = self.pin;
        self.unpinned = true; // ownership of the pin moves to PreparedTxn
        Ok(PreparedTxn {
            mgr: self.mgr,
            pin,
            gts,
            ops,
            writes,
            logged,
            unpinned: false,
        })
    }
}

/// The durability wait a publish still owes. Dropping it without calling
/// [`Self::wait`] skips the wait entirely — callers that need the
/// durability contract must call it.
#[must_use = "the commit is published but not yet durable: call wait()"]
pub struct CommitWait<'a> {
    mgr: &'a TxnManager,
    waiter: DurabilityWaiter,
    seq: u64,
}

impl CommitWait<'_> {
    /// The WAL sequence number the wait covers.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the record is durable under the WAL's mode. On
    /// failure the record is published and written but its durability is
    /// unknown (the fsync failed or the flusher died), so the in-memory
    /// state may be ahead of what the log preserves. Fail-stop: the
    /// manager poisons rather than letting later commits build on a
    /// possibly-lost prefix — the one honest ambiguity in the protocol.
    pub fn wait(self) -> Result<()> {
        if let Err(e) = self.waiter.wait_for(self.seq) {
            let mut st = self.mgr.state.write().expect("txn state poisoned");
            if st.poisoned.is_none() {
                st.poisoned = Some(format!("durability wait failed after publish: {e}"));
            }
            return Err(Error::Internal(format!(
                "commit published but durability is unknown, manager poisoned: {e}"
            )));
        }
        Ok(())
    }
}

/// A transaction prepared on this shard: ops validated and durably
/// logged, nothing applied. Resolved by [`Self::commit`] or
/// [`Self::abort`]; dropping it unresolved releases the pin but logs no
/// decision — recovery then presumes abort, which is also what
/// [`Self::abort`] makes explicit.
pub struct PreparedTxn<'a> {
    mgr: &'a TxnManager,
    pin: SysTime,
    gts: u64,
    ops: Vec<Op>,
    writes: Vec<WriteEntry>,
    /// Prepare-record durability handle (`None` without a WAL).
    logged: Option<(DurabilityWaiter, u64)>,
    unpinned: bool,
}

impl<'a> PreparedTxn<'a> {
    /// The global commit timestamp (and transaction id) this prepare
    /// carries.
    pub fn gts(&self) -> u64 {
        self.gts
    }

    /// Blocks until the prepare record is durable under the shard's WAL
    /// mode — the barrier every participant must pass before any shard
    /// may decide commit. A failure here is clean: nothing applied, no
    /// decision logged, the caller aborts all participants.
    pub fn wait_prepared(&self) -> Result<()> {
        if let Some((waiter, seq)) = &self.logged {
            waiter
                .wait_for(*seq)
                .map_err(|e| Error::Internal(format!("prepare durability wait failed: {e}")))?;
        }
        Ok(())
    }

    /// Applies the prepared ops, logs the commit decision, and publishes
    /// at exactly the prepared `gts`. Mirrors the single-shard commit
    /// tail: apply failures poison fail-stop (the decision stands on
    /// shards that already committed — this shard is the casualty, not
    /// the transaction).
    pub fn commit(mut self) -> Result<(SysTime, Option<CommitWait<'a>>)> {
        let ops = std::mem::take(&mut self.ops);
        let writes = std::mem::take(&mut self.writes);
        let gts = self.gts;

        let mut st = self.mgr.state.write().expect("txn state poisoned");
        if let Some(why) = &st.poisoned {
            return Err(Error::Internal(format!("txn manager poisoned: {why}")));
        }
        let EngineState {
            engine,
            ids,
            poisoned,
            applied_seq,
            ..
        } = &mut *st;
        engine.advance_clock(SysTime(gts.saturating_sub(1)));
        for op in &ops {
            if let Err(e) = apply_op(engine.as_mut(), ids, op) {
                *poisoned = Some(format!("apply failed mid-decision: {e}"));
                return Err(Error::Internal(format!(
                    "decision half-applied, manager poisoned: {e}"
                )));
            }
        }
        // The decision record follows apply, like a commit record: it only
        // lands once this shard holds the transaction's full effects.
        let mut waiter = None;
        if self.logged.is_some() {
            let mut wal = self.mgr.wal.lock().expect("wal lock poisoned");
            let w = wal.as_mut().expect("wal vanished mid-decision");
            match w.submit(&bitempo_wal::encode_decision(gts, gts, true)) {
                Ok(seq) => {
                    *applied_seq = seq;
                    waiter = Some((w.waiter(), seq));
                }
                Err(e) => {
                    *poisoned = Some(format!("WAL submit failed for commit decision: {e}"));
                    return Err(Error::Internal(format!(
                        "decision applied but not logged, manager poisoned: {e}"
                    )));
                }
            }
        }
        let ts = engine.commit();
        debug_assert_eq!(ts.0, gts, "decisions land exactly at the oracle timestamp");
        st.commit_log.push(CommitRecord { ts, writes });
        let floor = {
            let pins = self.mgr.pins.lock().expect("pin registry poisoned");
            pins.keys().next().copied().unwrap_or(ts)
        };
        if st.commit_log.first().is_some_and(|r| r.ts <= floor) {
            st.commit_log.retain(|r| r.ts > floor);
        }
        drop(st);

        self.unpinned = true;
        self.mgr.unpin(self.pin);
        self.mgr.counters.committed.fetch_add(1, Ordering::Relaxed);
        let wait = waiter.map(|(waiter, seq)| CommitWait {
            mgr: self.mgr,
            waiter,
            seq,
        });
        Ok((ts, wait))
    }

    /// Logs an explicit abort decision (recovery would presume it anyway;
    /// the record just spares the scan) and releases the pin. Applies
    /// nothing.
    pub fn abort(self) -> Result<()> {
        if self.logged.is_some() {
            let mut wal = self.mgr.wal.lock().expect("wal lock poisoned");
            let w = wal.as_mut().expect("wal vanished mid-abort");
            match w.submit(&bitempo_wal::encode_decision(self.gts, self.gts, false)) {
                Ok(seq) => {
                    drop(wal);
                    let mut st = self.mgr.state.write().expect("txn state poisoned");
                    st.applied_seq = seq;
                }
                Err(e) => {
                    drop(wal);
                    let mut st = self.mgr.state.write().expect("txn state poisoned");
                    if st.poisoned.is_none() {
                        st.poisoned = Some(format!("WAL submit failed for abort decision: {e}"));
                    }
                    return Err(Error::Internal(format!(
                        "abort decision not logged, manager poisoned: {e}"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Drop for PreparedTxn<'_> {
    fn drop(&mut self) {
        if !self.unpinned {
            self.unpinned = true;
            self.mgr.unpin(self.pin);
        }
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.unpinned {
            self.unpinned = true;
            self.mgr.unpin(self.pin);
        }
    }
}

/// Buffer-time twin of the engines' deterministic period validation: a
/// given period on a table without application time is [`Error::Unsupported`],
/// an empty one is [`Error::EmptyPeriod`]. Running this before an op enters
/// the buffer means a malformed op can never reach the apply loop, where a
/// deterministic failure would poison the manager.
fn check_app_period(def: &TableDef, period: Option<&AppPeriod>, what: &str) -> Result<()> {
    match period {
        Some(_) if def.temporal != bitempo_core::TemporalClass::Bitemporal => {
            Err(Error::Unsupported(format!(
                "{what} on table {} without application time",
                def.name
            )))
        }
        Some(p) if p.is_empty() => Err(Error::EmptyPeriod(format!("{p}"))),
        _ => Ok(()),
    }
}

/// The portion variant of [`check_app_period`]: sequenced DML with an empty
/// portion is an engine-level no-op (it overlaps nothing), not an error, so
/// only the temporal-class check applies here.
fn check_portion(def: &TableDef, portion: Option<&AppPeriod>) -> Result<()> {
    if portion.is_some() && def.temporal != bitempo_core::TemporalClass::Bitemporal {
        return Err(Error::Unsupported(format!(
            "FOR PORTION OF on table {} without application time",
            def.name
        )));
    }
    Ok(())
}

/// Checks that every sequenced op's key is visible (or created earlier in
/// the same transaction), so apply cannot fail on a vanished key.
fn preflight(st: &EngineState, ops: &[Op]) -> Result<()> {
    let mut fresh: Vec<(u8, &Key)> = Vec::new();
    let mut fresh_rows: Vec<(u8, Key)> = Vec::new();
    for op in ops {
        match op {
            Op::Insert { table, row, .. } => {
                let def = st.engine.table_def(st.ids[*table as usize]);
                fresh_rows.push((*table, Key::from_row(row, &def.key)));
            }
            Op::Update { table, key, .. }
            | Op::Delete { table, key, .. }
            | Op::OverwriteApp { table, key, .. } => {
                let created = fresh.iter().any(|(t, k)| t == table && *k == key)
                    || fresh_rows.iter().any(|(t, k)| t == table && k == key);
                if !created {
                    let out = st.engine.lookup_key(
                        st.ids[*table as usize],
                        key,
                        &SysSpec::Current,
                        &AppSpec::All,
                    )?;
                    if out.rows.is_empty() {
                        return Err(Error::KeyNotFound(format!("{key} in table index {table}")));
                    }
                    fresh.push((*table, key));
                }
            }
        }
    }
    Ok(())
}

/// A read guard over the pinned snapshot. Obtain per query burst and drop
/// promptly: open guards are what a committer waits for.
pub struct Snapshot<'a> {
    guard: RwLockReadGuard<'a, EngineState>,
    pin: SysTime,
    /// The engine's commit watermark while this guard is held (constant:
    /// the guard excludes writers).
    now: SysTime,
    degraded: bool,
}

impl Snapshot<'_> {
    /// True when the owning manager is poisoned. The snapshot still
    /// serves the committed prefix (with the current-partition fast path
    /// disabled), but a poisoned *shard* may sit on the wrong side of a
    /// decided cross-shard commit its healthy siblings already show —
    /// cluster readers must treat a degraded member as fail-stop rather
    /// than assemble a non-atomic cut from it.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The read-only engine view at the pinned time. Implements the full
    /// [`BitemporalEngine`] read surface, so the workload query classes run
    /// on a snapshot exactly as they run on a raw engine.
    pub fn view(&self) -> SnapshotView<'_> {
        SnapshotView {
            engine: self.guard.engine.as_ref(),
            pin: self.pin,
            // The current-partition fast path is sound only when the pin
            // is at (or past — a shard lagging the global oracle clock)
            // the newest commit and no poisoned pending state lingers.
            current_ok: self.pin >= self.now && !self.degraded,
        }
    }
}

/// [`BitemporalEngine`] adapter that rewrites every system-time
/// specification to the pinned snapshot. DML and schema changes are
/// rejected — writes go through [`Transaction`] buffering.
pub struct SnapshotView<'a> {
    engine: &'a dyn BitemporalEngine,
    pin: SysTime,
    current_ok: bool,
}

impl SnapshotView<'_> {
    /// Rewrites `sys` so only versions committed at or before the pin are
    /// visible. See the crate docs for the row-visibility argument.
    fn sys_at_pin(&self, sys: &SysSpec) -> SysSpec {
        let t = self.pin;
        match sys {
            SysSpec::Current => {
                if self.current_ok {
                    SysSpec::Current
                } else {
                    SysSpec::AsOf(t)
                }
            }
            SysSpec::AsOf(x) => SysSpec::AsOf((*x).min(t)),
            // Half-open: end `t.next()` includes versions committed at
            // exactly `t` and excludes everything later.
            SysSpec::All => SysSpec::Range(bitempo_core::Period::new(SysTime::ZERO, t.next())),
            SysSpec::Range(p) => {
                let end = p.end.min(t.next());
                SysSpec::Range(bitempo_core::Period::new(p.start.min(end), end))
            }
        }
    }

    fn read_only_err<T>(&self, what: &str) -> Result<T> {
        Err(Error::Unsupported(format!(
            "{what} on a pinned snapshot: buffer writes on the Transaction instead"
        )))
    }
}

impl BitemporalEngine for SnapshotView<'_> {
    fn name(&self) -> &'static str {
        self.engine.name()
    }

    fn architecture(&self) -> &'static str {
        self.engine.architecture()
    }

    fn create_table(&mut self, _def: TableDef) -> Result<TableId> {
        self.read_only_err("create_table")
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.engine.resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.engine.table_names()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.engine.table_def(table)
    }

    fn apply_tuning(&mut self, _tuning: &TuningConfig) -> Result<()> {
        self.read_only_err("apply_tuning")
    }

    fn insert(&mut self, _table: TableId, _row: Row, _app: Option<AppPeriod>) -> Result<()> {
        self.read_only_err("insert")
    }

    fn update(
        &mut self,
        _table: TableId,
        _key: &Key,
        _updates: &[(usize, Value)],
        _portion: Option<AppPeriod>,
    ) -> Result<usize> {
        self.read_only_err("update")
    }

    fn delete(
        &mut self,
        _table: TableId,
        _key: &Key,
        _portion: Option<AppPeriod>,
    ) -> Result<usize> {
        self.read_only_err("delete")
    }

    fn overwrite_app_period(
        &mut self,
        _table: TableId,
        _key: &Key,
        _period: AppPeriod,
    ) -> Result<usize> {
        self.read_only_err("overwrite_app_period")
    }

    /// A snapshot has nothing to commit; its "commit time" is the pin.
    fn commit(&mut self) -> SysTime {
        self.pin
    }

    /// The snapshot's frozen notion of "now" — the pin, so any query that
    /// derives parameters from the commit watermark stays inside it.
    fn now(&self) -> SysTime {
        self.pin
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        self.engine.scan(table, &self.sys_at_pin(sys), app, preds)
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        self.engine
            .lookup_key(table, key, &self.sys_at_pin(sys), app)
    }

    fn stats(&self, table: TableId) -> TableStats {
        self.engine.stats(table)
    }

    fn snapshot_versions(&self, _table: TableId) -> Result<Vec<bitempo_engine::version::Version>> {
        self.read_only_err("snapshot_versions")
    }

    fn restore(
        &mut self,
        _table: TableId,
        _versions: Vec<bitempo_engine::version::Version>,
        _now: SysTime,
    ) -> Result<()> {
        self.read_only_err("restore")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::fault::{FaultKind, FaultPlan, FaultyWriter};
    use bitempo_core::AppDate;
    use bitempo_engine::testutil::{bitemp_table, plain_table, simple_row};
    use bitempo_engine::{build_engine, SystemKind};
    use bitempo_histgen::encode_txn;
    use bitempo_storage::DurabilityMode;
    use bitempo_wal::{canonical_state, recover, SharedBuf};

    /// One bitemporal table with rows (1, 10) and (2, 20), committed.
    fn manager(kind: SystemKind, wal: Option<TxnWal>) -> TxnManager {
        let mut engine = build_engine(kind);
        let t = engine.create_table(bitemp_table("t")).unwrap();
        engine.insert(t, simple_row(1, 10), None).unwrap();
        engine.insert(t, simple_row(2, 20), None).unwrap();
        engine.commit();
        TxnManager::new(engine, vec![t], wal).unwrap()
    }

    fn current_ids(view: &SnapshotView<'_>, t: TableId) -> Vec<i64> {
        let mut ids: Vec<i64> = view
            .scan(t, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected key {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn snapshot_is_stable_across_a_concurrent_commit() {
        for kind in SystemKind::ALL {
            let mgr = manager(kind, None);
            let t = mgr.table_ids()[0];
            let reader = mgr.begin().unwrap();

            let mut writer = mgr.begin().unwrap();
            writer.insert(t, simple_row(3, 30), None).unwrap();
            let ts = writer.commit().unwrap();
            assert!(ts > reader.pin(), "{kind}: commit advanced system time");

            // The old snapshot still answers from its pin...
            let snap = reader.snapshot();
            assert_eq!(current_ids(&snap.view(), t), vec![1, 2], "{kind}");
            drop(snap);
            // ...while a fresh one sees the commit.
            let fresh = mgr.begin().unwrap();
            let snap = fresh.snapshot();
            assert_eq!(current_ids(&snap.view(), t), vec![1, 2, 3], "{kind}");
        }
    }

    #[test]
    fn first_committer_wins_and_the_loser_aborts_cleanly() {
        let mgr = manager(SystemKind::A, None);
        let t = mgr.table_ids()[0];

        let mut first = mgr.begin().unwrap();
        let mut second = mgr.begin().unwrap();
        first
            .update(t, &Key::int(1), &[(1, Value::Int(11))], None)
            .unwrap();
        second
            .update(t, &Key::int(1), &[(1, Value::Int(12))], None)
            .unwrap();
        first.commit().unwrap();
        match second.commit() {
            Err(Error::Conflict(_)) => {}
            other => panic!("expected a conflict, got {other:?}"),
        }
        assert_eq!(mgr.counters().conflicts.load(Ordering::Relaxed), 1);

        // The aborted write never published: the winner's value stands.
        let txn = mgr.begin().unwrap();
        let snap = txn.snapshot();
        let out = snap
            .view()
            .lookup_key(t, &Key::int(1), &SysSpec::Current, &AppSpec::All)
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(1), &Value::Int(11));
    }

    #[test]
    fn disjoint_portions_of_one_key_do_not_conflict() {
        let mgr = manager(SystemKind::A, None);
        let t = mgr.table_ids()[0];
        let early = AppPeriod::new(AppDate(0), AppDate(10));
        let late = AppPeriod::new(AppDate(10), AppDate(20));

        let mut a = mgr.begin().unwrap();
        let mut b = mgr.begin().unwrap();
        a.update(t, &Key::int(2), &[(1, Value::Int(21))], Some(early))
            .unwrap();
        b.update(t, &Key::int(2), &[(1, Value::Int(22))], Some(late))
            .unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(mgr.counters().conflicts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_translation_caps_every_sys_spec_at_the_pin() {
        let mgr = manager(SystemKind::B, None);
        let t = mgr.table_ids()[0];
        let pinned = mgr.begin().unwrap();

        let mut w = mgr.begin().unwrap();
        w.insert(t, simple_row(3, 30), None).unwrap();
        w.commit().unwrap();

        let snap = pinned.snapshot();
        let view = snap.view();
        // AS OF a future time clamps to the pin.
        let future = SysSpec::AsOf(SysTime(u64::MAX - 1));
        let rows = view.scan(t, &future, &AppSpec::All, &[]).unwrap().rows;
        assert_eq!(rows.len(), 2, "the post-pin insert stays invisible");
        // ALL and RANGE are right-clamped the same way.
        let rows = view
            .scan(t, &SysSpec::All, &AppSpec::All, &[])
            .unwrap()
            .rows;
        assert_eq!(rows.len(), 2);
        let range = SysSpec::Range(bitempo_core::Period::new(SysTime::ZERO, SysTime(u64::MAX)));
        let rows = view.scan(t, &range, &AppSpec::All, &[]).unwrap().rows;
        assert_eq!(rows.len(), 2);
        // now() is frozen at the pin.
        assert_eq!(view.now(), pinned.pin());
    }

    #[test]
    fn snapshot_view_rejects_dml_and_schema_changes() {
        let mgr = manager(SystemKind::C, None);
        let t = mgr.table_ids()[0];
        let txn = mgr.begin().unwrap();
        let snap = txn.snapshot();
        let mut view = snap.view();
        assert!(matches!(
            view.insert(t, simple_row(9, 9), None),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            view.delete(t, &Key::int(1), None),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            view.create_table(bitemp_table("u")),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn vanished_key_aborts_before_anything_applies() {
        let mgr = manager(SystemKind::A, None);
        let t = mgr.table_ids()[0];
        let mut txn = mgr.begin().unwrap();
        txn.insert(t, simple_row(7, 70), None).unwrap();
        txn.update(t, &Key::int(999), &[(1, Value::Int(0))], None)
            .unwrap();
        match txn.commit() {
            Err(Error::KeyNotFound(_)) => {}
            other => panic!("expected KeyNotFound, got {other:?}"),
        }
        // The insert buffered before the bad op must not have leaked.
        let txn = mgr.begin().unwrap();
        let snap = txn.snapshot();
        assert_eq!(current_ids(&snap.view(), t), vec![1, 2]);
    }

    #[test]
    fn read_only_commit_returns_the_pin_without_logging() {
        let buf = SharedBuf::new();
        let wal = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).unwrap();
        let mgr = manager(SystemKind::D, Some(wal));
        let txn = mgr.begin().unwrap();
        let pin = txn.pin();
        assert_eq!(txn.commit().unwrap(), pin);
        let (_, _, durable) = mgr.close().unwrap();
        assert_eq!(durable, 0, "read-only commits write no WAL records");
    }

    #[test]
    fn interactive_commits_recover_from_the_wal() {
        for mode in [DurabilityMode::Strict, DurabilityMode::Batched(1)] {
            let buf = SharedBuf::new();
            let wal = TxnWal::create(Box::new(buf.clone()), mode).unwrap();
            let mgr = manager(SystemKind::A, Some(wal));
            let t = mgr.table_ids()[0];
            let base = mgr.checkpoint().unwrap().encode();

            for i in 0..5i64 {
                let mut txn = mgr.begin().unwrap();
                txn.insert(t, simple_row(10 + i, i), None).unwrap();
                txn.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                    .unwrap();
                txn.commit().unwrap();
            }

            let (engine, ids, durable) = mgr.close().unwrap();
            assert_eq!(durable, 5);
            let rec = recover(
                SystemKind::A,
                &buf.snapshot(),
                &[base],
                &TuningConfig::none(),
            )
            .unwrap();
            assert_eq!(rec.report.replayed, 5);
            assert_eq!(
                canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
                canonical_state(engine.as_ref(), &ids).unwrap(),
                "{mode:?}: recovered state matches the served state"
            );
        }
    }

    /// Deterministic apply failures — arity, temporal class, empty
    /// periods, bad update columns — must surface when the op is buffered,
    /// never poison the manager, and never leave a WAL record that
    /// recovery cannot replay.
    #[test]
    fn malformed_ops_are_rejected_at_buffer_time() {
        let buf = SharedBuf::new();
        let wal = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).unwrap();
        let mut engine = build_engine(SystemKind::A);
        let t = engine.create_table(bitemp_table("t")).unwrap();
        let p = engine.create_table(plain_table("p")).unwrap();
        engine.insert(t, simple_row(1, 10), None).unwrap();
        engine.insert(p, simple_row(1, 10), None).unwrap();
        engine.commit();
        let mgr = TxnManager::new(engine, vec![t, p], Some(wal)).unwrap();
        let base = mgr.checkpoint().unwrap().encode();

        let empty = AppPeriod::new(AppDate(7), AppDate(7));
        let some = AppPeriod::new(AppDate(0), AppDate(10));
        let mut txn = mgr.begin().unwrap();
        assert!(matches!(
            txn.insert(t, Row::new(vec![Value::Int(9)]), None),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            txn.insert(t, simple_row(9, 90), Some(empty)),
            Err(Error::EmptyPeriod(_))
        ));
        assert!(matches!(
            txn.insert(p, simple_row(9, 90), Some(some)),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            txn.update(t, &Key::int(1), &[(7, Value::Int(0))], None),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            txn.update(p, &Key::int(1), &[(1, Value::Int(0))], Some(some)),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            txn.delete(p, &Key::int(1), Some(some)),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            txn.overwrite_app_period(t, &Key::int(1), empty),
            Err(Error::EmptyPeriod(_))
        ));
        assert!(matches!(
            txn.overwrite_app_period(p, &Key::int(1), some),
            Err(Error::Unsupported(_))
        ));

        // The rejections buffered nothing and poisoned nothing: the same
        // transaction still commits its valid write, and the WAL replays.
        txn.insert(t, simple_row(2, 20), None).unwrap();
        txn.commit().unwrap();
        let (engine, ids, durable) = mgr.close().unwrap();
        assert_eq!(durable, 1, "only the valid commit was logged");
        let rec = recover(
            SystemKind::A,
            &buf.snapshot(),
            &[base],
            &TuningConfig::none(),
        )
        .unwrap();
        assert!(rec.report.unreplayable.is_none());
        assert_eq!(rec.report.replayed, 1);
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(engine.as_ref(), &ids).unwrap()
        );
    }

    /// A WAL append failure after apply poisons the manager, and the
    /// failed transaction is absent from the durable log: recovery
    /// reproduces exactly the acknowledged commit prefix, never a
    /// transaction whose commit returned an error.
    #[test]
    fn wal_append_failure_poisons_and_leaves_no_ghost_record() {
        let buf = SharedBuf::new();
        let sink = FaultyWriter::new(
            buf.clone(),
            FaultPlan::none().with(FaultKind::TruncateAt(220)),
        );
        let wal = TxnWal::create(Box::new(sink), DurabilityMode::Strict).unwrap();
        let mgr = manager(SystemKind::A, Some(wal));
        let t = mgr.table_ids()[0];
        let base = mgr.checkpoint().unwrap().encode();

        let mut acknowledged = 0i64;
        let mut failure = None;
        for i in 0..64i64 {
            let mut txn = mgr.begin().unwrap();
            txn.insert(t, simple_row(100 + i, i), None).unwrap();
            match txn.commit() {
                Ok(_) => acknowledged += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let failure = failure.expect("the byte cut must fire");
        assert!(matches!(failure, Error::Internal(_)), "{failure:?}");
        assert!(acknowledged >= 1, "need an acknowledged prefix to verify");
        // Poisoned: the manager stops serving rather than lying.
        assert!(matches!(mgr.begin(), Err(Error::Internal(_))));

        // A fault-free twin serving the same acknowledged prefix is the
        // oracle for what the durable history may contain.
        let twin = manager(SystemKind::A, None);
        let tt = twin.table_ids()[0];
        for i in 0..acknowledged {
            let mut txn = twin.begin().unwrap();
            txn.insert(tt, simple_row(100 + i, i), None).unwrap();
            txn.commit().unwrap();
        }
        let (twin_engine, twin_ids, _) = twin.close().unwrap();

        let rec = recover(
            SystemKind::A,
            &buf.snapshot(),
            &[base],
            &TuningConfig::none(),
        )
        .unwrap();
        assert_eq!(rec.report.commits, acknowledged as u64);
        assert!(rec.report.unreplayable.is_none());
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(twin_engine.as_ref(), &twin_ids).unwrap(),
            "recovery serves exactly the acknowledged prefix"
        );
    }

    /// A manager constructed over a non-empty WAL continues its sequence
    /// numbering, so checkpoints stay labelled with the exact WAL seq they
    /// cover — the drop/double-replay boundary guarantee.
    #[test]
    fn manager_adopts_a_non_empty_wal_sequence() {
        let buf = SharedBuf::new();
        let mut wal = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).unwrap();

        // A prior serving run: base state (rows 1, 2), then one applied
        // and logged transaction (row 3).
        let mut engine = build_engine(SystemKind::A);
        let t = engine.create_table(bitemp_table("t")).unwrap();
        engine.insert(t, simple_row(1, 10), None).unwrap();
        engine.insert(t, simple_row(2, 20), None).unwrap();
        engine.commit();
        let ids = vec![t];
        let base = Checkpoint::capture(engine.as_mut(), &ids, 0)
            .unwrap()
            .encode();
        let prior = TxnOps {
            scenarios: Vec::new(),
            ops: vec![Op::Insert {
                table: 0,
                row: simple_row(3, 30),
                app: None,
            }],
        };
        for op in &prior.ops {
            apply_op(engine.as_mut(), &ids, op).unwrap();
        }
        engine.commit();
        wal.append(&encode_txn(&prior).unwrap()).unwrap();

        // Adoption: the next commit is record 2, not record 1.
        let mgr = TxnManager::new(engine, ids, Some(wal)).unwrap();
        let t = mgr.table_ids()[0];
        let mut txn = mgr.begin().unwrap();
        txn.insert(t, simple_row(4, 40), None).unwrap();
        txn.commit().unwrap();
        let ckpt = mgr.checkpoint().unwrap();
        assert_eq!(ckpt.seq, 2, "checkpoint labelled with the adopted seq");

        let (engine, ids, durable) = mgr.close().unwrap();
        assert_eq!(durable, 2);
        // From the late checkpoint nothing replays; from the base, both
        // records replay — either way the served state is reproduced.
        let late = recover(
            SystemKind::A,
            &buf.snapshot(),
            &[base.clone(), ckpt.encode()],
            &TuningConfig::none(),
        )
        .unwrap();
        assert_eq!(late.report.checkpoint_seq, 2);
        assert_eq!(late.report.replayed, 0);
        assert_eq!(
            canonical_state(late.engine.as_ref(), &late.ids).unwrap(),
            canonical_state(engine.as_ref(), &ids).unwrap()
        );
        let full = recover(
            SystemKind::A,
            &buf.snapshot(),
            &[base],
            &TuningConfig::none(),
        )
        .unwrap();
        assert_eq!(full.report.replayed, 2);
        assert_eq!(
            canonical_state(full.engine.as_ref(), &full.ids).unwrap(),
            canonical_state(engine.as_ref(), &ids).unwrap()
        );
    }

    #[test]
    fn commit_log_is_pruned_once_no_snapshot_needs_it() {
        let mgr = manager(SystemKind::A, None);
        let t = mgr.table_ids()[0];
        for i in 0..20i64 {
            let mut txn = mgr.begin().unwrap();
            txn.insert(t, simple_row(100 + i, i), None).unwrap();
            txn.commit().unwrap();
        }
        let st = mgr.state.read().unwrap();
        assert!(
            st.commit_log.len() <= 1,
            "with no pinned snapshots the log must not grow, got {}",
            st.commit_log.len()
        );
    }

    /// A sink whose `sync` parks on a gate: `entered` flips when a sync is
    /// in flight, and the sync does not return until `release` flips.
    struct GateSink {
        inner: SharedBuf,
        entered: std::sync::Arc<std::sync::atomic::AtomicBool>,
        release: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl std::io::Write for GateSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.inner, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.inner)
        }
    }

    impl bitempo_wal::WalSink for GateSink {
        fn sync(&mut self) -> std::io::Result<()> {
            self.entered
                .store(true, std::sync::atomic::Ordering::SeqCst);
            while !self.release.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::yield_now();
            }
            self.inner.sync()
        }
    }

    /// Regression for the TB008 finding this PR fixed: a strict-mode
    /// commit's fsync used to run inside the `state` write lock, so a
    /// slow disk stalled every reader. Now the fsync is deferred to the
    /// durability waiter, outside all manager locks — a reader must be
    /// able to begin, snapshot and scan while a committer is stuck
    /// mid-fsync.
    #[test]
    fn readers_are_not_blocked_while_a_strict_fsync_is_in_flight() {
        use std::sync::atomic::{AtomicBool, Ordering as AtOrd};
        let entered = std::sync::Arc::new(AtomicBool::new(false));
        let release = std::sync::Arc::new(AtomicBool::new(false));
        let sink = GateSink {
            inner: SharedBuf::new(),
            entered: std::sync::Arc::clone(&entered),
            release: std::sync::Arc::clone(&release),
        };
        let wal = TxnWal::create(Box::new(sink), DurabilityMode::Strict).unwrap();
        let mgr = manager(SystemKind::A, Some(wal));
        let t = mgr.table_ids()[0];

        std::thread::scope(|scope| {
            let committer = scope.spawn(|| {
                let mut txn = mgr.begin().unwrap();
                txn.insert(t, simple_row(3, 30), None).unwrap();
                txn.commit().unwrap();
            });

            // Wait until the committer is provably inside the fsync.
            while !entered.load(AtOrd::SeqCst) {
                std::thread::yield_now();
            }

            // With the gate still closed, a reader gets a full snapshot
            // read done. Before the fix this deadlocked: the fsync ran
            // under the state write lock, and begin() needs the read lock.
            let reader = mgr.begin().unwrap();
            let snap = reader.snapshot();
            let ids = current_ids(&snap.view(), t);
            assert!(
                ids == vec![1, 2] || ids == vec![1, 2, 3],
                "reader saw a consistent prefix either side of the publish, got {ids:?}"
            );
            drop(snap);
            drop(reader);

            release.store(true, AtOrd::SeqCst);
            committer.join().expect("committer thread");
        });
    }

    /// A sink whose `sync` always fails (writes succeed).
    struct FailingSyncSink(SharedBuf);

    impl std::io::Write for FailingSyncSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.0, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.0)
        }
    }

    impl bitempo_wal::WalSink for FailingSyncSink {
        fn sync(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("simulated fsync failure"))
        }
    }

    /// The deferred strict fsync creates one genuinely ambiguous outcome:
    /// the commit published and its record was written, but the sync
    /// failed, so whether the record survives a crash is unknown. The
    /// manager must fail-stop — the commit errors and nothing further is
    /// accepted.
    #[test]
    fn a_failed_durability_wait_after_publish_poisons_the_manager() {
        let wal = TxnWal::create(
            Box::new(FailingSyncSink(SharedBuf::new())),
            DurabilityMode::Strict,
        )
        .unwrap();
        let mgr = manager(SystemKind::A, Some(wal));
        let t = mgr.table_ids()[0];

        let mut txn = mgr.begin().unwrap();
        txn.insert(t, simple_row(3, 30), None).unwrap();
        match txn.commit() {
            Err(Error::Internal(msg)) => {
                assert!(
                    msg.contains("durability is unknown"),
                    "commit must report the ambiguity, got: {msg}"
                );
            }
            other => panic!("expected a fail-stop internal error, got {other:?}"),
        }
        match mgr.begin() {
            Err(Error::Internal(msg)) => {
                assert!(msg.contains("poisoned"), "begin must refuse, got: {msg}");
            }
            Err(other) => panic!("expected the manager to be poisoned, got {other:?}"),
            Ok(_) => panic!("expected the manager to be poisoned, but begin succeeded"),
        };
    }
}
