//! The experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>                 run one experiment (fig2 .. fig16, table1, table2, arch)
//! experiments run-all              run everything, write results/measured.md
//! experiments list                 list experiment ids
//! options:
//!   --h <f>        TPC-H scale factor (default 0.002)
//!   --m <f>        history scale (default 0.002)
//!   --out <path>   write markdown to a file instead of stdout
//! ```

use bitempo_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use bitempo_bench::BenchConfig;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id|run-all|list> [--h <f>] [--m <f>] [--out <path>]");
        std::process::exit(2);
    }
    let mut cfg = BenchConfig::default_scale();
    let mut out_path: Option<String> = None;
    let mut command = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--h" => {
                cfg.h = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.h);
                i += 2;
            }
            "--m" => {
                cfg.m = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.m);
                i += 2;
            }
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                command = other.to_string();
                i += 1;
            }
        }
    }

    if command == "list" {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        println!("fig15\nfig16");
        return;
    }

    let ids: Vec<&str> = if command == "run-all" {
        let mut ids: Vec<&str> = ALL_EXPERIMENTS.to_vec();
        ids.push("fig15");
        ids.push("fig16");
        ids
    } else {
        vec![command.as_str()]
    };

    let mut output = String::new();
    output.push_str(&format!(
        "# TPC-BiH measured results (h = {}, m = {})\n\n",
        cfg.h, cfg.m
    ));
    for id in ids {
        eprintln!("running {id} ...");
        match run_experiment(id, &cfg) {
            Ok(report) => output.push_str(&report.to_markdown()),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    match out_path {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                std::fs::create_dir_all(parent).expect("create output directory");
            }
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(output.as_bytes()).expect("write output");
            eprintln!("wrote {path}");
        }
        None => print!("{output}"),
    }
}
