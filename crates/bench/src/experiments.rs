//! One function per paper artifact. Each returns a [`FigureReport`] whose
//! series mirror the figure's legend; DESIGN.md §4 maps ids to the paper.

use crate::report::{FaultSummary, FigureReport, Series};
use crate::runner::{
    build_nontemporal_baseline, geometric_mean, measure, measure_cell, BenchConfig, DurabilityMode,
    Instance,
};
use bitempo_core::fault::{FaultKind, FaultPlan, FaultyReader};
use bitempo_core::obs::{self, TraceLog};
use bitempo_core::{Error, Key, Pcg32, Period, Result, SysTime, Value};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_histgen::{read_archive_with_retry, Archive, ScenarioKind};
use bitempo_workloads::{bitemporal, key, plans, range, tpch, tt, Ctx};
use std::time::Instant;

fn gist_tuning() -> TuningConfig {
    TuningConfig {
        time_index: true,
        key_time_index: true,
        gist: true,
        ..Default::default()
    }
}

/// Fig 2: basic point-point time travel, out-of-the-box settings.
pub fn fig2(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig2", "Basic Time Travel (no index)", "µs");
    let mut faults = FaultSummary::default();
    let p = &inst.params;
    for kind in SystemKind::ALL {
        let engine = inst.engine(kind);
        let ctx = Ctx::new(engine)?;
        let mut s = Series::new(format!("{kind} - no index"));
        measure_cell(cfg, &mut s, &mut faults, "T1 vary app/curr sys", || {
            tt::t1(&ctx, SysSpec::Current, AppSpec::AsOf(p.app_mid))
        });
        measure_cell(cfg, &mut s, &mut faults, "T1 vary sys/curr app", || {
            tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
        });
        measure_cell(cfg, &mut s, &mut faults, "T2 vary app/curr sys", || {
            tt::t2(&ctx, SysSpec::Current, AppSpec::AsOf(p.app_mid))
        });
        measure_cell(cfg, &mut s, &mut faults, "T2 vary sys/curr app", || {
            tt::t2(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
        });
        measure_cell(cfg, &mut s, &mut faults, "T5 All Versions", || {
            tt::t5_all(&ctx)
        });
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.3.1): current-only app travel cheapest; system-time travel \
         adds the history partition; System B pays the vertical-partition reconstruction; \
         ALL is the upper bound.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 3: the same queries under the Time Index setting (System D also
/// with GiST).
pub fn fig3(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig3", "Index Impact for Basic Time Travel", "µs");
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();

    let run_setting = |inst: &Instance,
                       label_suffix: &str,
                       report: &mut FigureReport,
                       faults: &mut FaultSummary,
                       systems: &[SystemKind],
                       cfg: &BenchConfig|
     -> Result<()> {
        for &kind in systems {
            let engine = inst.engine(kind);
            let ctx = Ctx::new(engine)?;
            let mut s = Series::new(format!("{kind} - {label_suffix}"));
            measure_cell(cfg, &mut s, faults, "T1 vary app/curr sys", || {
                tt::t1(&ctx, SysSpec::Current, AppSpec::AsOf(p.app_mid))
            });
            measure_cell(cfg, &mut s, faults, "T1 vary sys/curr app", || {
                tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
            });
            measure_cell(cfg, &mut s, faults, "T2 vary app/curr sys", || {
                tt::t2(&ctx, SysSpec::Current, AppSpec::AsOf(p.app_mid))
            });
            measure_cell(cfg, &mut s, faults, "T2 vary sys/curr app", || {
                tt::t2(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
            });
            measure_cell(cfg, &mut s, faults, "T5 All Versions", || tt::t5_all(&ctx));
            report.add(s);
        }
        Ok(())
    };

    run_setting(
        &inst,
        "no index",
        &mut report,
        &mut faults,
        &SystemKind::ALL,
        cfg,
    )?;
    inst.retune(&TuningConfig::time())?;
    run_setting(
        &inst,
        "B-Tree",
        &mut report,
        &mut faults,
        &SystemKind::ALL,
        cfg,
    )?;
    inst.retune(&gist_tuning())?;
    run_setting(
        &inst,
        "GiST",
        &mut report,
        &mut faults,
        &[SystemKind::D],
        cfg,
    )?;
    report.note(
        "Expected shape (paper §5.3.2): limited index benefit overall; System C ignores \
         indexes entirely; GiST never beats the B-Tree.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 4: T1 with fixed parameters over growing history sizes — constant
/// with a usable index, linear without.
pub fn fig4(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut report = FigureReport::new("fig4", "T1 for Variable History Size", "µs");
    let mut faults = FaultSummary::default();
    let steps = 4;
    let mut series: Vec<Series> = Vec::new();
    for kind in SystemKind::ALL {
        series.push(Series::new(format!("{kind} - no index")));
        series.push(Series::new(format!("{kind} - B-Tree")));
    }
    for step in 1..=steps {
        // Geometric sweep up to 4× the configured history scale, on half
        // the data scale — the paper ran this experiment on 0.1/0.1..1.0
        // for the same reason (it reloads a full history per step).
        let m_scale = cfg.m * 4.0 * step as f64 / steps as f64;
        let step_cfg = cfg.with_scale(cfg.h / 2.0, m_scale);
        let mut inst = Instance::build(&step_cfg, &TuningConfig::none())?;
        // Fixed parameters: just after the initial version, maximum app time
        // — the result is independent of the history length (paper §5.3.3).
        let sys_point = SysSpec::AsOf(SysTime(2));
        let app_point = AppSpec::AsOf(inst.params.app_max);
        let x = format!("{} versions", inst.history.archive.transactions.len());
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(inst.engine(kind))?;
            measure_cell(
                &step_cfg,
                &mut series[2 * i],
                &mut faults,
                x.clone(),
                || tt::t1(&ctx, sys_point, app_point),
            );
        }
        inst.retune(&TuningConfig::time())?;
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(inst.engine(kind))?;
            measure_cell(
                &step_cfg,
                &mut series[2 * i + 1],
                &mut faults,
                x.clone(),
                || tt::t1(&ctx, sys_point, app_point),
            );
        }
    }
    for s in series {
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.3.3): without indexes the RDBMSs scale linearly with \
         history size; with time indexes cost is mostly constant; System C is constant \
         even without an index (current/history split + scans).",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 5: temporal slicing (T6 variants) against ALL.
pub fn fig5(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig5", "Temporal Slicing", "µs");
    let mut faults = FaultSummary::default();
    let p = &inst.params;
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(format!("{kind} - no index"));
        measure_cell(
            cfg,
            &mut s,
            &mut faults,
            "T6 app time slice over sys",
            || tt::t6(&ctx, Some(p.app_mid), p.sys_now),
        );
        measure_cell(
            cfg,
            &mut s,
            &mut faults,
            "T6 app slice (simulated app time)",
            || tt::t9(&ctx, SysSpec::All, p.app_mid, p.app_late),
        );
        measure_cell(
            cfg,
            &mut s,
            &mut faults,
            "T6 system time slice over app",
            || tt::t6(&ctx, None, p.sys_mid),
        );
        measure_cell(cfg, &mut s, &mut faults, "T5 All Versions", || {
            tt::t5_all(&ctx)
        });
        report.add(s);
    }
    report.note("Expected shape (paper §5.3.4): slicing can be cheaper than point travel due to lower query complexity; indexes are of little use at these result sizes.");
    report.faults = faults;
    Ok(report)
}

/// Fig 6: implicit vs explicit current-time travel (Systems A, B, C).
/// Run on a history-dominated instance (16× the configured m, half the
/// data): the effect *is* the superfluous history-partition walk, so the
/// history must dwarf the current partition for wall time to show it
/// clearly above measurement noise.
pub fn fig6(cfg: &BenchConfig) -> Result<FigureReport> {
    let cfg = &cfg.with_scale(cfg.h / 2.0, cfg.m * 16.0);
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig6", "Current TT Implicit vs Explicit", "µs");
    let mut faults = FaultSummary::default();
    for kind in [SystemKind::A, SystemKind::B, SystemKind::C] {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(kind.name());
        measure_cell(cfg, &mut s, &mut faults, "Implicit", || {
            tt::t7_implicit(&ctx)
        });
        measure_cell(cfg, &mut s, &mut faults, "Explicit", || {
            tt::t7_explicit(&ctx)
        });
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.3.5): all three systems access the history partition \
         when the current time is requested explicitly — none recognizes the optimization. \
         In-memory, the penalty is the extra history visit (A, C show it directly); on \
         System B the implicit query already pays the current-table reconstruction, which \
         masks the history walk — the plan-shape test asserts the partition access instead.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 7a/7b: the 22 TPC-H queries under time travel, reported as the
/// slowdown ratio versus the non-temporal baseline.
pub fn fig7(cfg: &BenchConfig, system_time: bool) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let p = &inst.params;
    let (id, title, tt_spec, base_sys, base_app) = if system_time {
        (
            "fig7b",
            "TPC-H with system time travel (ratio temporal/non-temporal)",
            tpch::Tt::sys(p.sys_initial),
            SysSpec::AsOf(p.sys_initial),
            AppSpec::All,
        )
    } else {
        (
            "fig7a",
            "TPC-H with application time travel (ratio temporal/non-temporal)",
            tpch::Tt::app(p.app_mid),
            SysSpec::Current,
            AppSpec::AsOf(p.app_mid),
        )
    };
    let baselines = build_nontemporal_baseline(&inst, &base_sys, &base_app)?;
    let mut report = FigureReport::new(id, title, "ratio");
    for kind in SystemKind::ALL {
        let temporal_engine = inst.engine(kind);
        let baseline_engine = baselines
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| e.as_ref())
            .expect("baseline built");
        let t_ctx = Ctx::new(temporal_engine)?;
        let b_ctx = Ctx::new(baseline_engine)?;
        let mut s = Series::new(format!("{kind} - no index"));
        let mut ratios = Vec::new();
        for q in 1..=22u8 {
            let mt = measure(cfg, || tpch::run_query(&t_ctx, q, &tt_spec))?;
            let mb = measure(cfg, || tpch::run_query(&b_ctx, q, &tpch::Tt::none()))?;
            let ratio = mt.median_nanos as f64 / mb.median_nanos.max(1) as f64;
            ratios.push(ratio);
            s.push(format!("Q{q}"), ratio);
        }
        s.push("GeoMean", geometric_mean(&ratios));
        report.add(s);
    }
    report.note(if system_time {
        "Paper §5.4.2 reports far higher overheads than 7a, driven by optimizer plan \
         degradation (unions/anti-joins reassembling history). Our executor issues the \
         same physical plan in both settings by design, so this figure isolates the \
         storage-level component: (current + history) volume over the snapshot volume, \
         a modest factor that grows with m. Orderings still hold: B pays reconstruction, \
         D has no partition split."
    } else {
        "Expected shape (paper §5.4.1): slowdowns vary per query; System C's scan-based \
         execution shows the smallest geometric mean."
    });
    Ok(report)
}

fn key_dimension_points(
    p: &bitempo_workloads::QueryParams,
) -> Vec<(&'static str, SysSpec, AppSpec)> {
    vec![
        ("app time, curr sys", SysSpec::Current, AppSpec::All),
        (
            "app time, past sys",
            SysSpec::AsOf(p.sys_initial),
            AppSpec::All,
        ),
        ("both times", SysSpec::All, AppSpec::All),
        (
            "sys time, curr app",
            SysSpec::All,
            AppSpec::AsOf(p.app_late),
        ),
    ]
}

/// Fig 8: key-in-time over the full temporal range (K1) without and with
/// the Key+Time index.
pub fn fig8(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig8", "Key in Time - Full Range (K1)", "µs");
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    for (tuning, label) in [
        (TuningConfig::none(), "no index"),
        (TuningConfig::key_time(), "Key+Time"),
    ] {
        inst.retune(&tuning)?;
        for kind in SystemKind::ALL {
            let ctx = Ctx::new(inst.engine(kind))?;
            let mut s = Series::new(format!("{kind} - {label}"));
            for (x, sys, app) in key_dimension_points(&p) {
                measure_cell(cfg, &mut s, &mut faults, format!("K1 {x}"), || {
                    key::k1(&ctx, &p.hot_customer, sys, app)
                });
            }
            report.add(s);
        }
    }
    report.note(
        "Expected shape (paper §5.5.1): A and B benefit from the system PK index at \
         current system time; past-system-time access triggers history scans unless the \
         Key+Time index exists; B still pays reconstruction; C scans regardless.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 9: key-in-time with constrained time ranges (K2/K3).
pub fn fig9(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::key_time())?;
    let mut report = FigureReport::new("fig9", "Key in Time - Time Restriction (K2/K3)", "µs");
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    let sys_range = SysSpec::Range(Period::new(p.sys_initial, p.sys_mid));
    inst.retune(&TuningConfig::key_time())?;
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(format!("{kind} - Key+Time"));
        measure_cell(cfg, &mut s, &mut faults, "K2 (sys range)", || {
            key::k2(&ctx, &p.hot_customer, sys_range, AppSpec::All)
        });
        measure_cell(cfg, &mut s, &mut faults, "K2 (app - system past)", || {
            key::k2(
                &ctx,
                &p.hot_customer,
                SysSpec::AsOf(p.sys_initial),
                AppSpec::All,
            )
        });
        measure_cell(cfg, &mut s, &mut faults, "K3 (sys range, 1 column)", || {
            key::k3(&ctx, &p.hot_customer, sys_range, AppSpec::All)
        });
        measure_cell(cfg, &mut s, &mut faults, "K3 (both)", || {
            key::k3(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All)
        });
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.5.2): time-range restrictions and column restrictions \
         have little impact compared to K1 — the version-fetch dominates.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 10: version-count restrictions (K4 Top-N, K5 predecessor).
pub fn fig10(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::key_time())?;
    let mut report = FigureReport::new("fig10", "Key in Time - Version Restriction (K4/K5)", "µs");
    let mut faults = FaultSummary::default();
    let p = &inst.params;
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(format!("{kind} - Key+Time"));
        measure_cell(cfg, &mut s, &mut faults, "K4 (Top-5 versions)", || {
            key::k4(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All, 5)
        });
        measure_cell(cfg, &mut s, &mut faults, "K4 (Top-5, past sys)", || {
            key::k4(
                &ctx,
                &p.hot_customer,
                SysSpec::AsOf(p.sys_mid),
                AppSpec::All,
                5,
            )
        });
        measure_cell(cfg, &mut s, &mut faults, "K5 (predecessor)", || {
            key::k5(&ctx, &p.hot_customer, p.sys_now)
        });
        measure_cell(cfg, &mut s, &mut faults, "K5 (predecessor, past)", || {
            key::k5(&ctx, &p.hot_customer, p.sys_mid)
        });
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.5.2): Top-N helps in some cases; the K5 correlation \
         formulation is never cheaper than K4.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 11: value-in-time (K6) without and with a value index.
pub fn fig11(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig11", "Value in Time (K6)", "µs");
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    let value_tuning = TuningConfig {
        value_index: vec![("customer".into(), "c_acctbal".into())],
        ..Default::default()
    };
    for (tuning, label) in [
        (TuningConfig::none(), "no index"),
        (value_tuning, "Value index"),
    ] {
        inst.retune(&tuning)?;
        for kind in SystemKind::ALL {
            let ctx = Ctx::new(inst.engine(kind))?;
            let mut s = Series::new(format!("{kind} - {label}"));
            let (lo, hi) = p.acctbal_band;
            measure_cell(cfg, &mut s, &mut faults, "K6 value, curr sys", || {
                key::k6(&ctx, lo, hi, SysSpec::Current, AppSpec::All)
            });
            measure_cell(cfg, &mut s, &mut faults, "K6 value, past sys", || {
                key::k6(&ctx, lo, hi, SysSpec::AsOf(p.sys_initial), AppSpec::All)
            });
            measure_cell(cfg, &mut s, &mut faults, "K6 value, all sys", || {
                key::k6(&ctx, lo, hi, SysSpec::All, AppSpec::All)
            });
            report.add(s);
        }
    }
    report.note(
        "Expected shape (paper §5.5.3): without an index everything is a table scan; the \
         value index speeds up the selective filter significantly (except on System C).",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 12: key-range query versus history size (with Key+Time indexes).
pub fn fig12(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut report = FigureReport::new("fig12", "Key-Range for Variable History Size", "µs");
    let mut faults = FaultSummary::default();
    let steps = 4;
    let mut series: Vec<Series> = SystemKind::ALL
        .into_iter()
        .map(|k| Series::new(format!("{k} - B-Tree")))
        .collect();
    for step in 1..=steps {
        let m_scale = cfg.m * step as f64 / steps as f64;
        let step_cfg = cfg.with_scale(cfg.h / 2.0, m_scale);
        let inst = Instance::build(&step_cfg, &TuningConfig::key_time())?;
        let p = &inst.params;
        let x = format!("{} versions", inst.history.archive.transactions.len());
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(inst.engine(kind))?;
            measure_cell(&step_cfg, &mut series[i], &mut faults, x.clone(), || {
                key::k1(
                    &ctx,
                    &p.hot_customer,
                    SysSpec::AsOf(SysTime(2)),
                    AppSpec::All,
                )
            });
        }
    }
    for s in series {
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.5.4): indexed key access stays near-constant for A, C \
         and D; System B grows with the current table because of the vertical-partition \
         reconstruction.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 13: load-batch size impact on a key-range query.
pub fn fig13(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut report = FigureReport::new("fig13", "Key-Range for Variable Batch Size", "µs");
    let mut faults = FaultSummary::default();
    let mut series: Vec<Series> = SystemKind::ALL
        .into_iter()
        .map(|k| Series::new(format!("{k} - B-Tree")))
        .collect();
    for batch in [1usize, 4, 16, 64] {
        let mut step_cfg = *cfg;
        step_cfg.batch_size = batch;
        let inst = Instance::build(&step_cfg, &TuningConfig::key_time())?;
        let p = &inst.params;
        let x = format!("batch {batch}");
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(inst.engine(kind))?;
            measure_cell(&step_cfg, &mut series[i], &mut faults, x.clone(), || {
                key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All)
            });
        }
    }
    for s in series {
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.5.4): batching reduces the number of transactions and \
         distinct versions; System B is affected the most.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 14: range-timeslice queries R1–R7 (smaller scale, as in the paper).
pub fn fig14(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig14", "Range Timeslice (R1–R7)", "µs");
    let mut faults = FaultSummary::default();
    let p = &inst.params;
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(kind.name());
        measure_cell(cfg, &mut s, &mut faults, "ALL (yardstick)", || {
            tt::t5_all(&ctx)
        });
        measure_cell(cfg, &mut s, &mut faults, "R1", || range::r1(&ctx));
        measure_cell(cfg, &mut s, &mut faults, "R2", || {
            range::r2(&ctx, p.sys_now)
        });
        measure_cell(cfg, &mut s, &mut faults, "R3a (naive temporal agg)", || {
            range::r3a_naive(&ctx, SysSpec::Current)
        });
        measure_cell(cfg, &mut s, &mut faults, "R3b (naive temporal agg)", || {
            range::r3b_naive(&ctx, SysSpec::Current)
        });
        measure_cell(cfg, &mut s, &mut faults, "R3a (event sweep)", || {
            range::r3a_sweep(&ctx, SysSpec::Current)
        });
        measure_cell(cfg, &mut s, &mut faults, "R4", || range::r4(&ctx));
        measure_cell(cfg, &mut s, &mut faults, "R5 (temporal join)", || {
            range::r5(&ctx, 5_000.0, 100_000.0)
        });
        measure_cell(cfg, &mut s, &mut faults, "R6 (join + temporal agg)", || {
            range::r6(&ctx, SysSpec::Current)
        });
        measure_cell(cfg, &mut s, &mut faults, "R7", || range::r7(&ctx));
        report.add(s);
    }
    report.note(
        "Expected shape (paper §5.6): the naive SQL:2011 temporal aggregation (R3) costs \
         orders of magnitude more than ALL; the event-sweep variant shows what a native \
         operator would achieve.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 15: the bitemporal dimension matrix B3.1–B3.11.
pub fn fig15(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig15", "Bitemporal Dimensions (B3.1–B3.11)", "µs");
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    for (tuning, label) in [
        (TuningConfig::none(), "no index"),
        (TuningConfig::key_time(), "Indexed"),
    ] {
        inst.retune(&tuning)?;
        for kind in SystemKind::ALL {
            let ctx = Ctx::new(inst.engine(kind))?;
            let mut s = Series::new(format!("{kind} - {label}"));
            for variant in 1..=11u8 {
                measure_cell(cfg, &mut s, &mut faults, format!("B3.{variant}"), || {
                    bitemporal::b3_variant(&ctx, variant, 55, p.app_mid, p.sys_initial)
                });
            }
            report.add(s);
        }
    }
    report.note(
        "Expected shape (paper §5.7): without temporal join operators, correlation \
         variants degrade into scans and overlap joins; indexes help only the selective \
         point variants.",
    );
    report.faults = faults;
    Ok(report)
}

/// Fig 16 + §5.8: loading and update costs.
pub fn fig16(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("fig16", "Loading Time per Scenario", "µs");
    for (kind, load) in &inst.load_reports {
        let mut median = Series::new(format!("{kind} Median"));
        let mut p97 = Series::new(format!("{kind} 97th"));
        for (scenario, _) in ScenarioKind::WEIGHTED {
            if let Some(v) = load.median_nanos(Some(scenario)) {
                median.push(scenario.name(), v as f64 / 1_000.0);
            }
            if let Some(v) = load.p97_nanos(Some(scenario)) {
                p97.push(scenario.name(), v as f64 / 1_000.0);
            }
        }
        report.add(median);
        report.add(p97);
    }
    let mut totals = Series::new("Total load (ms)");
    for ((kind, load), (_, initial)) in inst.load_reports.iter().zip(&inst.initial_load_nanos) {
        totals.push(
            kind.name(),
            (initial + load.total_nanos) as f64 / 1_000_000.0,
        );
    }
    // System D additionally supports a pre-stamped bulk load (§5.8).
    let t0 = std::time::Instant::now();
    let mut bulk = bitempo_engine::build_engine(SystemKind::D);
    bitempo_histgen::loader::bulk_load(bulk.as_mut(), &inst.history.db)?;
    totals.push(
        "System D (bulk load)",
        t0.elapsed().as_nanos() as f64 / 1_000_000.0,
    );
    report.add(totals);
    report.note(
        "Expected shape (paper §5.8): System B's 97th percentile is far above its median \
         (undo-log drains); System D's bulk load beats every transactional replay.",
    );
    Ok(report)
}

/// Table 1: observed scenario frequencies against the specification.
pub fn table1(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let stats = &inst.history.stats;
    let total: u64 = stats.scenario_counts.iter().sum();
    let mut report = FigureReport::new("table1", "Update Scenario Frequencies", "probability");
    let mut spec = Series::new("Specified");
    let mut observed = Series::new("Observed");
    for (kind, p) in ScenarioKind::WEIGHTED {
        spec.push(kind.name(), p);
        observed.push(
            kind.name(),
            stats.scenario_counts[kind.tag() as usize] as f64 / total.max(1) as f64,
        );
    }
    report.add(spec);
    report.add(observed);
    report.note("Fallbacks shift a little mass toward New Order when preconditions fail.");
    Ok(report)
}

/// Table 2: average operations per table.
pub fn table2(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let stats = &inst.history.stats;
    let mut report = FigureReport::new("table2", "Operations per Table", "count");
    type ColumnGetter<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
    let columns: [(&str, ColumnGetter<'_>); 7] = [
        (
            "App.Time Insert",
            Box::new(|i| stats.ops[i].app_insert as f64),
        ),
        (
            "App.Time Update",
            Box::new(|i| stats.ops[i].app_update as f64),
        ),
        (
            "Non-temp. Insert",
            Box::new(|i| stats.ops[i].nontemp_insert as f64),
        ),
        (
            "Non-temp. Update",
            Box::new(|i| stats.ops[i].nontemp_update as f64),
        ),
        ("Delete", Box::new(|i| stats.ops[i].delete as f64)),
        ("History growth ratio", Box::new(|i| stats.growth_ratio(i))),
        (
            "Overwrite App.Time",
            Box::new(|i| {
                if stats.overwrites_app_time(i) {
                    1.0
                } else {
                    0.0
                }
            }),
        ),
    ];
    for (label, get) in &columns {
        let mut s = Series::new(*label);
        for (i, name) in stats.tables.iter().enumerate() {
            s.push(name.to_uppercase(), get(i));
        }
        report.add(s);
    }
    report.note(format!("{stats}"));
    Ok(report)
}

/// §5.2: the architecture analysis.
pub fn architecture(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new("arch", "Architecture Analysis (§5.2)", "rows");
    for kind in SystemKind::ALL {
        let engine = inst.engine(kind);
        let mut s = Series::new(kind.name());
        for name in bitempo_dbgen::TPCH_TABLES {
            let id = engine.resolve(name)?;
            let st = engine.stats(id);
            s.push(format!("{name} current"), st.current_rows as f64);
            s.push(format!("{name} history"), st.history_rows as f64);
        }
        report.add(s);
        report.note(format!("{}: {}", kind.name(), engine.architecture()));
    }
    Ok(report)
}

/// Morsel-parallel scan scaling: the full-history scan (T5 All Versions)
/// per engine at 1, 2, and 4 scan workers over the *same* loaded instance.
/// Not a paper artifact — the paper's systems were measured single-threaded
/// (§5.1); this report shows what the archetypes gain from intra-query
/// parallelism while returning bit-identical results.
pub fn scaling(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new(
        "scaling",
        "Morsel-Parallel Scan Scaling (Full-History Scans)",
        "µs",
    );
    let worker_steps = [1usize, 2, 4];
    // Two full-history scans per engine: T5 (ORDERS, the paper's yardstick)
    // and the same scan over LINEITEM — the largest table, where the
    // per-scan dispatch cost is best amortized.
    let mut t5: Vec<Vec<f64>> = vec![Vec::new(); SystemKind::ALL.len()];
    let mut li: Vec<Vec<f64>> = vec![Vec::new(); SystemKind::ALL.len()];
    for &w in &worker_steps {
        inst.retune(&TuningConfig::none().with_workers(w))?;
        for (i, kind) in SystemKind::ALL.iter().enumerate() {
            let ctx = Ctx::new(inst.engine(*kind))?;
            let m = measure(cfg, || tt::t5_all(&ctx))?;
            t5[i].push(m.micros());
            let m = measure(cfg, || {
                ctx.scan(ctx.t.lineitem, &SysSpec::All, &AppSpec::All, &[])
            })?;
            li[i].push(m.micros());
        }
    }
    for (i, kind) in SystemKind::ALL.iter().enumerate() {
        let mut s = Series::new(kind.name());
        for (j, &w) in worker_steps.iter().enumerate() {
            let plural = if w == 1 { "" } else { "s" };
            s.push(format!("ORDERS, {w} worker{plural}"), t5[i][j]);
            s.push(format!("LINEITEM, {w} worker{plural}"), li[i][j]);
        }
        report.add(s);
    }
    let max_workers = *worker_steps.last().expect("non-empty steps");
    let speedups: Vec<String> = SystemKind::ALL
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let last = *li[i].last().expect("one median per step");
            format!("{kind} {:.2}x", li[i][0] / last.max(1e-9))
        })
        .collect();
    // Per-scan work counters for the biggest table, straight from ScanOutput.
    let engine = inst.engine(SystemKind::A);
    let lineitem = engine.resolve("lineitem")?;
    let out = engine.scan(lineitem, &SysSpec::All, &AppSpec::All, &[])?;
    report.note(format!(
        "Host available_parallelism = {}. LINEITEM full-history speedup at {max_workers} \
         workers over 1 worker: {} (bounded by the host core count; on a single-core host \
         the expected value is ~1.0x and any shortfall is pure dispatch overhead). Results \
         are identical at every worker count (morsel-order merge). System A LINEITEM \
         full-history scan: {} morsels, {} versions visited, {} pruned, {} index probes.",
        bitempo_engine::api::default_workers(),
        speedups.join(", "),
        out.metrics.morsels,
        out.metrics.rows_visited,
        out.metrics.versions_pruned,
        out.metrics.index_probes,
    ));
    Ok(report)
}

/// Fault-injection scenario report (not a paper artifact): exercises the
/// hardened pipeline end to end. Layer 1 corrupts a serialized generator
/// archive and shows the checksummed v2 reader detecting it, then recovers
/// a transiently-faulty read through the retry loop; layer 2 injects a
/// worker panic into the morsel layer of every engine and shows containment
/// plus clean recovery after retuning; layer 3 forces a query timeout and
/// shows the failure landing as an error cell instead of aborting the run.
pub fn faults(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut report = FigureReport::new("faults", "Fault Injection and Graceful Degradation", "µs");
    let mut tally = FaultSummary::default();

    // Layer 1a: a single bit flip in the archive stream must be caught by
    // the v2 per-transaction checksums, never parsed into bad data.
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut bytes = Vec::new();
    inst.history.archive.write_to(&mut bytes)?;
    let flip = FaultPlan::none().with(FaultKind::BitFlip {
        offset: (bytes.len() / 2) as u64,
        mask: 0x10,
    });
    tally.injected += flip.len() as u64;
    let mut reader = FaultyReader::new(&bytes[..], flip);
    match Archive::read_from(&mut reader) {
        Err(Error::Archive(_)) => {
            tally.detected += 1;
            report.note("archive bit flip: detected by the v2 checksums (Error::Archive)");
        }
        Err(e) => return Err(e),
        Ok(_) => report.note("archive bit flip: NOT detected — checksum hole"),
    }

    // Layer 1b: a transient read fault is absorbed by the retry path and
    // the payload survives intact.
    tally.injected += 1;
    let reread = read_archive_with_retry(
        || {
            let plan = FaultPlan::none().with(FaultKind::TransientAt(64));
            let mut r = FaultyReader::new(&bytes[..], plan);
            Archive::read_from(&mut r)
        },
        3,
    )?;
    if reread.transactions.len() == inst.history.archive.transactions.len() {
        tally.recovered += 1;
        report.note("archive transient fault: recovered by retry, payload intact");
    }

    // Layer 2: inject a worker panic into morsel 0 of every engine's
    // sequential scan; containment must surface it as WorkerPanicked.
    inst.retune(&TuningConfig::none().with_workers(2).with_panic_morsel(0))?;
    for kind in SystemKind::ALL {
        tally.injected += 1;
        let engine = inst.engine(kind);
        let orders = engine.resolve("orders")?;
        match engine.scan(orders, &SysSpec::All, &AppSpec::All, &[]) {
            Err(Error::WorkerPanicked { morsel, .. }) => {
                tally.detected += 1;
                report.note(format!("{kind}: worker panic contained at morsel {morsel}"));
            }
            Err(e) => return Err(e),
            Ok(_) => report.note(format!("{kind}: injected panic did not fire")),
        }
    }
    // Recovery: clear the injection and the same scans run clean.
    inst.retune(&TuningConfig::none().with_workers(2))?;
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(format!("{kind} - after recovery"));
        measure_cell(cfg, &mut s, &mut tally, "T5 after panic recovery", || {
            tt::t5_all(&ctx)
        });
        if s.errors.is_empty() {
            tally.recovered += 1;
        }
        report.add(s);
    }

    // Layer 3: a zero wall-clock budget forces a timeout; the cell degrades
    // to ERR and the run keeps going.
    tally.injected += 1;
    let t_cfg = cfg.with_timeout(0);
    let app_mid = inst.params.app_mid;
    let ctx = Ctx::new(inst.engine(SystemKind::A))?;
    let mut s = Series::new("System A - forced timeout");
    measure_cell(&t_cfg, &mut s, &mut tally, "T1 under zero budget", || {
        tt::t1(&ctx, SysSpec::Current, AppSpec::AsOf(app_mid))
    });
    report.add(s);

    report.faults = tally;
    Ok(report)
}

/// `explain`: one representative query per workload class (T, H, K, R, B),
/// measured per engine with tracing forced on so every timing cell carries
/// its access-path breakdown — which partition was read, whether an index
/// or a full scan resolved it, and how many versions were visited, pruned,
/// and emitted (the paper's §5 discussion, made inspectable). Also exports
/// a chrome-trace JSON of one traced pass to `results/explain.trace.json`
/// for about:tracing / Perfetto.
pub fn explain(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::key_time())?;
    let mut report = FigureReport::new(
        "explain",
        "Access-path explain: one query per class (key+time index)",
        "µs",
    );
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    let cfg = cfg.with_trace(true);
    let mut combined = TraceLog::default();
    for kind in SystemKind::ALL {
        let engine = inst.engine(kind);
        let ctx = Ctx::new(engine)?;
        let mut s = Series::new(kind.to_string());
        measure_cell(&cfg, &mut s, &mut faults, "T: T1 sys+app point", || {
            tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid))
        });
        measure_cell(&cfg, &mut s, &mut faults, "H: TPC-H Q6 app travel", || {
            tpch::run_query(&ctx, 6, &tpch::Tt::app(p.app_mid))
        });
        measure_cell(&cfg, &mut s, &mut faults, "K: K1 hot customer", || {
            key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All)
        });
        measure_cell(&cfg, &mut s, &mut faults, "R: R1 audit range", || {
            range::r1(&ctx)
        });
        measure_cell(&cfg, &mut s, &mut faults, "B: B3 point/point past", || {
            bitemporal::b3_variant(&ctx, 2, 55, p.app_mid, p.sys_initial)
        });
        report.add(s);

        // One extra traced pass per engine feeds the chrome-trace export;
        // errors here were already footnoted by the measured cells above.
        obs::enable();
        let _ = tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid));
        let _ = tpch::run_query(&ctx, 6, &tpch::Tt::app(p.app_mid));
        let _ = key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All);
        let _ = range::r1(&ctx);
        let _ = bitemporal::b3_variant(&ctx, 2, 55, p.app_mid, p.sys_initial);
        combined.merge(obs::disable());
    }
    if !combined.is_empty() {
        let path = std::path::Path::new("results/explain.trace.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, combined.to_chrome_trace())?;
        report.note(format!(
            "Chrome-trace timeline written to {} (load in about:tracing or Perfetto).",
            path.display()
        ));
    }
    report.note(
        "Read next to paper §5: T1 resolves via the time index where the engine exposes one, \
         K1 via key lookup, R1/B3 fall back to partition scans; the breakdown shows which \
         partitions each architecture touches and how many versions it prunes.",
    );
    report.faults = faults;
    Ok(report)
}

/// `temporal-index`: the index the 2014 systems lacked, measured with the
/// paper's own discipline. Part one reruns the Fig 3/9/12 query shapes
/// (T time travel, K audit, R range-timeslice) with the `bitempo-tindex`
/// Timeline/interval index off and on. Part two applies the Fig 4 sweep to
/// the new index: fixed early `AS OF` probe parameters over growing
/// histories — CUSTOMER's population is fixed while payment scenarios keep
/// superseding versions, so its history deepens with `m` and the probe
/// touches an ever-smaller fraction of it. Index build time and resident
/// footprint are reported next to the wins, so the report never shows a
/// probe-time benefit without its maintenance cost.
pub fn temporal_index(cfg: &BenchConfig) -> Result<FigureReport> {
    let mut inst = Instance::build(cfg, &TuningConfig::none())?;
    let mut report = FigureReport::new(
        "temporal-index",
        "Temporal index: T/K/R off vs on, probe cost vs history size",
        "µs",
    );
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    let cfg = cfg.with_trace(true);
    let sys_audit = SysSpec::Range(Period::new(p.sys_initial, p.sys_mid));

    let run_setting = |inst: &Instance,
                       label: &str,
                       report: &mut FigureReport,
                       faults: &mut FaultSummary|
     -> Result<()> {
        for kind in SystemKind::ALL {
            let ctx = Ctx::new(inst.engine(kind))?;
            let mut s = Series::new(format!("{kind} - {label}"));
            measure_cell(&cfg, &mut s, faults, "T1 sys+app travel (Fig 3)", || {
                tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late))
            });
            measure_cell(&cfg, &mut s, faults, "K2 audit, sys range (Fig 9)", || {
                key::k2(&ctx, &p.hot_customer, sys_audit, AppSpec::All)
            });
            measure_cell(&cfg, &mut s, faults, "R3a timeslice sweep (Fig 12)", || {
                range::r3a_sweep(&ctx, SysSpec::AsOf(p.sys_mid))
            });
            report.add(s);
        }
        Ok(())
    };

    run_setting(&inst, "no index", &mut report, &mut faults)?;
    // Retune engine by engine so the report can state what each
    // architecture paid to build its index (the bench crate is the one
    // place wall clocks are allowed — tblint TB001).
    let tuning = TuningConfig::temporal().with_workers(cfg.workers);
    for (kind, engine) in &mut inst.engines {
        let t0 = Instant::now();
        engine.apply_tuning(&tuning)?;
        let built_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fp = engine.temporal_index_footprint();
        report.note(format!(
            "{kind}: index build {built_ms:.2} ms — {} events, {} checkpoints, {:.1} KiB resident",
            fp.events,
            fp.checkpoints,
            fp.bytes as f64 / 1024.0
        ));
    }
    run_setting(&inst, "temporal index", &mut report, &mut faults)?;

    // Part two: the Fig 4 sweep against the new index. Probe parameters are
    // fixed (just after the initial load, all application time) while the
    // history grows, on half the data scale (like Fig 4 — and its floor:
    // below ~h/2 of the laptop scales dbgen's population constraints, e.g.
    // four distinct suppliers per part, become unsatisfiable). The cost of
    // a usable temporal index must track the *answer* size, not the
    // history size.
    let probe_at = SysSpec::AsOf(SysTime(2));
    let mut off_sweep: Vec<Series> = SystemKind::ALL
        .into_iter()
        .map(|k| Series::new(format!("{k} - sweep: full scan")))
        .collect();
    let mut on_sweep: Vec<Series> = SystemKind::ALL
        .into_iter()
        .map(|k| Series::new(format!("{k} - sweep: temporal index")))
        .collect();
    for mult in [6.0, 12.0] {
        let step_cfg = cfg.with_scale(cfg.h / 2.0, cfg.m * mult);
        let mut sweep = Instance::build(&step_cfg, &TuningConfig::none())?;
        let x = format!("{} txns", sweep.history.archive.transactions.len());
        let mut visited_off = Vec::new();
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(sweep.engine(kind))?;
            measure_cell(&step_cfg, &mut off_sweep[i], &mut faults, x.clone(), || {
                ctx.scan(ctx.t.customer, &probe_at, &AppSpec::All, &[])
            });
            let out = ctx.scan_output(ctx.t.customer, &probe_at, &AppSpec::All, &[])?;
            visited_off.push(out.metrics.rows_visited);
        }
        sweep.retune(&TuningConfig::temporal().with_workers(step_cfg.workers))?;
        for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
            let ctx = Ctx::new(sweep.engine(kind))?;
            measure_cell(&step_cfg, &mut on_sweep[i], &mut faults, x.clone(), || {
                ctx.scan(ctx.t.customer, &probe_at, &AppSpec::All, &[])
            });
            let out = ctx.scan_output(ctx.t.customer, &probe_at, &AppSpec::All, &[])?;
            report.note(format!(
                "{kind} @ {x}: early AS OF visited {} of the {} rows a full scan reads, \
                 via {} ({} hits, {} node visits)",
                out.metrics.rows_visited,
                visited_off[i],
                out.access,
                out.metrics.index_hits,
                out.metrics.index_node_visits,
            ));
        }
    }
    for s in off_sweep {
        report.add(s);
    }
    for s in on_sweep {
        report.add(s);
    }
    report.note(
        "Expected shape: the off/on figure cells barely move (the paper's §5.3.2 finding — \
         mid-history probes touch too much to beat a scan, and the planner declines them), \
         but the sweep's early probes visit a near-constant row count while the full scan \
         grows with the history: the sublinear system-time travel the 2014 systems lacked.",
    );
    report.faults = faults;
    Ok(report)
}

/// `lint-plans`: the plan validator run as a gate — builds one
/// representative plan per workload class (T, H, K, R, B) on every engine,
/// *executing* the underlying accesses (so debug builds also exercise the
/// engines' scan-postcondition checks), then feeds each plan through the
/// static validator in `bitempo_query::plan`. Every scan must classify its
/// predicates into pushed vs residual (or declare itself full-history) and
/// every temporal join/aggregate must declare whether its output is
/// coalesced. Any violation fails the experiment: plans are linted here,
/// not benchmarked.
pub fn lint_plans(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::key_time())?;
    let mut report = FigureReport::new(
        "lint-plans",
        "Plan lint: classified scans and declared coalescing per workload class",
        "violations",
    );
    let p = inst.params.clone();
    let mut all_violations: Vec<String> = Vec::new();
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let class_plans = plans::representative_plans(&ctx, &p)?;
        let mut s = Series::new(kind.to_string());
        for cp in &class_plans {
            let x = format!("{}: {}", cp.class, cp.query);
            match bitempo_query::validate(&cp.plan) {
                Ok(()) => s.push(x, 0.0),
                Err(violations) => {
                    s.push(x, violations.len() as f64);
                    for v in violations {
                        all_violations.push(format!("{kind} class {}: {v}", cp.class));
                    }
                }
            }
        }
        report.add(s);
    }
    if all_violations.is_empty() {
        report.note(
            "All representative plans classify their predicates and declare temporal \
             coalescing on every engine; 0 violations.",
        );
        Ok(report)
    } else {
        for v in &all_violations {
            report.note(v.clone());
        }
        Err(Error::Invalid(format!(
            "plan lint failed with {} violation(s): {}",
            all_violations.len(),
            all_violations.join("; ")
        )))
    }
}

/// `optimizer`: the cost-based planner inspected end to end. Part one
/// sweeps `AS OF` system times over CUSTOMER with the temporal index tuned;
/// every traced cell's breakdown carries planned-vs-visited rows, so the
/// report shows per partition where the probe beat the scan and how far
/// the estimate was off. Part two brackets the crossover exactly: a table
/// of `n` keys inserted one commit apart makes `AS OF t` qualify `t` rows,
/// so sweeping `t` across the probe's break-even point must flip the
/// chosen path from index to scan on every engine — the experiment fails
/// if any cell lands on the wrong side. No threshold knob exists any more;
/// the switch falls out of estimated work. Part three demonstrates adaptive
/// re-planning:
/// a query that stabs a gap between application periods (everything before
/// day 5 or after day 10, probed at day 7) makes the interval estimator see
/// half the partition where nothing qualifies; with `adaptive` tuning the
/// observed miss feeds back and the second plan switches to the temporal
/// probe on every engine. The experiment fails if any engine does not flip.
pub fn optimizer_experiment(cfg: &BenchConfig) -> Result<FigureReport> {
    let inst = Instance::build(cfg, &TuningConfig::temporal())?;
    let mut report = FigureReport::new(
        "optimizer",
        "Cost-based access paths: selectivity crossover and adaptive re-planning",
        "µs",
    );
    let mut faults = FaultSummary::default();
    let p = inst.params.clone();
    let traced = cfg.with_trace(true);

    // Part one: the workload sweep. One series per engine; each cell's
    // breakdown table reports planned vs visited rows for the chosen path
    // on every partition the scan touched.
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind))?;
        let mut s = Series::new(format!("{kind} - AS OF sweep"));
        for (label, at) in [
            ("load snapshot", p.sys_initial),
            ("mid history", p.sys_mid),
            ("now", p.sys_now),
        ] {
            measure_cell(&traced, &mut s, &mut faults, label, || {
                ctx.scan(ctx.t.customer, &SysSpec::AsOf(at), &AppSpec::All, &[])
            });
            let out = ctx.scan_output(ctx.t.customer, &SysSpec::AsOf(at), &AppSpec::All, &[])?;
            report.note(format!(
                "{kind} {label}: {} — planned {} rows, visited {}, emitted {}",
                out.access,
                out.metrics.planned_rows,
                out.metrics.rows_visited,
                out.rows.len(),
            ));
        }
        report.add(s);
    }

    // Part two: the controlled crossover. `n` keys inserted one commit
    // apart make `AS OF t` qualify exactly `t` of `n` stored versions, so
    // the swept fractions bracket the probe's break-even point from both
    // sides and the chosen path must flip from index to scan.
    let cross_def = bitempo_core::TableDef::new(
        "cross",
        bitempo_core::Schema::new(vec![
            bitempo_core::Column::new("id", bitempo_core::DataType::Int),
            bitempo_core::Column::new("val", bitempo_core::DataType::Int),
        ]),
        vec![0],
        bitempo_core::TemporalClass::Bitemporal,
        Some("vt"),
    )?;
    const CROSS_N: i64 = 400;
    for kind in SystemKind::ALL {
        let mut engine = bitempo_engine::build_engine(kind);
        let t = engine.create_table(cross_def.clone())?;
        for i in 0..CROSS_N {
            // tblint: allow(TB007) pre-serving seed of a throwaway optimizer fixture
            engine.insert(
                t,
                bitempo_core::Row::new(vec![
                    bitempo_core::Value::Int(i),
                    bitempo_core::Value::Int(i),
                ]),
                None,
            )?;
            engine.commit();
        }
        engine.apply_tuning(&TuningConfig::temporal().with_workers(1))?;
        let mut s = Series::new(format!("{kind} - crossover (rows visited)"));
        for (pct, expect_probe) in [(5i64, true), (10, true), (25, false), (100, false)] {
            let at = SysTime((CROSS_N * pct / 100) as u64);
            let out = engine.scan(t, &SysSpec::AsOf(at), &AppSpec::All, &[])?;
            let probed = matches!(
                out.access,
                bitempo_engine::api::AccessPath::TemporalProbe(_)
            );
            s.push(format!("{pct}% qualify"), out.metrics.rows_visited as f64);
            report.note(format!(
                "{kind} crossover at {pct}%: {} — planned {} rows, visited {}, emitted {}",
                out.access,
                out.metrics.planned_rows,
                out.metrics.rows_visited,
                out.rows.len(),
            ));
            if probed != expect_probe {
                return Err(Error::Invalid(format!(
                    "{kind}: at {pct}% qualifying the optimizer chose {} — expected the \
                     {} side of the crossover",
                    out.access,
                    if expect_probe { "index" } else { "scan" }
                )));
            }
        }
        report.add(s);
    }

    // Part three: the adaptive flip, on a purpose-built table per engine so
    // the estimator's failure mode is exact and reproducible.
    let def = bitempo_core::TableDef::new(
        "flip",
        bitempo_core::Schema::new(vec![
            bitempo_core::Column::new("id", bitempo_core::DataType::Int),
            bitempo_core::Column::new("val", bitempo_core::DataType::Int),
        ]),
        vec![0],
        bitempo_core::TemporalClass::Bitemporal,
        Some("vt"),
    )?;
    for kind in SystemKind::ALL {
        bitempo_query::optimizer::reset_feedback();
        let mut engine = bitempo_engine::build_engine(kind);
        let t = engine.create_table(def.clone())?;
        for i in 0..300i64 {
            let app = if i % 2 == 0 {
                Period::new(bitempo_core::AppDate(0), bitempo_core::AppDate(5))
            } else {
                Period::new(bitempo_core::AppDate(10), bitempo_core::AppDate(20))
            };
            // tblint: allow(TB007) pre-serving seed of a throwaway optimizer fixture
            engine.insert(
                t,
                bitempo_core::Row::new(vec![
                    bitempo_core::Value::Int(i),
                    bitempo_core::Value::Int(i),
                ]),
                Some(app),
            )?;
        }
        engine.commit();
        engine.apply_tuning(&TuningConfig::temporal().with_adaptive(true).with_workers(1))?;
        let probe = bitempo_engine::api::AppSpec::AsOf(bitempo_core::AppDate(7));
        let first = engine.scan(t, &SysSpec::All, &probe, &[])?;
        let second = engine.scan(t, &SysSpec::All, &probe, &[])?;
        let mut s = Series::new(format!("{kind} - adaptive replan (est rows)"));
        s.push("plan 1", first.metrics.planned_rows as f64);
        s.push("plan 2", second.metrics.planned_rows as f64);
        report.add(s);
        report.note(format!(
            "{kind}: AS OF day 7 stabs a gap — plan 1 {} (estimated {} rows, emitted {}), \
             plan 2 {} (estimated {} rows, emitted {})",
            first.access,
            first.metrics.planned_rows,
            first.rows.len(),
            second.access,
            second.metrics.planned_rows,
            second.rows.len(),
        ));
        if !matches!(
            second.access,
            bitempo_engine::api::AccessPath::TemporalProbe(_)
        ) {
            bitempo_query::optimizer::reset_feedback();
            return Err(Error::Invalid(format!(
                "{kind}: adaptive re-plan did not switch to the temporal probe \
                 (plan 1 {}, plan 2 {})",
                first.access, second.access
            )));
        }
    }
    bitempo_query::optimizer::reset_feedback();
    report.note(
        "Expected shape: the crossover sweep probes while few rows qualify and falls back \
         to the scan once the estimated work passes break-even — the §5.9 regime, now \
         priced per site instead of thresholded. The replan series drops from ~half the \
         partition to ~nothing after one observed miss.",
    );
    report.faults = faults;
    Ok(report)
}

/// `durability`: commit throughput and crash-recovery time under the
/// three WAL durability modes — fsync per commit (`dur_strict`), 10 ms
/// group commit (`dur_batched_10ms`), and buffered (`dur_async`) — on
/// every engine, against a real file sink so strict mode pays real syncs.
///
/// Each cell replays the full update archive with write-ahead logging and
/// the default checkpoint cadence, closes the log, then rebuilds a fresh
/// engine from the written bytes plus the captured checkpoints and proves
/// the recovered state is byte-identical to the live one before any
/// timing is reported — a cell that cannot recover is an error cell, not
/// a number.
pub fn durability(cfg: &BenchConfig) -> Result<FigureReport> {
    let data = bitempo_dbgen::generate(&bitempo_dbgen::ScaleConfig::with_h(cfg.h));
    let history =
        bitempo_histgen::generate_history(&data, &bitempo_histgen::HistoryConfig::with_m(cfg.m));
    let tuning = TuningConfig::none().with_workers(cfg.workers);
    // `cfg.durability` picks the headline mode; the figure still sweeps
    // all three so the table always shows the trade-off.
    let mut modes = vec![
        DurabilityMode::Strict,
        DurabilityMode::Batched(10),
        DurabilityMode::Async,
    ];
    if !modes.contains(&cfg.durability) {
        modes.insert(0, cfg.durability);
    }
    let mut report = FigureReport::new(
        "durability",
        "Commit durability: throughput and recovery time per WAL mode",
        "txn/s (throughput series) · ms (recovery series)",
    );
    let mut faults = FaultSummary::default();
    for kind in SystemKind::ALL {
        let mut tput = Series::new(format!("{kind} - commit throughput (txn/s)"));
        let mut rcv = Series::new(format!("{kind} - recovery time (ms)"));
        for &mode in &modes {
            let x = mode.label();
            match durability_cell(kind, mode, &data, &history.archive, &tuning) {
                Ok((txn_per_s, recovery_ms)) => {
                    tput.push(x.clone(), txn_per_s);
                    rcv.push(x, recovery_ms);
                }
                Err(e) => {
                    faults.detected += 1;
                    faults.recovered += 1;
                    tput.push_error(x.clone(), e.to_string());
                    rcv.push_error(x, e.to_string());
                }
            }
        }
        report.add(tput);
        report.add(rcv);
    }
    report.note(format!(
        "Expected shape: dur_strict pays one fsync per commit and trails by orders of \
         magnitude on spinning metal (less on fast NVMe); dur_batched_10ms amortizes the \
         sync across the group and sits near dur_async, which never syncs inside the \
         timed region (its single barrier at close is excluded — that is the mode's \
         contract). Recovery time is checkpoint-bounded (cadence: every {CHECKPOINT_EVERY} \
         commits), so it is flat across modes.",
    ));
    report.faults = faults;
    Ok(report)
}

/// Checkpoint cadence of the `durability` experiment (commits per
/// checkpoint) — [`bitempo_wal::DurableOptions`]'s default.
const CHECKPOINT_EVERY: u64 = 64;

/// One `durability` cell: log the archive replay through a real temp file
/// under `mode`, recover from the written bytes, verify equivalence, and
/// return `(commit throughput in txn/s, recovery wall time in ms)`.
fn durability_cell(
    kind: SystemKind,
    mode: DurabilityMode,
    data: &bitempo_dbgen::TpchData,
    archive: &Archive,
    tuning: &TuningConfig,
) -> Result<(f64, f64)> {
    let path = std::env::temp_dir().join(format!(
        "bitempo-durability-{}-{kind}-{}.wal",
        std::process::id(),
        mode.label()
    ));
    let out = durability_cell_at(&path, kind, mode, data, archive, tuning);
    let _ = std::fs::remove_file(&path);
    out
}

fn durability_cell_at(
    path: &std::path::Path,
    kind: SystemKind,
    mode: DurabilityMode,
    data: &bitempo_dbgen::TpchData,
    archive: &Archive,
    tuning: &TuningConfig,
) -> Result<(f64, f64)> {
    use bitempo_wal::{canonical_state, Checkpoint, TxnWal};
    let file = std::fs::File::create(path)?;
    let mut log = TxnWal::create(Box::new(file), mode)?;
    let mut engine = bitempo_engine::build_engine(kind);
    let ids = bitempo_histgen::load_initial(engine.as_mut(), data)?;
    let mut checkpoints = vec![Checkpoint::capture(engine.as_mut(), &ids, 0)?.encode()];
    // Timed region: exactly the commit path — append, apply, commit, plus
    // the checkpoint cadence (identical across modes, so mode deltas are
    // pure durability cost). The closing barrier stays outside the clock:
    // dur_async's contract is that acknowledged commits may still be in
    // flight.
    let t0 = Instant::now();
    let mut commits = 0u64;
    for txn in &archive.transactions {
        let payload = bitempo_histgen::encode_txn(txn)?;
        log.append(&payload)?;
        for op in &txn.ops {
            bitempo_histgen::apply_op(engine.as_mut(), &ids, op)?;
        }
        engine.commit();
        commits += 1;
        if commits.is_multiple_of(CHECKPOINT_EVERY) {
            checkpoints.push(Checkpoint::capture(engine.as_mut(), &ids, commits)?.encode());
        }
    }
    let commit_secs = t0.elapsed().as_secs_f64();
    let durable = log.close()?;
    if durable != commits {
        return Err(Error::Invalid(format!(
            "{kind} {}: close acknowledged {durable} of {commits} commits",
            mode.label()
        )));
    }
    let bytes = std::fs::read(path)?;
    let t1 = Instant::now();
    let rec = bitempo_wal::recover(kind, &bytes, &checkpoints, tuning)?;
    let recovery_ms = t1.elapsed().as_secs_f64() * 1e3;
    if rec.report.commits != commits {
        return Err(Error::Invalid(format!(
            "{kind} {}: recovered {} of {commits} commits",
            mode.label(),
            rec.report.commits
        )));
    }
    if canonical_state(rec.engine.as_ref(), &rec.ids)? != canonical_state(engine.as_ref(), &ids)? {
        return Err(Error::Invalid(format!(
            "{kind} {}: recovered state diverges from the live engine",
            mode.label()
        )));
    }
    Ok((commits as f64 / commit_secs.max(1e-9), recovery_ms))
}

/// `mvcc`: concurrent serving-layer throughput. N worker threads run a
/// seeded mix of snapshot reads (current-state scans and AS OF scans at a
/// random past commit) and write transactions (one unique insert plus one
/// hot-key update) against a [`bitempo_txn::TxnManager`] per engine, with
/// commits logged through the write-ahead log under each durability mode.
///
/// Reported per engine: committed-transaction throughput, the
/// first-committer-wins abort rate on the hot keys, and p50/p99 latency for
/// snapshot reads and durable commits. Every cell self-verifies before it
/// reports a number: the WAL bytes plus the pre-storm checkpoint must
/// recover to a state byte-identical to the served engine, so a cell whose
/// concurrent history is not replayable is an error cell.
pub fn mvcc(cfg: &BenchConfig) -> Result<FigureReport> {
    // Group commit and buffered are the interesting regimes for a
    // concurrent commit path (strict mode's per-commit fsync is already
    // characterized by `durability`); an explicit `--durability` choice is
    // swept too if it is not one of the defaults.
    let mut modes = vec![DurabilityMode::Batched(2), DurabilityMode::Async];
    if !modes.contains(&cfg.durability) {
        modes.insert(0, cfg.durability);
    }
    let threads = [1usize, 2, 4, 8];
    let mut report = FigureReport::new(
        "mvcc",
        "MVCC serving layer: snapshot transactions under concurrency",
        "txn/s (tput) · % (aborts) · µs (latency)",
    );
    let mut faults = FaultSummary::default();
    for kind in SystemKind::ALL {
        let mut tput = Series::new(format!("{kind} txn_tput (txn/s)"));
        let mut abort = Series::new(format!("{kind} conflict_abort (%)"));
        let mut read50 = Series::new(format!("{kind} snapshot_read_p50 (µs)"));
        let mut read99 = Series::new(format!("{kind} snapshot_read_p99 (µs)"));
        let mut com50 = Series::new(format!("{kind} txn_commit_p50 (µs)"));
        let mut com99 = Series::new(format!("{kind} txn_commit_p99 (µs)"));
        for &mode in &modes {
            for &thr in &threads {
                let x = format!("{thr}thr {}", mode.label());
                match mvcc_cell(kind, mode, thr) {
                    Ok(cell) => {
                        tput.push(x.clone(), cell.txn_per_s);
                        abort.push(x.clone(), cell.abort_pct);
                        read50.push(x.clone(), cell.read_p50);
                        read99.push(x.clone(), cell.read_p99);
                        com50.push(x.clone(), cell.commit_p50);
                        com99.push(x, cell.commit_p99);
                    }
                    Err(e) => {
                        faults.detected += 1;
                        faults.recovered += 1;
                        let msg = e.to_string();
                        tput.push_error(x.clone(), msg.clone());
                        abort.push_error(x.clone(), msg.clone());
                        read50.push_error(x.clone(), msg.clone());
                        read99.push_error(x.clone(), msg.clone());
                        com50.push_error(x.clone(), msg.clone());
                        com99.push_error(x, msg);
                    }
                }
            }
        }
        report.add(tput);
        report.add(abort);
        report.add(read50);
        report.add(read99);
        report.add(com50);
        report.add(com99);
    }
    report.note(
        "Expected shape: read-mostly snapshot transactions scale with threads (readers \
         share the state lock); commit throughput is bounded by the exclusive publish \
         section plus the durability wait, so dur_batched_2ms trails dur_async at one \
         thread and converges as group commit amortizes the sync across concurrent \
         committers. The conflict_abort series rises with thread count — more \
         first-committer-wins losers per hot key — and is zero at 1 thread by \
         construction. All latencies are end-to-end: pin-to-rows for reads, \
         validate-to-durable for commits.",
    );
    report.faults = faults;
    Ok(report)
}

/// Hot keys every `mvcc` writer contends on (more keys, fewer conflicts).
const MVCC_HOT_KEYS: i64 = 32;
/// Transactions attempted per `mvcc` worker thread.
const MVCC_TXNS_PER_THREAD: usize = 64;
/// First id for writer-unique inserts, clear of the hot range.
const MVCC_INSERT_BASE: i64 = 1_000_000;

/// One `mvcc` cell's aggregated measurements.
struct MvccCell {
    txn_per_s: f64,
    abort_pct: f64,
    read_p50: f64,
    read_p99: f64,
    commit_p50: f64,
    commit_p99: f64,
}

/// Nearest-rank percentile of an unsorted latency sample, in place.
fn percentile(sample: &mut [f64], p: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((sample.len() - 1) as f64 * p).round() as usize;
    sample[idx]
}

/// One `mvcc` cell against a real temp-file WAL; the file is removed even
/// when the cell errors.
fn mvcc_cell(kind: SystemKind, mode: DurabilityMode, threads: usize) -> Result<MvccCell> {
    let path = std::env::temp_dir().join(format!(
        "bitempo-mvcc-{}-{kind}-{}-{threads}.wal",
        std::process::id(),
        mode.label()
    ));
    let out = mvcc_cell_at(&path, kind, mode, threads);
    let _ = std::fs::remove_file(&path);
    out
}

fn mvcc_cell_at(
    path: &std::path::Path,
    kind: SystemKind,
    mode: DurabilityMode,
    threads: usize,
) -> Result<MvccCell> {
    use bitempo_engine::testutil::{bitemp_table, simple_row};
    use bitempo_engine::BitemporalEngine;
    use bitempo_txn::TxnManager;
    use bitempo_wal::{canonical_state, Checkpoint, TxnWal};
    let file = std::fs::File::create(path)?;
    let log = TxnWal::create(Box::new(file), mode)?;
    let mut engine = bitempo_engine::build_engine(kind);
    let table = engine.create_table(bitemp_table("balance"))?;
    for k in 0..MVCC_HOT_KEYS {
        // tblint: allow(TB007) pre-serving seed; the TxnManager wraps this engine next
        engine.insert(table, simple_row(k, 0), None)?;
    }
    engine.commit();
    let ids = vec![table];
    let base = Checkpoint::capture(engine.as_mut(), &ids, 0)?.encode();
    let mgr = TxnManager::new(engine, ids, Some(log))?;

    // The storm: each worker runs a seeded 40/20/40 mix of current reads,
    // AS OF reads, and write transactions. Conflict losers retry with the
    // same write set — the manager counts every abort.
    let t0 = Instant::now();
    let mut worker_results: Vec<Result<(Vec<f64>, Vec<f64>)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let mgr = &mgr;
                s.spawn(move || -> Result<(Vec<f64>, Vec<f64>)> {
                    let mut rng = Pcg32::new(0x4D56_4343 ^ kind as u64, worker as u64);
                    let mut read_lat = Vec::new();
                    let mut commit_lat = Vec::new();
                    for i in 0..MVCC_TXNS_PER_THREAD {
                        let roll = rng.int_range(0, 9);
                        if roll < 6 {
                            // Snapshot read: pin, scan, unpin. 2-in-6 are
                            // AS OF scans at a random past commit.
                            let begun = Instant::now();
                            let txn = mgr.begin()?;
                            let sys = if roll < 4 {
                                SysSpec::Current
                            } else {
                                let pin = txn.pin().0.max(1);
                                SysSpec::AsOf(SysTime(rng.int_range(1, pin as i64) as u64))
                            };
                            let snap = txn.snapshot();
                            let out = snap.view().scan(table, &sys, &AppSpec::All, &[])?;
                            drop(snap);
                            if out.rows.is_empty() {
                                return Err(Error::Invalid(format!(
                                    "{kind}: a snapshot scan saw an empty table"
                                )));
                            }
                            read_lat.push(begun.elapsed().as_secs_f64() * 1e6);
                        } else {
                            // Writer: one unique insert plus one hot-key
                            // update, atomically; retry on conflict.
                            let serial = (worker * MVCC_TXNS_PER_THREAD + i) as i64;
                            let val = serial + 1;
                            let hot = rng.int_range(0, MVCC_HOT_KEYS - 1);
                            loop {
                                let mut txn = mgr.begin()?;
                                txn.insert(
                                    table,
                                    simple_row(MVCC_INSERT_BASE + serial, val),
                                    None,
                                )?;
                                txn.update(table, &Key::int(hot), &[(1, Value::Int(val))], None)?;
                                let begun = Instant::now();
                                match txn.commit() {
                                    Ok(_) => {
                                        commit_lat.push(begun.elapsed().as_secs_f64() * 1e6);
                                        break;
                                    }
                                    Err(Error::Conflict(_)) => continue,
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                    }
                    Ok((read_lat, commit_lat))
                })
            })
            .collect();
        for h in handles {
            worker_results.push(h.join().expect("mvcc worker panicked"));
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut read_lat = Vec::new();
    let mut commit_lat = Vec::new();
    for r in worker_results {
        let (rl, cl) = r?;
        read_lat.extend(rl);
        commit_lat.extend(cl);
    }
    let conflicts = mgr
        .counters()
        .conflicts
        .load(std::sync::atomic::Ordering::Relaxed);
    let commits = commit_lat.len() as u64;

    // Self-verification: the WAL plus the pre-storm checkpoint must rebuild
    // exactly the served state, or the cell is an error, not a number.
    let (live, ids, durable) = mgr.close()?;
    if durable != commits {
        return Err(Error::Invalid(format!(
            "{kind} {}: close acknowledged {durable} of {commits} commits",
            mode.label()
        )));
    }
    let bytes = std::fs::read(path)?;
    let rec = bitempo_wal::recover(kind, &bytes, &[base], &TuningConfig::none())?;
    if rec.report.commits != commits {
        return Err(Error::Invalid(format!(
            "{kind} {}: recovered {} of {commits} interactive commits",
            mode.label(),
            rec.report.commits
        )));
    }
    if canonical_state(rec.engine.as_ref(), &rec.ids)? != canonical_state(live.as_ref(), &ids)? {
        return Err(Error::Invalid(format!(
            "{kind} {}: recovered state diverges from the served engine",
            mode.label()
        )));
    }

    let total = read_lat.len() as u64 + commits;
    let attempts = commits + conflicts;
    Ok(MvccCell {
        txn_per_s: total as f64 / elapsed.max(1e-9),
        abort_pct: if attempts == 0 {
            0.0
        } else {
            conflicts as f64 * 100.0 / attempts as f64
        },
        read_p50: percentile(&mut read_lat, 0.50),
        read_p99: percentile(&mut read_lat, 0.99),
        commit_p50: percentile(&mut commit_lat, 0.50),
        commit_p99: percentile(&mut commit_lat, 0.99),
    })
}

/// Sharded serving layer: committed-txn throughput and commit latency vs
/// shard count × thread count × durability mode, every cell recovery-
/// verified shard by shard against the uncrashed served state — including
/// a crash-at-prepare seed that drops one shard's final commit decision
/// and must converge from the sibling's decision record.
pub fn sharding(cfg: &BenchConfig) -> Result<FigureReport> {
    // Strict and group commit are the regimes where the per-shard WAL is
    // the bottleneck worth sharding away; an explicit `--durability` choice
    // joins the sweep unless it is Async, whose post-crash cross-shard
    // atomicity caveat (DESIGN.md §13) excludes it from the recovery-
    // verified matrix.
    let mut modes = vec![DurabilityMode::Strict, DurabilityMode::Batched(2)];
    if !modes.contains(&cfg.durability) && cfg.durability != DurabilityMode::Async {
        modes.insert(0, cfg.durability);
    }
    let shard_counts = [1usize, 2, 4];
    let threads = [1usize, 4];
    let mut report = FigureReport::new(
        "sharding",
        "Hash-sharded cluster: throughput and commit latency vs shard count",
        "txn/s (tput) · µs (latency) · % (cross-shard share)",
    );
    let mut faults = FaultSummary::default();
    for kind in SystemKind::ALL {
        let mut tput = Series::new(format!("{kind} txn_tput (txn/s)"));
        let mut com50 = Series::new(format!("{kind} commit_p50 (µs)"));
        let mut com99 = Series::new(format!("{kind} commit_p99 (µs)"));
        let mut xshare = Series::new(format!("{kind} cross_shard_commits (%)"));
        for &mode in &modes {
            for &shards in &shard_counts {
                for &thr in &threads {
                    let x = format!("{shards}sh {thr}thr {}", mode.label());
                    match sharding_cell(kind, mode, shards, thr) {
                        Ok(cell) => {
                            tput.push(x.clone(), cell.txn_per_s);
                            com50.push(x.clone(), cell.commit_p50);
                            com99.push(x.clone(), cell.commit_p99);
                            xshare.push(x, cell.cross_pct);
                        }
                        Err(e) => {
                            faults.detected += 1;
                            faults.recovered += 1;
                            let msg = e.to_string();
                            tput.push_error(x.clone(), msg.clone());
                            com50.push_error(x.clone(), msg.clone());
                            com99.push_error(x.clone(), msg.clone());
                            xshare.push_error(x, msg);
                        }
                    }
                }
            }
        }
        report.add(tput);
        report.add(com50);
        report.add(com99);
        report.add(xshare);
    }
    report.note(
        "Expected shape: single-shard commits on different shards never share a commit \
         gate, a WAL, or data — per-shard tables shrink with the shard count — so \
         strict-mode throughput grows with shards where per-commit work dominates \
         (clearest single-threaded on the heavier engines), until the cross-shard \
         share's 2PC (two records per participant, a prepare barrier under the gates; \
         batched-mode p99 near two flush ticks) and the cluster-level validate/publish \
         section eat the gain; at 1 shard the cluster degenerates to the PR 8 serving \
         layer plus one oracle increment, which bounds the coordination overhead from \
         below. Every cell is recovery-verified per shard against the served state, \
         and multi-shard cells replay a crash seed that truncates one shard's final \
         decision record — presumed-abort recovery must finish that commit from the \
         surviving sibling's decision.",
    );
    report.faults = faults;
    Ok(report)
}

/// Hot keys pre-seeded for the `sharding` storm.
const SHARD_HOT_KEYS: i64 = 48;
/// Transactions attempted per `sharding` worker thread.
const SHARD_TXNS_PER_THREAD: usize = 96;
/// First id for writer-unique inserts, clear of the hot range.
const SHARD_INSERT_BASE: i64 = 2_000_000;

/// One `sharding` cell's aggregated measurements.
struct ShardingCell {
    txn_per_s: f64,
    commit_p50: f64,
    commit_p99: f64,
    cross_pct: f64,
}

fn sharding_cell(
    kind: SystemKind,
    mode: DurabilityMode,
    shards: usize,
    threads: usize,
) -> Result<ShardingCell> {
    use bitempo_engine::testutil::{bitemp_table, simple_row};
    use bitempo_engine::BitemporalEngine;
    use bitempo_shard::{partition_checkpoint, recover_cluster, Cluster, ShardInput};
    use bitempo_wal::{canonical_state, Checkpoint, SharedBuf, TxnWal, WalPayload};
    use bitempo_workloads::sharding::shard_of;

    // One base engine, partitioned by the stable key hash. In-memory WAL
    // images (one per shard, each with its own group-commit flusher in
    // `mode`) so the crash seeds below can truncate at byte boundaries.
    let mut engine = bitempo_engine::build_engine(kind);
    let table = engine.create_table(bitemp_table("balance"))?;
    for k in 0..SHARD_HOT_KEYS {
        // tblint: allow(TB007) pre-serving seed; the cluster wraps this engine next
        engine.insert(table, simple_row(k, 0), None)?;
    }
    engine.commit();
    let base = Checkpoint::capture(engine.as_mut(), &[table], 0)?;
    let bases: Vec<Vec<u8>> = partition_checkpoint(&base, shards)
        .iter()
        .map(|p| p.encode())
        .collect();
    let bufs: Vec<SharedBuf> = (0..shards).map(|_| SharedBuf::new()).collect();
    let wals = bufs
        .iter()
        .map(|b| TxnWal::create(Box::new(b.clone()), mode).map(Some))
        .collect::<Result<Vec<_>>>()?;
    let cluster = Cluster::from_checkpoint(kind, &base, wals)?;
    let table = cluster.table_ids()[0];

    // Hot keys grouped by owning shard, for steering single- vs
    // cross-shard writers deterministically.
    let mut by_shard: Vec<Vec<i64>> = vec![Vec::new(); shards];
    for k in 0..SHARD_HOT_KEYS {
        by_shard[shard_of(&Key::int(k), shards)].push(k);
    }
    if by_shard.iter().any(|b| b.is_empty()) {
        return Err(Error::Invalid(format!(
            "{shards}-way partition left a shard without hot keys"
        )));
    }

    // The storm: each worker runs a seeded mix of snapshot reads (25 %),
    // single-shard writes (62.5 %) and cross-shard writes (12.5 %, which
    // degenerate to single-shard at 1 shard) — roughly the "mostly
    // partitionable, occasionally entangled" regime sharded deployments
    // aim for; the cross-shard share is deliberately the minority so the
    // 2PC tax does not drown the gate parallelism the sweep is pricing.
    // Conflict losers retry the same write set.
    let t0 = Instant::now();
    let mut worker_results: Vec<Result<Vec<f64>>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let cluster = &cluster;
                let by_shard = &by_shard;
                s.spawn(move || -> Result<Vec<f64>> {
                    let mut rng = Pcg32::new(0x5348_5244 ^ kind as u64, worker as u64);
                    let mut commit_lat = Vec::new();
                    for i in 0..SHARD_TXNS_PER_THREAD {
                        let roll = rng.int_range(0, 7);
                        if roll < 2 {
                            // Pinned cross-shard snapshot read.
                            let snap = cluster.snapshot();
                            let guards = snap.read()?;
                            let out =
                                guards
                                    .view()
                                    .scan(table, &SysSpec::Current, &AppSpec::All, &[])?;
                            if out.rows.is_empty() {
                                return Err(Error::Invalid(format!(
                                    "{kind}: a cluster snapshot saw an empty table"
                                )));
                            }
                            continue;
                        }
                        let serial = (worker * SHARD_TXNS_PER_THREAD + i) as i64;
                        let val = serial + 1;
                        // Pick the write set: one hot key, or two on
                        // different shards for the cross-shard rolls.
                        let home = rng.int_range(0, shards as i64 - 1) as usize;
                        let pick = |rng: &mut Pcg32, s: usize| {
                            by_shard[s][rng.int_range(0, by_shard[s].len() as i64 - 1) as usize]
                        };
                        let a = pick(&mut rng, home);
                        let b = if roll == 7 && shards > 1 {
                            Some(pick(&mut rng, (home + 1) % shards))
                        } else {
                            None
                        };
                        // Route the filler insert to the hot key's shard:
                        // a "single-shard" transaction must genuinely stay
                        // on one shard, or the mix silently drifts toward
                        // 2PC. Each serial owns a 32-slot stride, so the
                        // probe never collides across transactions; a
                        // 32-probe miss (a ~1e-4 event at 4 shards) falls
                        // back to the stride base and commits cross-shard.
                        let base = SHARD_INSERT_BASE + serial * 32;
                        let ins = (base..base + 32)
                            .find(|k| shard_of(&Key::int(*k), shards) == home)
                            .unwrap_or(base);
                        loop {
                            let mut txn = cluster.begin()?;
                            txn.insert(table, simple_row(ins, val), None)?;
                            txn.update(table, &Key::int(a), &[(1, Value::Int(val))], None)?;
                            if let Some(b) = b {
                                txn.update(table, &Key::int(b), &[(1, Value::Int(-val))], None)?;
                            }
                            let begun = Instant::now();
                            match txn.commit() {
                                Ok(_) => {
                                    commit_lat.push(begun.elapsed().as_secs_f64() * 1e6);
                                    break;
                                }
                                Err(Error::Conflict(_)) => continue,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Ok(commit_lat)
                })
            })
            .collect();
        for h in handles {
            worker_results.push(h.join().expect("sharding worker panicked"));
        }
    });
    // One final deterministic cross-shard commit, so every multi-shard
    // cell's WALs end in a prepare/decision pair the crash seed can cut.
    if shards > 1 {
        let mut txn = cluster.begin()?;
        txn.update(
            table,
            &Key::int(by_shard[0][0]),
            &[(1, Value::Int(-1))],
            None,
        )?;
        txn.update(
            table,
            &Key::int(by_shard[1][0]),
            &[(1, Value::Int(-2))],
            None,
        )?;
        txn.commit()?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let mut commit_lat = Vec::new();
    for r in worker_results {
        commit_lat.extend(r?);
    }
    let committed = cluster
        .counters()
        .committed
        .load(std::sync::atomic::Ordering::Relaxed);
    let cross = cluster
        .counters()
        .cross_shard
        .load(std::sync::atomic::Ordering::Relaxed);
    let reads = cluster
        .counters()
        .read_only
        .load(std::sync::atomic::Ordering::Relaxed);

    // The uncrashed oracle: the served per-shard states at close.
    let mut served = Vec::with_capacity(shards);
    for (live, ids, _durable) in cluster.close()? {
        served.push(canonical_state(live.as_ref(), &ids)?);
    }
    let images: Vec<Vec<u8>> = bufs.iter().map(|b| b.snapshot()).collect();

    // Verification 1 — clean recovery: every shard rebuilt from its own
    // checkpoint + full WAL image must match the served state exactly.
    let inputs: Vec<ShardInput> = images
        .iter()
        .zip(&bases)
        .map(|(wal, base)| ShardInput {
            wal: wal.clone(),
            checkpoints: vec![base.clone()],
        })
        .collect();
    let rec = recover_cluster(kind, &inputs, &TuningConfig::none())?;
    for (si, (r, want)) in rec.shards.iter().zip(&served).enumerate() {
        if &canonical_state(r.engine.as_ref(), &r.ids)? != want {
            return Err(Error::Invalid(format!(
                "{kind} {} {shards}sh: shard {si} recovered state diverges from served",
                mode.label()
            )));
        }
    }

    // Verification 2 — crash-at-prepare seed: drop shard 0's final record
    // (the decision of the closing cross-shard commit), leaving its
    // prepare undecided; recovery must finish it from shard 1's decision
    // and still match the served state on every shard.
    if shards > 1 {
        let scan = bitempo_storage::wal::scan(&images[0]);
        let last = scan
            .records
            .last()
            .ok_or_else(|| Error::Invalid("shard 0 logged nothing".into()))?;
        if !matches!(
            bitempo_wal::decode_payload(&last.payload)?,
            WalPayload::Decision { commit: true, .. }
        ) {
            return Err(Error::Invalid(format!(
                "{kind} {}: shard 0's log does not end in the closing commit decision",
                mode.label()
            )));
        }
        let frame = bitempo_storage::wal::FRAME_OVERHEAD
            + bitempo_storage::wal::BODY_OVERHEAD
            + last.payload.len();
        let mut inputs = inputs;
        inputs[0].wal.truncate(images[0].len() - frame);
        let rec = recover_cluster(kind, &inputs, &TuningConfig::none())?;
        if rec.committed_pending.is_empty() {
            return Err(Error::Invalid(format!(
                "{kind} {}: the crash seed's undecided prepare was not resolved",
                mode.label()
            )));
        }
        for (si, (r, want)) in rec.shards.iter().zip(&served).enumerate() {
            if &canonical_state(r.engine.as_ref(), &r.ids)? != want {
                return Err(Error::Invalid(format!(
                    "{kind} {} {shards}sh: shard {si} diverges after the crash seed",
                    mode.label()
                )));
            }
        }
    }

    let commits = commit_lat.len() as u64;
    debug_assert_eq!(
        committed,
        commits + reads + u64::from(shards > 1),
        "cluster commit accounting"
    );
    Ok(ShardingCell {
        txn_per_s: committed as f64 / elapsed.max(1e-9),
        commit_p50: percentile(&mut commit_lat, 0.50),
        commit_p99: percentile(&mut commit_lat, 0.99),
        cross_pct: if committed == 0 {
            0.0
        } else {
            cross as f64 * 100.0 / committed as f64
        },
    })
}

/// All experiment ids in run order.
pub const ALL_EXPERIMENTS: [&str; 26] = [
    "table1",
    "table2",
    "arch",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "scaling",
    "faults",
    "explain",
    "temporal-index",
    "lint-plans",
    "optimizer",
    "durability",
    "mvcc",
    "sharding",
];

/// Runs one experiment by id (fig15/fig16 run at small scale
/// automatically; they are included by `run_all`).
pub fn run_experiment(id: &str, cfg: &BenchConfig) -> Result<FigureReport> {
    match id {
        "table1" => table1(cfg),
        "table2" => table2(cfg),
        "arch" => architecture(cfg),
        "fig2" => fig2(cfg),
        "fig3" => fig3(cfg),
        "fig4" => fig4(cfg),
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7a" => fig7(cfg, false),
        "fig7b" => fig7(cfg, true),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "fig12" => fig12(cfg),
        "fig13" => fig13(cfg),
        "fig14" => fig14(&BenchConfig::small_scale()),
        "fig15" => fig15(&BenchConfig::small_scale()),
        "fig16" => fig16(cfg),
        "scaling" => scaling(cfg),
        "faults" => faults(cfg),
        "explain" => explain(cfg),
        "temporal-index" => temporal_index(cfg),
        "lint-plans" => lint_plans(cfg),
        "optimizer" => optimizer_experiment(cfg),
        "durability" => durability(cfg),
        "mvcc" => mvcc(cfg),
        "sharding" => sharding(cfg),
        other => Err(bitempo_core::Error::Invalid(format!(
            "unknown experiment {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_cfg() -> BenchConfig {
        BenchConfig {
            h: 0.001,
            m: 0.0003,
            repetitions: 1,
            discard: 0,
            batch_size: 1,
            workers: 2,
            query_timeout_millis: crate::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
            trace: false,
            durability: DurabilityMode::Async,
        }
    }

    #[test]
    fn explain_reports_access_paths_for_every_engine() {
        let r = explain(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 4, "one series per system");
        for s in &r.series {
            assert_eq!(s.points.len(), 5, "one cell per query class: {}", s.label);
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
            // Tracing is forced on, so every cell carries a breakdown.
            assert_eq!(s.breakdowns.len(), 5, "{}", s.label);
            for (x, rows) in &s.breakdowns {
                assert!(!rows.is_empty(), "{} at {x} has no access rows", s.label);
            }
        }
        let md = r.to_markdown();
        assert!(md.contains("#### Access paths"), "{md}");
        // The traced pass exported a loadable chrome trace.
        let trace = std::fs::read_to_string("results/explain.trace.json").unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    }

    #[test]
    fn temporal_index_experiment_probes_and_reports_costs() {
        let r = temporal_index(&micro_cfg()).unwrap();
        assert_eq!(
            r.series.len(),
            16,
            "4 systems × (off, on) × (figures, sweep)"
        );
        for s in &r.series[..8] {
            assert_eq!(s.points.len(), 3, "one cell per T/K/R shape: {}", s.label);
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
        }
        for s in &r.series[8..] {
            assert_eq!(s.points.len(), 2, "two history steps: {}", s.label);
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
        }
        // Build cost and footprint are reported for every engine — no
        // probe-time win without its maintenance price.
        for kind in SystemKind::ALL {
            assert!(
                r.notes
                    .iter()
                    .any(|n| n.starts_with(&format!("{kind}: index build"))),
                "missing build/footprint note for {kind}: {:?}",
                r.notes
            );
        }
        // The deep-history probes really ran through the temporal index on
        // at least two architectures (the acceptance bar for sublinear
        // system-time travel).
        let probed = SystemKind::ALL
            .into_iter()
            .filter(|kind| {
                r.notes
                    .iter()
                    .any(|n| n.starts_with(&format!("{kind} @")) && n.contains("tindex("))
            })
            .count();
        assert!(
            probed >= 2,
            "expected ≥2 probing engines; notes: {:?}",
            r.notes
        );
    }

    #[test]
    fn optimizer_experiment_shows_crossover_and_adaptive_flip() {
        let r = optimizer_experiment(&micro_cfg()).unwrap();
        // Four workload-sweep, four crossover, four replan series. The
        // crossover assertions live inside the experiment: it returns Err
        // if any engine picks the wrong side of the break-even point.
        assert_eq!(r.series.len(), 12, "{:?}", r.series.len());
        for kind in SystemKind::ALL {
            let label = format!("{kind} - adaptive replan (est rows)");
            let s = r
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"));
            assert_eq!(s.points.len(), 2, "{label}");
            // The observed miss must shrink the second plan's estimate.
            assert!(s.points[1].1 < s.points[0].1, "{label}: {:?}", s.points);
        }
        // The flip is spelled out per engine; the experiment itself errors
        // if any second plan is not a temporal probe.
        let flips = r
            .notes
            .iter()
            .filter(|n| n.contains("stabs a gap") && n.contains("plan 2 tindex"))
            .count();
        assert_eq!(flips, 4, "{:?}", r.notes);
    }

    #[test]
    fn lint_plans_accepts_every_engines_representative_plans() {
        let r = lint_plans(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 4, "one series per system");
        for s in &r.series {
            assert_eq!(
                s.points.len(),
                5,
                "one plan per workload class: {}",
                s.label
            );
            for (x, violations) in &s.points {
                assert_eq!(*violations, 0.0, "{}: {x} has violations", s.label);
            }
        }
        assert!(
            r.notes.iter().any(|n| n.contains("0 violations")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn table_experiments_run() {
        let r = table1(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 2);
        let r = table2(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 7);
        let r = architecture(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 4);
    }

    #[test]
    fn fig2_and_fig6_shapes() {
        let r = fig2(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 4, "one series per system");
        assert_eq!(r.series[0].points.len(), 5);
        let r = fig6(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 3, "A, B, C only");
    }

    #[test]
    fn scaling_report_shape() {
        let r = scaling(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 4, "one series per system");
        assert!(
            r.series.iter().all(|s| s.points.len() == 6),
            "ORDERS + LINEITEM at 1/2/4 workers"
        );
        assert!(r.notes.iter().any(|n| n.contains("morsels")));
    }

    #[test]
    fn fault_experiment_detects_and_recovers() {
        let r = faults(&micro_cfg()).unwrap();
        // 1 bit flip + 1 transient + 4 worker panics + 1 forced timeout.
        assert_eq!(r.faults.injected, 7, "{:?}", r.faults);
        // Detected: the bit flip, the four panics, the timeout.
        assert_eq!(r.faults.detected, 6, "{:?}", r.faults);
        // Recovered: the transient retry, four clean post-panic scans,
        // the degraded-but-complete timeout cell.
        assert_eq!(r.faults.recovered, 6, "{:?}", r.faults);
        let md = r.to_markdown();
        assert!(md.contains("ERR"), "{md}");
        assert!(
            md.contains("faults: 7 injected / 6 detected / 6 recovered"),
            "{md}"
        );
    }

    #[test]
    fn degraded_run_still_produces_complete_report() {
        // Acceptance scenario: force every query in fig2 to time out; the
        // experiment must still return a full-shape report whose cells are
        // all errors rather than aborting.
        let r = fig2(&micro_cfg().with_timeout(0)).unwrap();
        assert_eq!(r.series.len(), 4);
        assert!(r.series.iter().all(|s| s.points.len() == 5));
        assert!(r.series.iter().all(|s| s.errors.len() == 5));
        assert_eq!(r.faults.detected, 20, "{:?}", r.faults);
        assert_eq!(r.faults.recovered, 20, "{:?}", r.faults);
    }

    #[test]
    fn unknown_experiment_rejected() {
        assert!(run_experiment("fig99", &micro_cfg()).is_err());
    }

    #[test]
    fn durability_experiment_covers_every_mode_without_errors() {
        let r = durability(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 8, "throughput + recovery per engine");
        for s in &r.series {
            assert_eq!(s.points.len(), 3, "{}: one cell per mode", s.label);
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
            for (x, v) in &s.points {
                assert!(v.is_finite() && *v > 0.0, "{}/{x}: {v}", s.label);
            }
        }
        let xs: Vec<&str> = r.series[0].points.iter().map(|(x, _)| x.as_str()).collect();
        assert_eq!(xs, ["dur_strict", "dur_batched_10ms", "dur_async"]);
        assert_eq!(r.faults.detected, 0, "{:?}", r.faults);
    }

    #[test]
    fn mvcc_experiment_sweeps_threads_and_modes_without_errors() {
        let r = mvcc(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 24, "six metric series per engine");
        for s in &r.series {
            assert_eq!(
                s.points.len(),
                8,
                "{}: 4 thread counts x 2 durability modes",
                s.label
            );
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
            for (x, v) in &s.points {
                assert!(v.is_finite() && *v >= 0.0, "{}/{x}: {v}", s.label);
            }
        }
        // The issue's series vocabulary is present verbatim.
        for needle in ["txn_", "snapshot_", "conflict_"] {
            assert!(
                r.series.iter().any(|s| s.label.contains(needle)),
                "missing a {needle} series"
            );
        }
        let xs: Vec<&str> = r.series[0].points.iter().map(|(x, _)| x.as_str()).collect();
        assert_eq!(xs[0], "1thr dur_batched_2ms");
        assert_eq!(xs[7], "8thr dur_async");
        // One thread can never lose first-committer-wins validation.
        for s in r.series.iter().filter(|s| s.label.contains("conflict_")) {
            let (x, v) = &s.points[0];
            assert_eq!(*v, 0.0, "{}/{x}: single-threaded aborts", s.label);
        }
        assert_eq!(r.faults.detected, 0, "{:?}", r.faults);
    }

    #[test]
    fn sharding_experiment_sweeps_shards_and_verifies_recovery() {
        let r = sharding(&micro_cfg()).unwrap();
        assert_eq!(r.series.len(), 16, "four metric series per engine");
        for s in &r.series {
            assert_eq!(
                s.points.len(),
                12,
                "{}: 3 shard counts x 2 threads x 2 durability modes",
                s.label
            );
            assert!(s.errors.is_empty(), "{}: {:?}", s.label, s.errors);
            for (x, v) in &s.points {
                assert!(v.is_finite() && *v >= 0.0, "{}/{x}: {v}", s.label);
            }
        }
        let xs: Vec<&str> = r.series[0].points.iter().map(|(x, _)| x.as_str()).collect();
        assert_eq!(xs[0], "1sh 1thr dur_strict");
        assert_eq!(xs[11], "4sh 4thr dur_batched_2ms");
        // A single-shard cluster can never run 2PC; multi-shard cells
        // with 4 threads always see some cross-shard commits (the storm
        // steers 1-in-4 writers across shards, plus the closing commit).
        for s in r.series.iter().filter(|s| s.label.contains("cross_shard")) {
            for (x, v) in &s.points {
                if x.starts_with("1sh") {
                    assert_eq!(*v, 0.0, "{}/{x}: cross-shard on one shard", s.label);
                } else {
                    assert!(*v > 0.0, "{}/{x}: no cross-shard commits", s.label);
                }
            }
        }
        assert_eq!(r.faults.detected, 0, "{:?}", r.faults);
    }
}
