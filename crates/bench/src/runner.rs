//! Instance building and latency measurement.

use crate::report::{AccessRow, FaultSummary, Series};
use bitempo_core::fault::panic_message;
use bitempo_core::obs::{self, TraceLog};
use bitempo_core::{Error, Result, Row, TableDef, TemporalClass};
use bitempo_dbgen::{ScaleConfig, TpchData};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::loader::{self, LoadReport};
use bitempo_histgen::{History, HistoryConfig};
pub use bitempo_storage::wal::DurabilityMode;
use bitempo_workloads::QueryParams;
use std::time::Instant;

/// Benchmark configuration: scaling plus measurement discipline.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// TPC-H scale factor `h` (1.0 ≈ 1 GB).
    pub h: f64,
    /// History scale `m` (1.0 = one million scenarios).
    pub m: f64,
    /// Measurement repetitions (paper: 10).
    pub repetitions: usize,
    /// Warm-up repetitions discarded (paper: 3).
    pub discard: usize,
    /// Scenarios per loader transaction (Fig 13 varies this).
    pub batch_size: usize,
    /// Worker threads for morsel-parallel sequential scans. Forwarded into
    /// every engine's [`TuningConfig`] by [`Instance::build`]; `1` is the
    /// single-threaded execution the paper measured.
    pub workers: usize,
    /// Per-query wall-clock budget in milliseconds, checked cooperatively
    /// after each repetition (queries run inline on the measuring thread
    /// and are never preempted mid-flight). A repetition that overruns aborts the cell
    /// with [`Error::QueryTimeout`]. `0` is the deterministic fault hook:
    /// every query exceeds a zero budget, so the first repetition times out.
    pub query_timeout_millis: u64,
    /// Collect access-path traces and operator spans for the *kept*
    /// repetitions ([`measure_traced`]): the bench reports render a
    /// per-cell access-path breakdown from them. Tracing is thread-local
    /// and off outside the traced repetitions; disabling it makes
    /// [`measure_traced`] behave exactly like [`measure`].
    pub trace: bool,
    /// Commit durability for the `durability` experiment: how the
    /// write-ahead log acknowledges commits (fsync per commit, group
    /// commit, or buffered). Query experiments ignore it — replayed
    /// instances are rebuilt from the archive, not from a WAL.
    pub durability: DurabilityMode,
}

impl BenchConfig {
    /// The default laptop-scale configuration used by the experiment
    /// binary: the paper's 1.0/1.0 setting scaled down by 1000×, preserving
    /// the h : m ratio (one update scenario per ~1.5 initial orders).
    pub fn default_scale() -> BenchConfig {
        BenchConfig {
            h: 0.002,
            m: 0.002,
            repetitions: 7,
            discard: 2,
            batch_size: 1,
            workers: bitempo_engine::api::default_workers(),
            query_timeout_millis: DEFAULT_QUERY_TIMEOUT_MILLIS,
            trace: true,
            durability: DurabilityMode::Async,
        }
    }

    /// A smaller configuration for the expensive R/B experiments — the
    /// paper did the same ("we measured this experiment on a smaller data
    /// set", §5.6).
    pub fn small_scale() -> BenchConfig {
        BenchConfig {
            h: 0.001,
            m: 0.001,
            repetitions: 5,
            discard: 1,
            batch_size: 1,
            workers: bitempo_engine::api::default_workers(),
            query_timeout_millis: DEFAULT_QUERY_TIMEOUT_MILLIS,
            trace: true,
            durability: DurabilityMode::Async,
        }
    }

    /// Scales `h`/`m` while keeping the measurement discipline.
    #[must_use]
    pub fn with_scale(mut self, h: f64, m: f64) -> BenchConfig {
        self.h = h;
        self.m = m;
        self
    }

    /// This configuration with the given scan parallelism (`0` clamps to 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> BenchConfig {
        self.workers = workers.max(1);
        self
    }

    /// This configuration with the given per-query wall-clock budget
    /// (`0` forces every query to time out — the fault-injection hook).
    #[must_use]
    pub fn with_timeout(mut self, millis: u64) -> BenchConfig {
        self.query_timeout_millis = millis;
        self
    }

    /// This configuration with access-path tracing on or off.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> BenchConfig {
        self.trace = trace;
        self
    }

    /// This configuration with the given commit durability mode.
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityMode) -> BenchConfig {
        self.durability = durability;
        self
    }
}

/// Default per-query wall-clock budget: one minute, far above any
/// laptop-scale cell, so fault-free runs never trip it.
pub const DEFAULT_QUERY_TIMEOUT_MILLIS: u64 = 60_000;

/// A fully-loaded benchmark instance: all four engines, the generator
/// truth, and the per-engine load reports.
pub struct Instance {
    /// Engines in `SystemKind::ALL` order.
    pub engines: Vec<(SystemKind, Box<dyn BitemporalEngine>)>,
    /// Version-0 data.
    pub data: TpchData,
    /// The generated history (archive + oracle state + Table-2 stats).
    pub history: History,
    /// Replay timing per engine.
    pub load_reports: Vec<(SystemKind, LoadReport)>,
    /// Wall nanoseconds spent loading version 0, per engine.
    pub initial_load_nanos: Vec<(SystemKind, u64)>,
    /// Derived query parameters.
    pub params: QueryParams,
}

impl Instance {
    /// Generates data and history at the configured scales and loads every
    /// engine by archive replay, applying `tuning` afterwards (the paper
    /// builds indexes after the load, like its DBAs did). The config's
    /// `workers` knob overrides the tuning's, so one `BenchConfig` pins the
    /// scan parallelism of the whole run.
    pub fn build(config: &BenchConfig, tuning: &TuningConfig) -> Result<Instance> {
        let tuning = tuning.clone().with_workers(config.workers);
        let tuning = &tuning;
        let data = bitempo_dbgen::generate(&ScaleConfig::with_h(config.h));
        let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(config.m));
        let mut engines = Vec::new();
        let mut load_reports = Vec::new();
        let mut initial_load_nanos = Vec::new();
        for kind in SystemKind::ALL {
            let mut engine = build_engine(kind);
            let t0 = Instant::now();
            let ids = loader::load_initial(engine.as_mut(), &data)?;
            initial_load_nanos.push((kind, t0.elapsed().as_nanos() as u64));
            let report =
                loader::replay(engine.as_mut(), &ids, &history.archive, config.batch_size)?;
            engine.checkpoint();
            engine.apply_tuning(tuning)?;
            engines.push((kind, engine));
            load_reports.push((kind, report));
        }
        let params = QueryParams::derive(engines[0].1.as_ref())?;
        Ok(Instance {
            engines,
            data,
            history,
            load_reports,
            initial_load_nanos,
            params,
        })
    }

    /// The engine of the given kind.
    pub fn engine(&self, kind: SystemKind) -> &dyn BitemporalEngine {
        self.engines
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| e.as_ref())
            .expect("all four engines present")
    }

    /// Re-applies a tuning configuration to every engine.
    pub fn retune(&mut self, tuning: &TuningConfig) -> Result<()> {
        for (_, engine) in &mut self.engines {
            engine.apply_tuning(tuning)?;
        }
        Ok(())
    }
}

/// Builds the *non-temporal baseline* engines for Fig 7: the same logical
/// content as the bitemporal database at `(sys, app)`, loaded into
/// non-temporal tables (paper §5.4: "compared to a measurement on
/// non-temporal tables that contain the same data as the selected
/// version").
pub fn build_nontemporal_baseline(
    instance: &Instance,
    sys: &SysSpec,
    app: &AppSpec,
) -> Result<Vec<(SystemKind, Box<dyn BitemporalEngine>)>> {
    let db = &instance.history.db;
    let mut out = Vec::new();
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        for idx in 0..db.table_count() {
            let def = db.def(idx);
            let plain = TableDef::new(
                def.name.clone(),
                def.schema.clone(),
                def.key.clone(),
                TemporalClass::NonTemporal,
                None,
            )?;
            let id = engine.create_table(plain)?;
            let value_arity = def.schema.arity();
            for row in db.scan(idx, sys, app) {
                let values: Vec<_> = (0..value_arity).map(|c| row.get(c).clone()).collect();
                // tblint: allow(TB007) nontemporal baseline load; no serving layer exists here
                engine.insert(id, Row::new(values), None)?;
            }
        }
        engine.commit();
        engine.checkpoint();
        out.push((kind, engine));
    }
    Ok(out)
}

/// A latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median latency over the kept repetitions, nanoseconds.
    pub median_nanos: u64,
    /// Result cardinality of the measured query (sanity signal).
    pub rows: usize,
}

impl Measurement {
    /// Median latency in microseconds.
    pub fn micros(&self) -> f64 {
        self.median_nanos as f64 / 1_000.0
    }
}

/// Measures a query per the paper's §5.1 discipline: run
/// `discard + repetitions` times, drop the warm-ups, report the median.
///
/// Hardened against misbehaving queries: a panic inside `run` is caught and
/// surfaced as [`Error::Panicked`], and each repetition is checked against
/// the config's wall-clock budget ([`Error::QueryTimeout`] on overrun).
/// Either way the caller gets a typed error for this one cell instead of a
/// torn-down process.
pub fn measure<F>(config: &BenchConfig, run: F) -> Result<Measurement>
where
    F: FnMut() -> Result<Vec<Row>>,
{
    measure_traced(&config.with_trace(false), run).map(|(m, _)| m)
}

/// [`measure`] plus observability: when the config's `trace` flag is set,
/// each *kept* repetition runs with [`obs`] tracing enabled and its
/// [`TraceLog`] (access-path traces + operator spans) is returned alongside
/// the measurement, in repetition order. Warm-up repetitions are never
/// traced. Tracing is always disabled again before returning — including on
/// the error paths — so a failed cell cannot leak an enabled recorder into
/// the next one.
pub fn measure_traced<F>(config: &BenchConfig, mut run: F) -> Result<(Measurement, Vec<TraceLog>)>
where
    F: FnMut() -> Result<Vec<Row>>,
{
    let budget_nanos = config.query_timeout_millis.saturating_mul(1_000_000);
    let mut kept = Vec::with_capacity(config.repetitions);
    let mut logs = Vec::with_capacity(if config.trace { config.repetitions } else { 0 });
    let mut rows = 0;
    for rep in 0..(config.discard + config.repetitions) {
        let traced = config.trace && rep >= config.discard;
        if traced {
            obs::enable();
        }
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut run))
            .map_err(|payload| Error::Panicked(panic_message(payload.as_ref())));
        let nanos = t0.elapsed().as_nanos() as u64;
        if traced {
            logs.push(obs::disable());
        }
        let out = result??;
        if nanos > budget_nanos {
            return Err(Error::QueryTimeout {
                millis: config.query_timeout_millis,
            });
        }
        rows = out.len();
        if rep >= config.discard {
            kept.push(nanos);
        }
    }
    kept.sort_unstable();
    Ok((
        Measurement {
            median_nanos: kept[kept.len() / 2],
            rows,
        },
        logs,
    ))
}

/// Measures one report cell with graceful degradation: a successful run
/// pushes its median latency onto `series`; a failed one (panic, timeout,
/// injected fault, engine error) records an error cell instead and bumps
/// the experiment's fault tallies, so the rest of the figure still renders.
///
/// When the config's `trace` flag is set, the cell's access-path breakdown
/// (aggregated from the last kept repetition — access-path choices and work
/// counters are deterministic across repetitions) is attached to the series
/// and rendered under the figure's timing table.
pub fn measure_cell<F>(
    config: &BenchConfig,
    series: &mut Series,
    faults: &mut FaultSummary,
    x: impl Into<String>,
    run: F,
) where
    F: FnMut() -> Result<Vec<Row>>,
{
    let x = x.into();
    match measure_traced(config, run) {
        Ok((m, logs)) => {
            series.push(x.clone(), m.micros());
            if let Some(log) = logs.last() {
                let breakdown = AccessRow::aggregate(&log.scans);
                if !breakdown.is_empty() {
                    series.push_breakdown(x, breakdown);
                }
            }
        }
        Err(e) => {
            faults.detected += 1;
            faults.recovered += 1;
            series.push_error(x, e.to_string());
        }
    }
}

/// Geometric mean of ratios (Fig 7's summary statistic).
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-12).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_workloads::Ctx;

    fn tiny() -> BenchConfig {
        BenchConfig {
            h: 0.001,
            m: 0.0003,
            repetitions: 3,
            discard: 1,
            batch_size: 1,
            workers: 2,
            query_timeout_millis: DEFAULT_QUERY_TIMEOUT_MILLIS,
            trace: true,
            durability: DurabilityMode::Async,
        }
    }

    #[test]
    fn instance_builds_and_engines_agree() {
        let inst = Instance::build(&tiny(), &TuningConfig::none()).unwrap();
        assert_eq!(inst.engines.len(), 4);
        assert_eq!(inst.load_reports.len(), 4);
        let mut counts = Vec::new();
        for (_, engine) in &inst.engines {
            let ctx = Ctx::new(engine.as_ref()).unwrap();
            let rows = bitempo_workloads::tt::t5_all(&ctx).unwrap();
            counts.push(rows.len());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn measurement_discipline() {
        let cfg = tiny();
        let mut calls = 0;
        let m = measure(&cfg, || {
            calls += 1;
            Ok(vec![Row::new(vec![bitempo_core::Value::Int(1)])])
        })
        .unwrap();
        assert_eq!(calls, cfg.discard + cfg.repetitions);
        assert_eq!(m.rows, 1);
        assert!(m.median_nanos > 0);
    }

    #[test]
    fn nontemporal_baseline_matches_snapshot() {
        let inst = Instance::build(&tiny(), &TuningConfig::none()).unwrap();
        let baselines =
            build_nontemporal_baseline(&inst, &SysSpec::Current, &AppSpec::All).unwrap();
        let orders_idx = inst.history.db.table_index("orders").unwrap();
        let expected = inst
            .history
            .db
            .scan(orders_idx, &SysSpec::Current, &AppSpec::All)
            .len();
        for (kind, engine) in &baselines {
            let id = engine.resolve("orders").unwrap();
            let def = engine.table_def(id);
            assert_eq!(def.temporal, TemporalClass::NonTemporal);
            let rows = engine
                .scan(id, &SysSpec::Current, &AppSpec::All, &[])
                .unwrap()
                .rows;
            assert_eq!(rows.len(), expected, "{kind}");
            // Scan output has no period columns on the baseline.
            assert_eq!(rows[0].arity(), def.schema.arity());
        }
    }

    #[test]
    fn baseline_answers_match_time_travel() {
        // The Fig-7 ratio only means something if numerator and denominator
        // compute the same result: each TPC-H query under time travel on
        // the bitemporal engines must equal the plain query on the
        // non-temporal snapshot engines.
        use bitempo_workloads::{rows_approx_diff, sort_canonical, tpch};
        let inst = Instance::build(&tiny(), &TuningConfig::none()).unwrap();
        let p = &inst.params;
        let tt = tpch::Tt::app(p.app_mid);
        let baselines =
            build_nontemporal_baseline(&inst, &SysSpec::Current, &AppSpec::AsOf(p.app_mid))
                .unwrap();
        for kind in bitempo_engine::SystemKind::ALL {
            let t_ctx = Ctx::new(inst.engine(kind)).unwrap();
            let b_ctx = baselines
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, e)| Ctx::new(e.as_ref()).unwrap())
                .unwrap();
            for q in 1..=22u8 {
                let mut want = tpch::run_query(&t_ctx, q, &tt).unwrap();
                let mut got = tpch::run_query(&b_ctx, q, &tpch::Tt::none()).unwrap();
                sort_canonical(&mut want);
                sort_canonical(&mut got);
                if let Some(diff) = rows_approx_diff(&got, &want, 1e-9) {
                    panic!("{kind} Q{q}: baseline diverges: {diff}");
                }
            }
        }
    }

    #[test]
    fn panicking_query_is_contained() {
        let cfg = tiny();
        let err = measure(&cfg, || -> Result<Vec<Row>> { panic!("boom in Q9") }).unwrap_err();
        match err {
            Error::Panicked(msg) => assert!(msg.contains("boom in Q9"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_forces_timeout() {
        let cfg = tiny().with_timeout(0);
        let mut calls = 0;
        let err = measure(&cfg, || {
            calls += 1;
            Ok(Vec::new())
        })
        .unwrap_err();
        assert_eq!(calls, 1, "aborts after the first overrunning repetition");
        assert!(matches!(err, Error::QueryTimeout { millis: 0 }));
    }

    #[test]
    fn measure_cell_degrades_to_error_cell() {
        let cfg = tiny();
        let mut series = Series::new("System A");
        let mut faults = FaultSummary::default();
        measure_cell(&cfg, &mut series, &mut faults, "Q1", || {
            Ok(vec![Row::new(vec![bitempo_core::Value::Int(1)])])
        });
        measure_cell(
            &cfg,
            &mut series,
            &mut faults,
            "Q2",
            || -> Result<Vec<Row>> { panic!("injected") },
        );
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.errors.len(), 1);
        assert!(
            series.errors[0].1.contains("injected"),
            "{:?}",
            series.errors
        );
        assert_eq!(faults.detected, 1);
        assert_eq!(faults.recovered, 1);
    }

    #[test]
    fn geometric_mean_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[8.0]) - 8.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_nan());
    }
}
