//! Figure/table data structures and markdown rendering.

use bitempo_core::obs::ScanTrace;
use std::fmt;

/// One aggregated access-path line for a measured cell: what one
/// `(table, partition, access path)` combination did during the query —
/// the per-cell EXPLAIN the paper reads next to every timing (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRow {
    /// Table name.
    pub table: String,
    /// Physical partition label ("current", "history", "staging", "all").
    pub partition: String,
    /// Rendered access path ("full-scan(1)", "btree(ix_...)", ...).
    pub access: String,
    /// How many times this combination was scanned during the query.
    pub scans: u64,
    /// Version records examined.
    pub rows_visited: u64,
    /// Qualifying rows emitted.
    pub rows_emitted: u64,
    /// Examined versions rejected by temporal specs or predicates.
    pub versions_pruned: u64,
    /// Slots resolved through index probes.
    pub index_probes: u64,
    /// Probed slots that survived every residual filter — "index helped",
    /// as opposed to merely "index probed".
    pub index_hits: u64,
    /// Internal index entries examined while probing (B-Tree leaf entries,
    /// R-Tree rectangles, timeline events, endpoint-list entries).
    pub index_node_visits: u64,
    /// Rows the optimizer's chosen path was estimated to visit (after any
    /// feedback correction) — read against `rows_visited` to judge the
    /// estimate.
    pub planned_rows: u64,
}

impl AccessRow {
    /// Aggregates raw per-partition scan traces by
    /// `(table, partition, access)`, summing the work counters, in
    /// first-seen order.
    pub fn aggregate(scans: &[ScanTrace]) -> Vec<AccessRow> {
        let mut out: Vec<AccessRow> = Vec::new();
        for t in scans {
            let found = out
                .iter_mut()
                .find(|r| r.table == t.table && r.partition == t.partition && r.access == t.access);
            match found {
                Some(r) => {
                    r.scans += 1;
                    r.rows_visited += t.rows_visited;
                    r.rows_emitted += t.rows_emitted;
                    r.versions_pruned += t.versions_pruned;
                    r.index_probes += t.index_probes;
                    r.index_hits += t.index_hits;
                    r.index_node_visits += t.index_node_visits;
                    r.planned_rows += t.planned_rows;
                }
                None => out.push(AccessRow {
                    table: t.table.clone(),
                    partition: t.partition.clone(),
                    access: t.access.clone(),
                    scans: 1,
                    rows_visited: t.rows_visited,
                    rows_emitted: t.rows_emitted,
                    versions_pruned: t.versions_pruned,
                    index_probes: t.index_probes,
                    index_hits: t.index_hits,
                    index_node_visits: t.index_node_visits,
                    planned_rows: t.planned_rows,
                }),
            }
        }
        out
    }
}

/// One measured series (one line/bar group in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label, e.g. `"System A - no index"`.
    pub label: String,
    /// `(x label, value)` points. Values are latencies in microseconds
    /// unless the report's `unit` says otherwise.
    pub points: Vec<(String, f64)>,
    /// `(x label, error message)` for cells whose query failed. The point
    /// list carries a NaN placeholder at the same x, so cardinalities and
    /// label order stay consistent with clean runs.
    pub errors: Vec<(String, String)>,
    /// `(x label, access-path breakdown)` for cells measured with tracing
    /// on; rendered as a sub-table under the timing table.
    pub breakdowns: Vec<(String, Vec<AccessRow>)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
            errors: Vec::new(),
            breakdowns: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, value: f64) {
        self.points.push((x.into(), value));
    }

    /// Records a failed cell: the x label renders as `ERR` with the message
    /// footnoted, and a NaN placeholder keeps the point count intact.
    pub fn push_error(&mut self, x: impl Into<String>, message: impl Into<String>) {
        let x = x.into();
        self.points.push((x.clone(), f64::NAN));
        self.errors.push((x, message.into()));
    }

    /// Attaches the access-path breakdown of a measured cell.
    pub fn push_breakdown(&mut self, x: impl Into<String>, rows: Vec<AccessRow>) {
        self.breakdowns.push((x.into(), rows));
    }
}

/// Fault-scenario bookkeeping for one experiment run: how many faults were
/// injected, how many the pipeline detected (surfaced as typed errors
/// instead of panics/corruption), and how many it recovered from (the run
/// continued and produced a report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Faults deliberately injected into the run.
    pub injected: u64,
    /// Faults surfaced as typed errors by checksums, bounds, containment.
    pub detected: u64,
    /// Faults the experiment survived (error cell recorded, run continued).
    pub recovered: u64,
}

impl FaultSummary {
    /// True when nothing was injected or detected.
    pub fn is_empty(&self) -> bool {
        *self == FaultSummary::default()
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Experiment id (e.g. `fig2`, `table2`).
    pub id: String,
    /// Paper caption.
    pub title: String,
    /// Measurement unit of the values.
    pub unit: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations appended under the table.
    pub notes: Vec<String>,
    /// Fault-scenario summary (all zeros for fault-free runs).
    pub faults: FaultSummary,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            series: Vec::new(),
            notes: Vec::new(),
            faults: FaultSummary::default(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// All x labels, in first-seen order across series.
    fn x_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(x) {
                    labels.push(x.clone());
                }
            }
        }
        labels
    }

    /// Renders a markdown table: one row per x label, one column per series.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("Values in {}.\n\n", self.unit));
        let labels = self.x_labels();
        out.push('|');
        out.push_str(" |");
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push('|');
        out.push_str("---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for x in &labels {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                if s.errors.iter().any(|(px, _)| px == x) {
                    out.push_str(" ERR |");
                    continue;
                }
                match s.points.iter().find(|(px, _)| px == x) {
                    Some((_, v)) if v.is_finite() => {
                        if v.abs() < 10.0 {
                            out.push_str(&format!(" {v:.3} |"));
                        } else {
                            out.push_str(&format!(" {v:.1} |"));
                        }
                    }
                    _ => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        for s in &self.series {
            for (x, message) in &s.errors {
                out.push_str(&format!("\n> ⚠ {} at {x}: {message}\n", s.label));
            }
        }
        if !self.faults.is_empty() {
            out.push_str(&format!(
                "\n> faults: {} injected / {} detected / {} recovered\n",
                self.faults.injected, self.faults.detected, self.faults.recovered
            ));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        if self.series.iter().any(|s| !s.breakdowns.is_empty()) {
            out.push_str("\n#### Access paths\n\n");
            out.push_str(
                "| series | query | table/partition | access | scans | planned | visited | emitted | pruned | probes | hits | node-visits |\n",
            );
            out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
            for s in &self.series {
                for (x, rows) in &s.breakdowns {
                    for r in rows {
                        out.push_str(&format!(
                            "| {} | {} | {}/{} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                            s.label,
                            x,
                            r.table,
                            r.partition,
                            r.access,
                            r.scans,
                            r.planned_rows,
                            r.rows_visited,
                            r.rows_emitted,
                            r.versions_pruned,
                            r.index_probes,
                            r.index_hits,
                            r.index_node_visits
                        ));
                    }
                }
            }
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut r = FigureReport::new("fig2", "Basic Time Travel", "µs");
        let mut a = Series::new("System A");
        a.push("T1 app", 10.0);
        a.push("T1 sys", 20.5);
        let mut b = Series::new("System B");
        b.push("T1 app", 30.0);
        r.add(a);
        r.add(b);
        r.note("B pays for reconstruction.");
        let md = r.to_markdown();
        assert!(md.contains("### fig2 — Basic Time Travel"));
        assert!(md.contains("| T1 app | 10.0 | 30.0 |"));
        assert!(
            md.contains("| T1 sys | 20.5 | — |"),
            "missing point renders as dash:\n{md}"
        );
        assert!(md.contains("> B pays for reconstruction."));
    }

    #[test]
    fn error_cells_render_with_footnotes() {
        let mut r = FigureReport::new("faults", "Degradation", "µs");
        let mut a = Series::new("System A");
        a.push("Q1", 12.0);
        a.push_error("Q2", "query exceeded 5 ms wall-clock budget");
        r.add(a);
        r.faults = FaultSummary {
            injected: 1,
            detected: 1,
            recovered: 1,
        };
        let md = r.to_markdown();
        assert!(md.contains("| Q1 | 12.0 |"), "{md}");
        assert!(md.contains("| Q2 | ERR |"), "{md}");
        assert!(md.contains("⚠ System A at Q2: query exceeded"), "{md}");
        assert!(
            md.contains("> faults: 1 injected / 1 detected / 1 recovered"),
            "{md}"
        );
        // Error cells still count as points, keeping shapes uniform.
        assert_eq!(r.series[0].points.len(), 2);
    }

    #[test]
    fn access_breakdown_aggregates_and_renders() {
        let scan = |partition: &str, access: &str, visited: u64, emitted: u64| ScanTrace {
            engine: "System A".into(),
            table: "lineitem".into(),
            partition: partition.into(),
            access: access.into(),
            rows_visited: visited,
            rows_emitted: emitted,
            versions_pruned: visited - emitted,
            index_probes: 0,
            index_hits: 0,
            index_node_visits: 0,
            morsels: 1,
            planned_rows: visited,
            workers: 1,
            start_nanos: 0,
            dur_nanos: 10,
        };
        // Two scans of the same (table, partition, access) collapse into one
        // row with summed counters; a different partition stays separate.
        let rows = AccessRow::aggregate(&[
            scan("current", "full-scan(1)", 100, 40),
            scan("current", "full-scan(1)", 50, 10),
            scan("history", "btree(ix_sys)", 7, 7),
        ]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scans, 2);
        assert_eq!(rows[0].rows_visited, 150);
        assert_eq!(rows[0].rows_emitted, 50);
        assert_eq!(rows[0].versions_pruned, 100);
        assert_eq!(rows[1].partition, "history");
        assert_eq!(rows[1].access, "btree(ix_sys)");

        let mut r = FigureReport::new("explain", "Access paths", "µs");
        let mut s = Series::new("System A");
        s.push("T1", 12.0);
        s.push_breakdown("T1", rows);
        r.add(s);
        let md = r.to_markdown();
        assert!(md.contains("#### Access paths"), "{md}");
        assert!(
            md.contains(
                "| System A | T1 | lineitem/current | full-scan(1) | 2 | 150 | 150 | 50 | 100 | 0 | 0 | 0 |"
            ),
            "{md}"
        );
        assert!(
            md.contains(
                "| System A | T1 | lineitem/history | btree(ix_sys) | 1 | 7 | 7 | 7 | 0 | 0 | 0 | 0 |"
            ),
            "{md}"
        );
    }

    #[test]
    fn reports_without_breakdowns_omit_access_table() {
        let mut r = FigureReport::new("fig2", "t", "µs");
        let mut s = Series::new("s");
        s.push("a", 1.0);
        r.add(s);
        assert!(!r.to_markdown().contains("Access paths"));
    }

    #[test]
    fn x_labels_preserve_order() {
        let mut r = FigureReport::new("x", "y", "µs");
        let mut s1 = Series::new("s1");
        s1.push("b", 1.0);
        s1.push("a", 2.0);
        let mut s2 = Series::new("s2");
        s2.push("c", 3.0);
        s2.push("a", 4.0);
        r.add(s1);
        r.add(s2);
        assert_eq!(r.x_labels(), vec!["b", "a", "c"]);
    }
}
