//! Figure/table data structures and markdown rendering.

use std::fmt;

/// One measured series (one line/bar group in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label, e.g. `"System A - no index"`.
    pub label: String,
    /// `(x label, value)` points. Values are latencies in microseconds
    /// unless the report's `unit` says otherwise.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, value: f64) {
        self.points.push((x.into(), value));
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Experiment id (e.g. `fig2`, `table2`).
    pub id: String,
    /// Paper caption.
    pub title: String,
    /// Measurement unit of the values.
    pub unit: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations appended under the table.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// All x labels, in first-seen order across series.
    fn x_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(x) {
                    labels.push(x.clone());
                }
            }
        }
        labels
    }

    /// Renders a markdown table: one row per x label, one column per series.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("Values in {}.\n\n", self.unit));
        let labels = self.x_labels();
        out.push('|');
        out.push_str(" |");
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push('|');
        out.push_str("---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for x in &labels {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.points.iter().find(|(px, _)| px == x) {
                    Some((_, v)) if v.is_finite() => {
                        if v.abs() < 10.0 {
                            out.push_str(&format!(" {v:.3} |"));
                        } else {
                            out.push_str(&format!(" {v:.1} |"));
                        }
                    }
                    _ => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut r = FigureReport::new("fig2", "Basic Time Travel", "µs");
        let mut a = Series::new("System A");
        a.push("T1 app", 10.0);
        a.push("T1 sys", 20.5);
        let mut b = Series::new("System B");
        b.push("T1 app", 30.0);
        r.add(a);
        r.add(b);
        r.note("B pays for reconstruction.");
        let md = r.to_markdown();
        assert!(md.contains("### fig2 — Basic Time Travel"));
        assert!(md.contains("| T1 app | 10.0 | 30.0 |"));
        assert!(md.contains("| T1 sys | 20.5 | — |"), "missing point renders as dash:\n{md}");
        assert!(md.contains("> B pays for reconstruction."));
    }

    #[test]
    fn x_labels_preserve_order() {
        let mut r = FigureReport::new("x", "y", "µs");
        let mut s1 = Series::new("s1");
        s1.push("b", 1.0);
        s1.push("a", 2.0);
        let mut s2 = Series::new("s2");
        s2.push("c", 3.0);
        s2.push("a", 4.0);
        r.add(s1);
        r.add(s2);
        assert_eq!(r.x_labels(), vec!["b", "a", "c"]);
    }
}
