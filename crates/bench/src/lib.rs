//! # bitempo-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5). See DESIGN.md §4 for the experiment index.
//!
//! * [`runner`] — builds benchmark instances (generate → load → tune) for
//!   all four engines plus the non-temporal baselines, and measures query
//!   latencies with the paper's repetition discipline (§5.1: repeat, discard
//!   warm-up runs, report the median).
//! * [`report`] — figure/table data structures and markdown rendering.
//! * [`experiments`] — one function per paper artifact (fig2…fig16,
//!   table1/2/3, the §5.2 architecture analysis).
//!
//! The `experiments` binary drives everything:
//! `cargo run --release -p bitempo-bench --bin experiments -- <id|run-all>`.

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::{FaultSummary, FigureReport, Series};
pub use runner::{BenchConfig, DurabilityMode, Instance, Measurement};
