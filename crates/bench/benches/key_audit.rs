//! Criterion benches for the key-in-time / audit figures (Fig 8–11).

use bitempo_bench::runner::{BenchConfig, Instance};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_workloads::{key, Ctx};
use criterion::{criterion_group, criterion_main, Criterion};

fn config() -> BenchConfig {
    BenchConfig {
        h: 0.001,
        m: 0.001,
        repetitions: 1,
        discard: 0,
        batch_size: 1,
        workers: bitempo_engine::api::default_workers(),
        query_timeout_millis: bitempo_bench::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
        trace: false,
        durability: bitempo_bench::runner::DurabilityMode::Async,
    }
}

fn bench_key_audit(c: &mut Criterion) {
    let mut inst = Instance::build(&config(), &TuningConfig::none()).expect("build instance");
    let p = inst.params.clone();

    for (tuning, label) in [
        (TuningConfig::none(), "no index"),
        (TuningConfig::key_time(), "key+time"),
    ] {
        inst.retune(&tuning).unwrap();
        let mut group = c.benchmark_group(format!("key_audit/{label}"));
        group.sample_size(20);
        for kind in SystemKind::ALL {
            let ctx = Ctx::new(inst.engine(kind)).unwrap();
            group.bench_function(format!("{kind}/K1 curr sys"), |b| {
                b.iter(|| key::k1(&ctx, &p.hot_customer, SysSpec::Current, AppSpec::All).unwrap())
            });
            group.bench_function(format!("{kind}/K1 past sys"), |b| {
                b.iter(|| {
                    key::k1(
                        &ctx,
                        &p.hot_customer,
                        SysSpec::AsOf(p.sys_initial),
                        AppSpec::All,
                    )
                    .unwrap()
                })
            });
            group.bench_function(format!("{kind}/K1 both times"), |b| {
                b.iter(|| key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All).unwrap())
            });
            group.bench_function(format!("{kind}/K4 top-5"), |b| {
                b.iter(|| key::k4(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All, 5).unwrap())
            });
            let (lo, hi) = p.acctbal_band;
            group.bench_function(format!("{kind}/K6 value band"), |b| {
                b.iter(|| key::k6(&ctx, lo, hi, SysSpec::All, AppSpec::All).unwrap())
            });
        }
        group.finish();
    }

    // Fig 11: the value index on c_acctbal.
    inst.retune(&TuningConfig {
        value_index: vec![("customer".into(), "c_acctbal".into())],
        ..Default::default()
    })
    .unwrap();
    let mut group = c.benchmark_group("key_audit/value index");
    group.sample_size(20);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        let (lo, hi) = p.acctbal_band;
        group.bench_function(format!("{kind}/K6 value band"), |b| {
            b.iter(|| key::k6(&ctx, lo, hi, SysSpec::All, AppSpec::All).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_key_audit);
criterion_main!(benches);
