//! Criterion benches for range-timeslice and bitemporal figures
//! (Fig 14/15), including the temporal-aggregation ablation: naive
//! SQL:2011 boundary join versus event sweep.

use bitempo_bench::runner::{BenchConfig, Instance};
use bitempo_engine::api::{SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_workloads::{bitemporal, range, tt, Ctx};
use criterion::{criterion_group, criterion_main, Criterion};

fn config() -> BenchConfig {
    BenchConfig {
        h: 0.0005,
        m: 0.0005,
        repetitions: 1,
        discard: 0,
        batch_size: 1,
        workers: bitempo_engine::api::default_workers(),
        query_timeout_millis: bitempo_bench::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
        trace: false,
        durability: bitempo_bench::runner::DurabilityMode::Async,
    }
}

fn bench_range(c: &mut Criterion) {
    let inst = Instance::build(&config(), &TuningConfig::none()).expect("build instance");
    let p = inst.params.clone();
    let mut group = c.benchmark_group("range_timeslice");
    group.sample_size(10);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        group.bench_function(format!("{kind}/ALL yardstick"), |b| {
            b.iter(|| tt::t5_all(&ctx).unwrap())
        });
        group.bench_function(format!("{kind}/R1 state changes"), |b| {
            b.iter(|| range::r1(&ctx).unwrap())
        });
        group.bench_function(format!("{kind}/R3a naive"), |b| {
            b.iter(|| range::r3a_naive(&ctx, SysSpec::Current).unwrap())
        });
        group.bench_function(format!("{kind}/R3a sweep"), |b| {
            b.iter(|| range::r3a_sweep(&ctx, SysSpec::Current).unwrap())
        });
        group.bench_function(format!("{kind}/R4 stock spread"), |b| {
            b.iter(|| range::r4(&ctx).unwrap())
        });
        group.bench_function(format!("{kind}/R5 temporal join"), |b| {
            b.iter(|| range::r5(&ctx, 5_000.0, 100_000.0).unwrap())
        });
        group.bench_function(format!("{kind}/R7 price raises"), |b| {
            b.iter(|| range::r7(&ctx).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bitemporal_dimensions");
    group.sample_size(10);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        for variant in [1u8, 5, 6, 11] {
            group.bench_function(format!("{kind}/B3.{variant}"), |b| {
                b.iter(|| {
                    bitemporal::b3_variant(&ctx, variant, 55, p.app_mid, p.sys_initial).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_range);
criterion_main!(benches);
