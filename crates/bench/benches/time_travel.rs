//! Criterion benches for the time-travel figures (Fig 2/3/5/6).

use bitempo_bench::runner::{BenchConfig, Instance};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_workloads::{tt, Ctx};
use criterion::{criterion_group, criterion_main, Criterion};

fn config() -> BenchConfig {
    BenchConfig {
        h: 0.001,
        m: 0.001,
        repetitions: 1,
        discard: 0,
        batch_size: 1,
        workers: bitempo_engine::api::default_workers(),
        query_timeout_millis: bitempo_bench::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
        trace: false,
        durability: bitempo_bench::runner::DurabilityMode::Async,
    }
}

fn bench_time_travel(c: &mut Criterion) {
    let inst = Instance::build(&config(), &TuningConfig::none()).expect("build instance");
    let p = inst.params.clone();
    let mut group = c.benchmark_group("time_travel");
    group.sample_size(20);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        group.bench_function(format!("{kind}/T1 point-point app"), |b| {
            b.iter(|| tt::t1(&ctx, SysSpec::Current, AppSpec::AsOf(p.app_mid)).unwrap())
        });
        group.bench_function(format!("{kind}/T1 point-point sys"), |b| {
            b.iter(|| tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late)).unwrap())
        });
        group.bench_function(format!("{kind}/T2 point-point sys"), |b| {
            b.iter(|| tt::t2(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late)).unwrap())
        });
        group.bench_function(format!("{kind}/T5 all versions"), |b| {
            b.iter(|| tt::t5_all(&ctx).unwrap())
        });
        group.bench_function(format!("{kind}/T6 sys slice"), |b| {
            b.iter(|| tt::t6(&ctx, None, p.sys_mid).unwrap())
        });
        group.bench_function(format!("{kind}/T7 implicit"), |b| {
            b.iter(|| tt::t7_implicit(&ctx).unwrap())
        });
        group.bench_function(format!("{kind}/T7 explicit"), |b| {
            b.iter(|| tt::t7_explicit(&ctx).unwrap())
        });
    }
    group.finish();

    // Fig 3: the same probes with time indexes in place.
    let mut inst = inst;
    inst.retune(&TuningConfig::time()).unwrap();
    let mut group = c.benchmark_group("time_travel_indexed");
    group.sample_size(20);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        group.bench_function(format!("{kind}/T1 point-point sys (B-Tree)"), |b| {
            b.iter(|| tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_late)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_time_travel);
criterion_main!(benches);
