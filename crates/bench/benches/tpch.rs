//! Criterion benches for the TPC-H time-travel workload (Fig 7a/7b).

use bitempo_bench::runner::{build_nontemporal_baseline, BenchConfig, Instance};
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::SystemKind;
use bitempo_workloads::{tpch, Ctx};
use criterion::{criterion_group, criterion_main, Criterion};

fn config() -> BenchConfig {
    BenchConfig {
        h: 0.001,
        m: 0.001,
        repetitions: 1,
        discard: 0,
        batch_size: 1,
        workers: bitempo_engine::api::default_workers(),
        query_timeout_millis: bitempo_bench::runner::DEFAULT_QUERY_TIMEOUT_MILLIS,
        trace: false,
        durability: bitempo_bench::runner::DurabilityMode::Async,
    }
}

/// A representative cross-section of the 22 queries: scan-heavy (Q1, Q6),
/// join-heavy (Q3, Q5), aggregation-heavy (Q13, Q18).
const SAMPLED: [u8; 6] = [1, 3, 5, 6, 13, 18];

fn bench_tpch(c: &mut Criterion) {
    let inst = Instance::build(&config(), &TuningConfig::none()).expect("build instance");
    let p = inst.params.clone();
    let baselines = build_nontemporal_baseline(&inst, &SysSpec::Current, &AppSpec::AsOf(p.app_mid))
        .expect("baseline");

    let mut group = c.benchmark_group("tpch");
    group.sample_size(10);
    for kind in SystemKind::ALL {
        let ctx = Ctx::new(inst.engine(kind)).unwrap();
        let base = baselines
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| Ctx::new(e.as_ref()).unwrap())
            .unwrap();
        for q in SAMPLED {
            group.bench_function(format!("{kind}/Q{q} app time travel"), |b| {
                b.iter(|| tpch::run_query(&ctx, q, &tpch::Tt::app(p.app_mid)).unwrap())
            });
            group.bench_function(format!("{kind}/Q{q} sys time travel"), |b| {
                b.iter(|| tpch::run_query(&ctx, q, &tpch::Tt::sys(p.sys_initial)).unwrap())
            });
            group.bench_function(format!("{kind}/Q{q} non-temporal baseline"), |b| {
                b.iter(|| tpch::run_query(&base, q, &tpch::Tt::none()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);
