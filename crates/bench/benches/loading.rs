//! Criterion benches for history loading (Fig 16, §5.8): transactional
//! replay per engine versus System D's pre-stamped bulk load.

use bitempo_dbgen::ScaleConfig;
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_loading(c: &mut Criterion) {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.001));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.0005));

    let mut group = c.benchmark_group("loading");
    group.sample_size(10);
    for kind in SystemKind::ALL {
        group.bench_function(format!("{kind}/initial + replay m=0.0005"), |b| {
            b.iter(|| {
                let mut engine = build_engine(kind);
                let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
                loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
                engine
            })
        });
    }
    group.bench_function("System D/bulk load", |b| {
        b.iter(|| {
            let mut engine = build_engine(SystemKind::D);
            loader::bulk_load(engine.as_mut(), &history.db).unwrap();
            engine
        })
    });
    // Batched replay (Fig 13's loader knob).
    for batch in [8usize, 64] {
        group.bench_function(format!("System A/initial + replay batch={batch}"), |b| {
            b.iter(|| {
                let mut engine = build_engine(SystemKind::A);
                let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
                loader::replay(engine.as_mut(), &ids, &history.archive, batch).unwrap();
                engine
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loading);
criterion_main!(benches);
