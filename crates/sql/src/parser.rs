//! Recursive-descent parser for the temporal SQL subset.
//!
//! Grammar sketch (keywords case-insensitive):
//!
//! ```text
//! statement   := select | insert | update | delete | COMMIT
//!              | SHOW TABLES | DESCRIBE ident
//! select      := SELECT projs FROM ident time* [WHERE pred]
//!                [GROUP BY idents] [ORDER BY keys] [LIMIT int]
//! time        := FOR SYSTEM_TIME (AS OF scalar | FROM scalar TO scalar | ALL)
//!              | FOR BUSINESS_TIME (AS OF scalar | FROM scalar TO scalar | ALL)
//! projs       := '*' | proj (',' proj)*
//! proj        := COUNT '(' '*' ')' | agg '(' scalar ')' | scalar [AS ident]
//! pred        := or_pred
//! or_pred     := and_pred (OR and_pred)*
//! and_pred    := unary (AND unary)*
//! unary       := NOT unary | '(' pred ')' | comparison
//! comparison  := scalar (cmp scalar | LIKE str | BETWEEN scalar AND scalar
//!              | IN '(' scalar,* ')')
//! scalar      := term (('+'|'-') term)*
//! term        := factor (('*'|'/') factor)*
//! factor      := literal | DATE str | NOW | ident | '(' scalar ')'
//! ```

use crate::ast::*;
use crate::lexer::{lex, Token};
use bitempo_core::{Error, Result, Value};

/// Parses one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let statement = p.statement()?;
    p.eat_semi();
    if !p.at_end() {
        return Err(Error::Invalid(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_semi(&mut self) {
        while self.eat(&Token::Semi) {}
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            other => Err(Error::Invalid(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("select") {
            return self.select().map(Statement::Select);
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("show") {
            self.expect_kw("tables")?;
            return Ok(Statement::ShowTables);
        }
        if self.eat_kw("describe") || self.eat_kw("desc") {
            return Ok(Statement::Describe(self.ident()?));
        }
        Err(Error::Invalid(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn select(&mut self) -> Result<Select> {
        let projections = self.projections()?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let mut system_time = None;
        let mut business_time = None;
        while self.eat_kw("for") {
            if self.eat_kw("system_time") {
                system_time = Some(self.time_clause()?);
            } else if self.eat_kw("business_time") {
                business_time = Some(self.time_clause()?);
            } else {
                return Err(Error::Invalid(
                    "expected SYSTEM_TIME or BUSINESS_TIME after FOR".into(),
                ));
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.predicate()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let target = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.advance();
                        OrderTarget::Position(n as usize)
                    }
                    _ => OrderTarget::Column(self.ident()?),
                };
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderKey { target, asc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(Error::Invalid(format!("bad LIMIT: {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            projections,
            table,
            system_time,
            business_time,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn projections(&mut self) -> Result<Vec<Projection>> {
        if self.eat(&Token::Star) {
            return Ok(vec![Projection::Wildcard]);
        }
        let mut out = Vec::new();
        loop {
            out.push(self.projection()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn projection(&mut self) -> Result<Projection> {
        for (kw, agg) in [
            ("sum", AggName::Sum),
            ("avg", AggName::Avg),
            ("min", AggName::Min),
            ("max", AggName::Max),
        ] {
            if self.peek().is_some_and(|t| t.is_kw(kw))
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                self.advance();
                self.expect(&Token::LParen)?;
                let inner = self.scalar()?;
                self.expect(&Token::RParen)?;
                return Ok(Projection::Aggregate(agg, inner));
            }
        }
        if self.peek().is_some_and(|t| t.is_kw("count"))
            && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
        {
            self.advance();
            self.expect(&Token::LParen)?;
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Projection::CountStar);
            }
            let inner = self.scalar()?;
            self.expect(&Token::RParen)?;
            return Ok(Projection::Aggregate(AggName::Count, inner));
        }
        let expr = self.scalar()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Projection::Expr(expr, alias))
    }

    fn time_clause(&mut self) -> Result<TimeClause> {
        if self.eat_kw("all") {
            return Ok(TimeClause::All);
        }
        if self.eat_kw("as") {
            self.expect_kw("of")?;
            return Ok(TimeClause::AsOf(self.scalar()?));
        }
        if self.eat_kw("from") {
            let from = self.scalar()?;
            self.expect_kw("to")?;
            let to = self.scalar()?;
            return Ok(TimeClause::FromTo(from, to));
        }
        Err(Error::Invalid(
            "expected AS OF, FROM .. TO or ALL in temporal clause".into(),
        ))
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.and_predicate()?;
        while self.eat_kw("or") {
            let right = self.and_predicate()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_predicate(&mut self) -> Result<Predicate> {
        let mut left = self.unary_predicate()?;
        while self.eat_kw("and") {
            let right = self.unary_predicate()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_predicate(&mut self) -> Result<Predicate> {
        if self.eat_kw("not") {
            return Ok(Predicate::Not(Box::new(self.unary_predicate()?)));
        }
        // A parenthesis here could open a sub-predicate or a scalar; try the
        // predicate first and backtrack on failure.
        if self.peek() == Some(&Token::LParen) {
            let checkpoint = self.pos;
            self.advance();
            if let Ok(inner) = self.predicate() {
                if self.eat(&Token::RParen) {
                    return Ok(inner);
                }
            }
            self.pos = checkpoint;
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let left = self.scalar()?;
        if self.eat_kw("like") {
            match self.advance() {
                Some(Token::Str(p)) => return Ok(Predicate::Like(left, p)),
                other => return Err(Error::Invalid(format!("bad LIKE pattern: {other:?}"))),
            }
        }
        if self.eat_kw("between") {
            let lo = self.scalar()?;
            self.expect_kw("and")?;
            let hi = self.scalar()?;
            return Ok(Predicate::Between(left, lo, hi));
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut items = Vec::new();
            loop {
                items.push(self.scalar()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Predicate::InList(left, items));
        }
        let op = match self.advance() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(Error::Invalid(format!(
                    "expected comparison, found {other:?}"
                )))
            }
        };
        let right = self.scalar()?;
        Ok(Predicate::Compare { op, left, right })
    }

    fn scalar(&mut self) -> Result<ScalarExpr> {
        let mut left = self.term()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                BinOp::Add
            } else if self.eat(&Token::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.term()?;
            left = ScalarExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<ScalarExpr> {
        let mut left = self.factor()?;
        loop {
            let op = if self.eat(&Token::Star) {
                BinOp::Mul
            } else if self.eat(&Token::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let right = self.factor()?;
            left = ScalarExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<ScalarExpr> {
        if self.eat(&Token::LParen) {
            let inner = self.scalar()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        if self.eat(&Token::Minus) {
            // Negative literal.
            return match self.advance() {
                Some(Token::Int(i)) => Ok(ScalarExpr::Literal(Value::Int(-i))),
                Some(Token::Float(f)) => Ok(ScalarExpr::Literal(Value::Double(-f))),
                other => Err(Error::Invalid(format!("bad negative literal: {other:?}"))),
            };
        }
        match self.advance() {
            Some(Token::Int(i)) => Ok(ScalarExpr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(ScalarExpr::Literal(Value::Double(f))),
            Some(Token::Str(s)) => Ok(ScalarExpr::Literal(Value::str(s))),
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("date") => match self.advance() {
                Some(Token::Str(s)) => Ok(ScalarExpr::DateLiteral(s)),
                other => Err(Error::Invalid(format!("bad DATE literal: {other:?}"))),
            },
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("now") => Ok(ScalarExpr::Now),
            Some(Token::Ident(id)) => Ok(ScalarExpr::Column(id.to_ascii_lowercase())),
            other => Err(Error::Invalid(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let business_time = if self.eat_kw("business_time") {
            self.expect_kw("from")?;
            let from = self.scalar()?;
            self.expect_kw("to")?;
            let to = self.scalar()?;
            Some((from, to))
        } else {
            None
        };
        self.expect_kw("values")?;
        self.expect(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.scalar()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::Insert {
            table,
            values,
            business_time,
        })
    }

    fn portion(&mut self) -> Result<Option<(ScalarExpr, ScalarExpr)>> {
        if self.eat_kw("for") {
            self.expect_kw("portion")?;
            self.expect_kw("of")?;
            self.expect_kw("business_time")?;
            self.expect_kw("from")?;
            let from = self.scalar()?;
            self.expect_kw("to")?;
            let to = self.scalar()?;
            Ok(Some((from, to)))
        } else {
            Ok(None)
        }
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        let portion = self.portion()?;
        self.expect_kw("set")?;
        let mut set = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            set.push((col, self.scalar()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("where")?;
        let where_clause = self.predicate()?;
        Ok(Statement::Update {
            table,
            portion,
            set,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let portion = self.portion()?;
        self.expect_kw("where")?;
        let where_clause = self.predicate()?;
        Ok(Statement::Delete {
            table,
            portion,
            where_clause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse("SELECT a, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 5;").unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.table, "t");
        assert_eq!(sel.projections.len(), 2);
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].asc);
        assert_eq!(sel.limit, Some(5));
    }

    #[test]
    fn temporal_clauses() {
        let s = parse(
            "SELECT * FROM orders FOR SYSTEM_TIME AS OF 7 \
             FOR BUSINESS_TIME FROM DATE '1995-01-01' TO DATE '1996-01-01'",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(
            sel.system_time,
            Some(TimeClause::AsOf(ScalarExpr::Literal(Value::Int(7))))
        );
        assert!(matches!(sel.business_time, Some(TimeClause::FromTo(_, _))));
        let s = parse("SELECT * FROM orders FOR SYSTEM_TIME ALL").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.system_time, Some(TimeClause::All));
        // NOW as a system-time point.
        let s = parse("SELECT * FROM orders FOR SYSTEM_TIME AS OF NOW").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.system_time, Some(TimeClause::AsOf(ScalarExpr::Now)));
    }

    #[test]
    fn aggregates_and_grouping() {
        let s = parse(
            "SELECT o_orderstatus, COUNT(*), SUM(o_totalprice), AVG(o_totalprice) \
             FROM orders GROUP BY o_orderstatus",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.projections.len(), 4);
        assert!(matches!(sel.projections[1], Projection::CountStar));
        assert!(matches!(
            sel.projections[2],
            Projection::Aggregate(AggName::Sum, _)
        ));
        assert_eq!(sel.group_by, vec!["o_orderstatus"]);
    }

    #[test]
    fn predicates() {
        let s = parse(
            "SELECT * FROM t WHERE (a = 1 OR b < 2) AND NOT c LIKE 'x%' \
             AND d BETWEEN 1 AND 10 AND e IN (1, 2, 3)",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn dml_statements() {
        let s = parse("INSERT INTO items VALUES (1, 'hammer', 9.99)").unwrap();
        assert!(matches!(s, Statement::Insert { ref table, ref values, .. }
            if table == "items" && values.len() == 3));
        let s =
            parse("INSERT INTO items BUSINESS_TIME FROM 10 TO 20 VALUES (1, 'x', 1.0)").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                business_time: Some(_),
                ..
            }
        ));
        let s = parse(
            "UPDATE items FOR PORTION OF BUSINESS_TIME FROM 10 TO 20 \
             SET price = 11.0 WHERE id = 1",
        )
        .unwrap();
        assert!(matches!(
            s,
            Statement::Update {
                portion: Some(_),
                ..
            }
        ));
        let s = parse("DELETE FROM items WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Delete { portion: None, .. }));
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::ShowTables);
        assert_eq!(
            parse("DESCRIBE orders").unwrap(),
            Statement::Describe("orders".into())
        );
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT a + b * 2 FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Projection::Expr(ScalarExpr::Binary { op, right, .. }, _) = &sel.projections[0] else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**right, ScalarExpr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("FROB THE KNOB").is_err());
        assert!(parse("SELECT * FROM t extra garbage +").is_err());
        assert!(parse("SELECT * FROM t FOR SYSTEM_TIME").is_err());
    }
}
