//! Abstract syntax for the temporal SQL subset.

use bitempo_core::Value;

/// A temporal clause on one time dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeClause {
    /// `AS OF <point>`.
    AsOf(ScalarExpr),
    /// `FROM <point> TO <point>`.
    FromTo(ScalarExpr, ScalarExpr),
    /// `ALL`.
    All,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// `DATE 'YYYY-MM-DD'`.
    DateLiteral(String),
    /// `NOW` (current system time).
    Now,
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A boolean predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Comparison between two scalars.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: ScalarExpr,
        /// Right operand.
        right: ScalarExpr,
    },
    /// `expr LIKE 'pattern'`.
    Like(ScalarExpr, String),
    /// `expr BETWEEN lo AND hi`.
    Between(ScalarExpr, ScalarExpr, ScalarExpr),
    /// `expr IN (v, ...)`.
    InList(ScalarExpr, Vec<ScalarExpr>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One SELECT output column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Wildcard,
    /// A scalar expression (optionally aliased — aliases are cosmetic).
    Expr(ScalarExpr, Option<String>),
    /// `COUNT(*)`.
    CountStar,
    /// An aggregate over a scalar.
    Aggregate(AggName, ScalarExpr),
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `COUNT(expr)`
    Count,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Column name or 1-based output position.
    pub target: OrderTarget,
    /// Ascending?
    pub asc: bool,
}

/// What an ORDER BY key refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    /// Output column by name.
    Column(String),
    /// Output column by 1-based position.
    Position(usize),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Output columns.
    pub projections: Vec<Projection>,
    /// Source table.
    pub table: String,
    /// `FOR SYSTEM_TIME ...`, if present.
    pub system_time: Option<TimeClause>,
    /// `FOR BUSINESS_TIME ...`, if present.
    pub business_time: Option<TimeClause>,
    /// WHERE predicate.
    pub where_clause: Option<Predicate>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Select),
    /// `INSERT INTO t [BUSINESS_TIME FROM a TO b] VALUES (...)`.
    Insert {
        /// Target table.
        table: String,
        /// The row values.
        values: Vec<ScalarExpr>,
        /// Optional application period.
        business_time: Option<(ScalarExpr, ScalarExpr)>,
    },
    /// `UPDATE t [FOR PORTION OF BUSINESS_TIME FROM a TO b] SET c = v, ...
    /// WHERE <key predicate>`.
    Update {
        /// Target table.
        table: String,
        /// Portion of the application axis.
        portion: Option<(ScalarExpr, ScalarExpr)>,
        /// Assignments.
        set: Vec<(String, ScalarExpr)>,
        /// Key predicate (equality on the primary key columns).
        where_clause: Predicate,
    },
    /// `DELETE FROM t [FOR PORTION OF BUSINESS_TIME ...] WHERE <key>`.
    Delete {
        /// Target table.
        table: String,
        /// Portion of the application axis.
        portion: Option<(ScalarExpr, ScalarExpr)>,
        /// Key predicate.
        where_clause: Predicate,
    },
    /// `COMMIT`.
    Commit,
    /// `SHOW TABLES`.
    ShowTables,
    /// `DESCRIBE <table>`.
    Describe(String),
}
