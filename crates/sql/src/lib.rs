//! # bitempo-sql
//!
//! A SQL:2011-flavoured temporal query layer over the bitemporal engines.
//!
//! The paper leans on SQL:2011's temporal syntax throughout (§2, §3.3) and
//! had to translate its workload into four vendor dialects; this crate
//! provides the dialect an open-source release of the benchmark would ship:
//! a hand-rolled lexer + recursive-descent parser + binder/executor for the
//! temporal subset the benchmark exercises.
//!
//! Supported statements (see [`parser`] for the grammar):
//!
//! ```sql
//! SELECT c_name, c_acctbal FROM customer
//!   FOR SYSTEM_TIME AS OF 17
//!   FOR BUSINESS_TIME AS OF DATE '1995-06-17'
//!   WHERE c_acctbal > 1000 AND c_mktsegment = 'BUILDING'
//!   ORDER BY c_acctbal DESC LIMIT 10;
//!
//! SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders
//!   FOR SYSTEM_TIME ALL GROUP BY o_orderstatus;
//!
//! INSERT INTO price_list VALUES (1, 10.0);
//! UPDATE orders FOR PORTION OF BUSINESS_TIME FROM DATE '1995-01-01'
//!   TO DATE '1996-01-01' SET o_orderstatus = 'F' WHERE o_orderkey = 42;
//! DELETE FROM orders WHERE o_orderkey = 42;
//! SHOW TABLES;
//! DESCRIBE orders;
//! COMMIT;
//! ```
//!
//! Period boundary pseudo-columns (`app_start`, `app_end`, `sys_start`,
//! `sys_end`) are selectable and filterable on temporal tables, exactly as
//! the benchmark's K1 selects `sys_time_start`.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use exec::{execute, QueryOutput};

use bitempo_core::Result;
use bitempo_engine::BitemporalEngine;

/// Parses and executes one SQL statement against an engine.
pub fn run_sql(engine: &mut dyn BitemporalEngine, sql: &str) -> Result<QueryOutput> {
    let statement = parser::parse(sql)?;
    exec::execute(engine, &statement)
}

#[cfg(test)]
pub(crate) mod testdb {
    //! A tiny shared database for the SQL tests.

    use bitempo_core::{
        AppDate, AppPeriod, Column, DataType, Period, Row, Schema, TableDef, TemporalClass, Value,
    };
    use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};

    /// An `items` bitemporal table with a few committed versions:
    ///
    /// | id | name    | price | app period       |
    /// |----|---------|-------|------------------|
    /// | 1  | hammer  | 10.0  | [100, ∞) then corrected to 12.0 from 200 |
    /// | 2  | wrench  | 20.0  | [150, ∞)         |
    /// | 3  | saw     | 30.0  | [100, 300)       |
    pub fn items_db() -> Box<dyn BitemporalEngine> {
        let mut db = build_engine(SystemKind::A);
        let def = TableDef::new(
            "items",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
                Column::new("price", DataType::Double),
            ]),
            vec![0],
            TemporalClass::Bitemporal,
            Some("valid"),
        )
        .unwrap();
        let t = db.create_table(def).unwrap();
        let row = |id: i64, name: &str, price: f64| {
            Row::new(vec![Value::Int(id), Value::str(name), Value::Double(price)])
        };
        db.insert(
            t,
            row(1, "hammer", 10.0),
            Some(AppPeriod::since(AppDate(100))),
        )
        .unwrap();
        db.insert(
            t,
            row(2, "wrench", 20.0),
            Some(AppPeriod::since(AppDate(150))),
        )
        .unwrap();
        db.insert(
            t,
            row(3, "saw", 30.0),
            Some(Period::new(AppDate(100), AppDate(300))),
        )
        .unwrap();
        db.commit(); // t1
        db.update(
            t,
            &bitempo_core::Key::int(1),
            &[(2, Value::Double(12.0))],
            Some(AppPeriod::since(AppDate(200))),
        )
        .unwrap();
        db.commit(); // t2
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_select() {
        let mut db = testdb::items_db();
        let out = run_sql(
            db.as_mut(),
            "SELECT name, price FROM items WHERE price > 11 ORDER BY price LIMIT 2",
        )
        .unwrap();
        let rows = out.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &bitempo_core::Value::str("hammer"));
        assert_eq!(rows[1].get(0), &bitempo_core::Value::str("wrench"));
    }

    #[test]
    fn end_to_end_time_travel() {
        let mut db = testdb::items_db();
        // Before the correction, the hammer cost 10.0 everywhere.
        let out = run_sql(
            db.as_mut(),
            "SELECT price FROM items FOR SYSTEM_TIME AS OF 1 \
             FOR BUSINESS_TIME AS OF 250 WHERE id = 1",
        )
        .unwrap();
        assert_eq!(out.rows()[0].get(0), &bitempo_core::Value::Double(10.0));
        // Now it costs 12.0 from day 200 on.
        let out = run_sql(
            db.as_mut(),
            "SELECT price FROM items FOR BUSINESS_TIME AS OF 250 WHERE id = 1",
        )
        .unwrap();
        assert_eq!(out.rows()[0].get(0), &bitempo_core::Value::Double(12.0));
    }
}
