//! Binding and execution of parsed statements against an engine.

use crate::ast::*;
use bitempo_core::date::parse_iso_date;
use bitempo_core::{obs, AppDate, AppPeriod, Error, Key, Period, Result, Row, SysTime, Value};
use bitempo_engine::api::{AppSpec, ColRange, SysSpec};
use bitempo_engine::BitemporalEngine;
use bitempo_query::expr::Expr;
use bitempo_query::{aggregate, filter, project, sort_by, AggExpr, AggFunc, SortKey};
use std::ops::Bound;

/// The result of executing a statement.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// A result set.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// The rows.
        rows: Vec<Row>,
    },
    /// A DML result.
    Affected(usize),
    /// An informational message (COMMIT etc.).
    Message(String),
}

impl QueryOutput {
    /// The rows of a result set (empty for non-queries).
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryOutput::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Renders as an aligned text table.
    pub fn to_table_string(&self) -> String {
        match self {
            QueryOutput::Message(m) => format!("{m}\n"),
            QueryOutput::Affected(n) => format!("{n} row(s) affected\n"),
            QueryOutput::Rows { columns, rows } => {
                let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| r.values().iter().map(ToString::to_string).collect())
                    .collect();
                for row in &rendered {
                    for (i, cell) in row.iter().enumerate() {
                        if i < widths.len() {
                            widths[i] = widths[i].max(cell.len());
                        }
                    }
                }
                let mut out = String::new();
                for (i, c) in columns.iter().enumerate() {
                    out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
                }
                out.push('\n');
                for (i, _) in columns.iter().enumerate() {
                    out.push_str(&"-".repeat(widths[i]));
                    out.push_str("  ");
                }
                out.push('\n');
                for row in &rendered {
                    for (i, cell) in row.iter().enumerate() {
                        out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
                    }
                    out.push('\n');
                }
                out.push_str(&format!("({} row(s))\n", rows.len()));
                out
            }
        }
    }
}

/// Executes one statement.
pub fn execute(engine: &mut dyn BitemporalEngine, statement: &Statement) -> Result<QueryOutput> {
    match statement {
        Statement::Select(select) => run_select(engine, select),
        Statement::Insert {
            table,
            values,
            business_time,
        } => run_insert(engine, table, values, business_time.as_ref()),
        Statement::Update {
            table,
            portion,
            set,
            where_clause,
        } => run_update(engine, table, portion.as_ref(), set, where_clause),
        Statement::Delete {
            table,
            portion,
            where_clause,
        } => run_delete(engine, table, portion.as_ref(), where_clause),
        Statement::Commit => {
            let t = engine.commit();
            Ok(QueryOutput::Message(format!("committed at {t}")))
        }
        Statement::ShowTables => {
            let rows = engine
                .table_names()
                .into_iter()
                .map(|n| Row::new(vec![Value::str(n)]))
                .collect();
            Ok(QueryOutput::Rows {
                columns: vec!["table".into()],
                rows,
            })
        }
        Statement::Describe(name) => {
            let id = engine.resolve(name)?;
            let def = engine.table_def(id);
            let mut rows: Vec<Row> = def
                .scan_schema()
                .columns()
                .iter()
                .map(|c| {
                    Row::new(vec![
                        Value::str(c.name.clone()),
                        Value::str(format!("{:?}", c.dtype)),
                    ])
                })
                .collect();
            rows.push(Row::new(vec![
                Value::str("(temporal class)"),
                Value::str(format!("{:?}", def.temporal)),
            ]));
            Ok(QueryOutput::Rows {
                columns: vec!["column".into(), "type".into()],
                rows,
            })
        }
    }
}

/// Name → scan-output position binding for one table.
struct Binding {
    names: Vec<String>,
}

impl Binding {
    fn new(engine: &dyn BitemporalEngine, table: bitempo_core::TableId) -> Binding {
        let def = engine.table_def(table);
        Binding {
            names: def
                .scan_schema()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        }
    }

    fn col(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }
}

/// Evaluates a scalar that must be constant (time points, DML values).
fn const_value(engine: &dyn BitemporalEngine, expr: &ScalarExpr) -> Result<Value> {
    match expr {
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::DateLiteral(s) => parse_iso_date(s)
            .map(|d| Value::Date(AppDate(d)))
            .ok_or_else(|| Error::Invalid(format!("bad DATE literal '{s}'"))),
        ScalarExpr::Now => Ok(Value::SysTime(engine.now())),
        ScalarExpr::Column(c) => Err(Error::Invalid(format!(
            "column {c} not allowed in a constant context"
        ))),
        ScalarExpr::Binary { .. } => {
            // Fold via the expression evaluator with an empty row.
            let e = bind_scalar_const(engine, expr)?;
            e.eval(&Row::new(vec![]))
        }
    }
}

fn bind_scalar_const(engine: &dyn BitemporalEngine, expr: &ScalarExpr) -> Result<Expr> {
    match expr {
        ScalarExpr::Column(c) => Err(Error::Invalid(format!("unexpected column {c}"))),
        other => bind_scalar_inner(engine, other, None),
    }
}

fn bind_scalar(
    engine: &dyn BitemporalEngine,
    binding: &Binding,
    expr: &ScalarExpr,
) -> Result<Expr> {
    bind_scalar_inner(engine, expr, Some(binding))
}

fn bind_scalar_inner(
    engine: &dyn BitemporalEngine,
    expr: &ScalarExpr,
    binding: Option<&Binding>,
) -> Result<Expr> {
    Ok(match expr {
        ScalarExpr::Column(name) => {
            let b =
                binding.ok_or_else(|| Error::Invalid(format!("column {name} not allowed here")))?;
            Expr::Col(b.col(name)?)
        }
        ScalarExpr::Literal(v) => Expr::Lit(v.clone()),
        ScalarExpr::DateLiteral(s) => Expr::Lit(
            parse_iso_date(s)
                .map(|d| Value::Date(AppDate(d)))
                .ok_or_else(|| Error::Invalid(format!("bad DATE literal '{s}'")))?,
        ),
        ScalarExpr::Now => Expr::Lit(Value::SysTime(engine.now())),
        ScalarExpr::Binary { op, left, right } => {
            let l = bind_scalar_inner(engine, left, binding)?;
            let r = bind_scalar_inner(engine, right, binding)?;
            match op {
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::Div => l.div(r),
            }
        }
    })
}

fn bind_predicate(
    engine: &dyn BitemporalEngine,
    binding: &Binding,
    pred: &Predicate,
) -> Result<Expr> {
    Ok(match pred {
        Predicate::Compare { op, left, right } => {
            let l = bind_scalar(engine, binding, left)?;
            let r = bind_scalar(engine, binding, right)?;
            match op {
                CmpOp::Eq => l.eq(r),
                CmpOp::Ne => l.ne(r),
                CmpOp::Lt => l.lt(r),
                CmpOp::Le => l.le(r),
                CmpOp::Gt => l.gt(r),
                CmpOp::Ge => l.ge(r),
            }
        }
        Predicate::Like(expr, pattern) => bind_scalar(engine, binding, expr)?.like(pattern.clone()),
        Predicate::Between(expr, lo, hi) => {
            let e = bind_scalar(engine, binding, expr)?;
            e.between(
                bind_scalar(engine, binding, lo)?,
                bind_scalar(engine, binding, hi)?,
            )
        }
        Predicate::InList(expr, items) => {
            let values: Result<Vec<Value>> = items.iter().map(|i| const_value(engine, i)).collect();
            bind_scalar(engine, binding, expr)?.in_list(values?)
        }
        Predicate::And(a, b) => {
            bind_predicate(engine, binding, a)?.and(bind_predicate(engine, binding, b)?)
        }
        Predicate::Or(a, b) => {
            bind_predicate(engine, binding, a)?.or(bind_predicate(engine, binding, b)?)
        }
        Predicate::Not(a) => bind_predicate(engine, binding, a)?.negate(),
    })
}

/// Conjunctive equality/range predicates on plain value columns become
/// pushable [`ColRange`]s (enabling the engines' key and value indexes).
fn pushdown(
    engine: &dyn BitemporalEngine,
    binding: &Binding,
    value_arity: usize,
    pred: &Predicate,
    out: &mut Vec<ColRange>,
) {
    match pred {
        Predicate::And(a, b) => {
            pushdown(engine, binding, value_arity, a, out);
            pushdown(engine, binding, value_arity, b, out);
        }
        Predicate::Compare { op, left, right } => {
            let (column, constant, op) = match (left, right) {
                (ScalarExpr::Column(c), rhs) => match const_value(engine, rhs) {
                    Ok(v) => (c, v, *op),
                    Err(_) => return,
                },
                (lhs, ScalarExpr::Column(c)) => match const_value(engine, lhs) {
                    Ok(v) => (c, v, flip(*op)),
                    Err(_) => return,
                },
                _ => return,
            };
            let Ok(idx) = binding.col(column) else {
                return;
            };
            if idx >= value_arity {
                return; // period pseudo-columns are handled by the specs
            }
            let range = match op {
                CmpOp::Eq => ColRange::eq(idx, constant),
                CmpOp::Lt => ColRange::between(idx, Bound::Unbounded, Bound::Excluded(constant)),
                CmpOp::Le => ColRange::between(idx, Bound::Unbounded, Bound::Included(constant)),
                CmpOp::Gt => ColRange::between(idx, Bound::Excluded(constant), Bound::Unbounded),
                CmpOp::Ge => ColRange::between(idx, Bound::Included(constant), Bound::Unbounded),
                CmpOp::Ne => return,
            };
            out.push(range);
        }
        Predicate::Between(ScalarExpr::Column(c), lo, hi) => {
            let (Ok(idx), Ok(lo), Ok(hi)) = (
                binding.col(c),
                const_value(engine, lo),
                const_value(engine, hi),
            ) else {
                return;
            };
            if idx < value_arity {
                out.push(ColRange::between(
                    idx,
                    Bound::Included(lo),
                    Bound::Included(hi),
                ));
            }
        }
        _ => {}
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn sys_point(engine: &dyn BitemporalEngine, expr: &ScalarExpr) -> Result<SysTime> {
    match const_value(engine, expr)? {
        Value::SysTime(t) => Ok(t),
        Value::Int(i) if i >= 0 => Ok(SysTime(i as u64)),
        other => Err(Error::Invalid(format!("bad system time point: {other}"))),
    }
}

fn app_point(engine: &dyn BitemporalEngine, expr: &ScalarExpr) -> Result<AppDate> {
    match const_value(engine, expr)? {
        Value::Date(d) => Ok(d),
        Value::Int(i) => Ok(AppDate(i)),
        other => Err(Error::Invalid(format!(
            "bad application time point: {other}"
        ))),
    }
}

/// Builds a user-supplied period, rejecting inverted bounds: `FROM b TO a`
/// with `a < b` is a query error, not an empty result.
fn user_period<T: Copy + Ord + std::fmt::Display>(
    dim: &str,
    start: T,
    end: T,
) -> Result<Period<T>> {
    if start > end {
        return Err(Error::Invalid(format!(
            "{dim} FROM {start} TO {end}: range start is after its end"
        )));
    }
    Ok(Period::new(start, end))
}

fn sys_spec(engine: &dyn BitemporalEngine, clause: &Option<TimeClause>) -> Result<SysSpec> {
    Ok(match clause {
        None => SysSpec::Current,
        Some(TimeClause::AsOf(e)) => SysSpec::AsOf(sys_point(engine, e)?),
        Some(TimeClause::FromTo(a, b)) => SysSpec::Range(user_period(
            "SYSTEM_TIME",
            sys_point(engine, a)?,
            sys_point(engine, b)?,
        )?),
        Some(TimeClause::All) => SysSpec::All,
    })
}

fn app_spec(engine: &dyn BitemporalEngine, clause: &Option<TimeClause>) -> Result<AppSpec> {
    Ok(match clause {
        None => AppSpec::All,
        Some(TimeClause::AsOf(e)) => AppSpec::AsOf(app_point(engine, e)?),
        Some(TimeClause::FromTo(a, b)) => AppSpec::Range(user_period(
            "BUSINESS_TIME",
            app_point(engine, a)?,
            app_point(engine, b)?,
        )?),
        Some(TimeClause::All) => AppSpec::All,
    })
}

fn run_select(engine: &mut dyn BitemporalEngine, select: &Select) -> Result<QueryOutput> {
    let _span = obs::span_dyn("sql", || format!("select {}", select.table));
    let table = engine.resolve(&select.table)?;
    let def = engine.table_def(table).clone();
    if select.business_time.is_some() && !def.has_app_time() {
        return Err(Error::Unsupported(format!(
            "BUSINESS_TIME on table {} (no application time)",
            def.name
        )));
    }
    if select.system_time.is_some() && !def.has_system_time() {
        return Err(Error::Unsupported(format!(
            "SYSTEM_TIME on non-versioned table {}",
            def.name
        )));
    }
    let binding = Binding::new(engine, table);
    let sys = sys_spec(engine, &select.system_time)?;
    let app = app_spec(engine, &select.business_time)?;
    let mut pushed = Vec::new();
    if let Some(w) = &select.where_clause {
        pushdown(engine, &binding, def.schema.arity(), w, &mut pushed);
    }
    let mut rows = engine.scan(table, &sys, &app, &pushed)?.rows;
    if let Some(w) = &select.where_clause {
        let residual = bind_predicate(engine, &binding, w)?;
        rows = filter(&rows, &residual)?;
    }

    let has_aggregates = select
        .projections
        .iter()
        .any(|p| matches!(p, Projection::CountStar | Projection::Aggregate(_, _)));

    let (columns, mut out) = if has_aggregates || !select.group_by.is_empty() {
        run_grouped(engine, &binding, select, &rows)?
    } else {
        run_plain(engine, &binding, select, &rows)?
    };

    // ORDER BY against the output columns.
    let mut keys = Vec::new();
    for k in &select.order_by {
        let idx = match &k.target {
            OrderTarget::Position(p) => {
                if *p == 0 || *p > columns.len() {
                    return Err(Error::Invalid(format!(
                        "ORDER BY position {p} out of range"
                    )));
                }
                p - 1
            }
            OrderTarget::Column(name) => columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| Error::UnknownColumn(name.clone()))?,
        };
        keys.push(SortKey {
            col: idx,
            asc: k.asc,
        });
    }
    if !keys.is_empty() {
        sort_by(&mut out, &keys);
    }
    if let Some(n) = select.limit {
        out.truncate(n);
    }
    Ok(QueryOutput::Rows { columns, rows: out })
}

fn projection_name(p: &Projection, i: usize) -> String {
    match p {
        Projection::Wildcard => "*".into(),
        Projection::Expr(ScalarExpr::Column(c), None) => c.clone(),
        Projection::Expr(_, Some(alias)) => alias.clone(),
        Projection::Expr(_, None) => format!("expr_{i}"),
        Projection::CountStar => "count".into(),
        Projection::Aggregate(AggName::Sum, _) => "sum".into(),
        Projection::Aggregate(AggName::Avg, _) => "avg".into(),
        Projection::Aggregate(AggName::Min, _) => "min".into(),
        Projection::Aggregate(AggName::Max, _) => "max".into(),
        Projection::Aggregate(AggName::Count, _) => "count".into(),
    }
}

fn run_plain(
    engine: &dyn BitemporalEngine,
    binding: &Binding,
    select: &Select,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<Row>)> {
    if select.projections == [Projection::Wildcard] {
        return Ok((binding.names.clone(), rows.to_vec()));
    }
    let mut exprs = Vec::new();
    let mut names = Vec::new();
    for (i, p) in select.projections.iter().enumerate() {
        match p {
            Projection::Wildcard => {
                return Err(Error::Invalid(
                    "'*' cannot be mixed with other projections".into(),
                ))
            }
            Projection::Expr(e, _) => {
                exprs.push(bind_scalar(engine, binding, e)?);
                names.push(projection_name(p, i));
            }
            _ => unreachable!("aggregates handled by run_grouped"),
        }
    }
    Ok((names, project(rows, &exprs)?))
}

fn run_grouped(
    engine: &dyn BitemporalEngine,
    binding: &Binding,
    select: &Select,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<Row>)> {
    let group_cols: Result<Vec<usize>> = select.group_by.iter().map(|g| binding.col(g)).collect();
    let group_cols = group_cols?;
    let mut aggs = Vec::new();
    // Map each projection to a position in the aggregate output
    // ([group cols..., agg results...]).
    let mut output_slots = Vec::new();
    let mut names = Vec::new();
    for (i, p) in select.projections.iter().enumerate() {
        names.push(projection_name(p, i));
        match p {
            Projection::Expr(ScalarExpr::Column(c), _) => {
                let pos =
                    select.group_by.iter().position(|g| g == c).ok_or_else(|| {
                        Error::Invalid(format!("column {c} must appear in GROUP BY"))
                    })?;
                output_slots.push(pos);
            }
            Projection::Expr(_, _) | Projection::Wildcard => {
                return Err(Error::Invalid(
                    "only grouped columns and aggregates allowed with GROUP BY".into(),
                ))
            }
            Projection::CountStar => {
                output_slots.push(group_cols.len() + aggs.len());
                aggs.push(AggExpr::count());
            }
            Projection::Aggregate(name, inner) => {
                let input = bind_scalar(engine, binding, inner)?;
                let func = match name {
                    AggName::Sum => AggFunc::Sum,
                    AggName::Avg => AggFunc::Avg,
                    AggName::Min => AggFunc::Min,
                    AggName::Max => AggFunc::Max,
                    AggName::Count => AggFunc::Count,
                };
                output_slots.push(group_cols.len() + aggs.len());
                aggs.push(AggExpr { func, input });
            }
        }
    }
    let grouped = aggregate(rows, &group_cols, &aggs)?;
    let out = grouped.iter().map(|r| r.project(&output_slots)).collect();
    Ok((names, out))
}

fn app_period(
    engine: &dyn BitemporalEngine,
    portion: Option<&(ScalarExpr, ScalarExpr)>,
) -> Result<Option<AppPeriod>> {
    portion
        .map(|(a, b)| {
            user_period(
                "PORTION OF BUSINESS_TIME",
                app_point(engine, a)?,
                app_point(engine, b)?,
            )
        })
        .transpose()
}

fn run_insert(
    engine: &mut dyn BitemporalEngine,
    table: &str,
    values: &[ScalarExpr],
    business_time: Option<&(ScalarExpr, ScalarExpr)>,
) -> Result<QueryOutput> {
    let _span = obs::span_dyn("sql", || format!("insert {table}"));
    let id = engine.resolve(table)?;
    let row: Result<Vec<Value>> = values.iter().map(|v| const_value(engine, v)).collect();
    let app = app_period(engine, business_time)?;
    // tblint: allow(TB007) single-session SQL executor; the MVCC front-end is bitempo-txn
    engine.insert(id, Row::new(row?), app)?;
    Ok(QueryOutput::Affected(1))
}

/// Extracts the full-primary-key equality from a DML WHERE clause.
fn key_from_where(
    engine: &dyn BitemporalEngine,
    table: bitempo_core::TableId,
    pred: &Predicate,
) -> Result<Key> {
    fn collect<'a>(p: &'a Predicate, out: &mut Vec<(&'a str, &'a ScalarExpr)>) {
        match p {
            Predicate::And(a, b) => {
                collect(a, out);
                collect(b, out);
            }
            Predicate::Compare {
                op: CmpOp::Eq,
                left: ScalarExpr::Column(c),
                right,
            } => out.push((c, right)),
            Predicate::Compare {
                op: CmpOp::Eq,
                left,
                right: ScalarExpr::Column(c),
            } => out.push((c, left)),
            _ => {}
        }
    }
    let mut eqs = Vec::new();
    collect(pred, &mut eqs);
    let def = engine.table_def(table);
    let mut key_values = Vec::new();
    for &k in &def.key {
        let name = &def.schema.column(k).name;
        let (_, expr) = eqs.iter().find(|(c, _)| c == name).ok_or_else(|| {
            Error::Invalid(format!(
                "DML WHERE must pin the primary key; missing {name}"
            ))
        })?;
        key_values.push(const_value(engine, expr)?);
    }
    Ok(match key_values.as_slice() {
        [Value::Int(a)] => Key::Int(*a),
        [Value::Int(a), Value::Int(b)] => Key::Int2(*a, *b),
        _ => Key::General(key_values),
    })
}

fn run_update(
    engine: &mut dyn BitemporalEngine,
    table: &str,
    portion: Option<&(ScalarExpr, ScalarExpr)>,
    set: &[(String, ScalarExpr)],
    where_clause: &Predicate,
) -> Result<QueryOutput> {
    let _span = obs::span_dyn("sql", || format!("update {table}"));
    let id = engine.resolve(table)?;
    let key = key_from_where(engine, id, where_clause)?;
    let def = engine.table_def(id).clone();
    let mut assignments = Vec::new();
    for (col, expr) in set {
        assignments.push((def.schema.col(col)?, const_value(engine, expr)?));
    }
    let app = app_period(engine, portion)?;
    // tblint: allow(TB007) single-session SQL executor; the MVCC front-end is bitempo-txn
    let n = engine.update(id, &key, &assignments, app)?;
    Ok(QueryOutput::Affected(n))
}

fn run_delete(
    engine: &mut dyn BitemporalEngine,
    table: &str,
    portion: Option<&(ScalarExpr, ScalarExpr)>,
    where_clause: &Predicate,
) -> Result<QueryOutput> {
    let _span = obs::span_dyn("sql", || format!("delete {table}"));
    let id = engine.resolve(table)?;
    let key = key_from_where(engine, id, where_clause)?;
    let app = app_period(engine, portion)?;
    // tblint: allow(TB007) single-session SQL executor; the MVCC front-end is bitempo-txn
    let n = engine.delete(id, &key, app)?;
    Ok(QueryOutput::Affected(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sql;
    use crate::testdb::items_db;

    #[test]
    fn wildcard_includes_period_columns() {
        let mut db = items_db();
        let out = run_sql(db.as_mut(), "SELECT * FROM items WHERE id = 2").unwrap();
        let QueryOutput::Rows { columns, rows } = &out else {
            panic!()
        };
        assert_eq!(
            columns,
            &[
                "id",
                "name",
                "price",
                "app_start",
                "app_end",
                "sys_start",
                "sys_end"
            ]
        );
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn period_pseudo_columns_are_filterable() {
        let mut db = items_db();
        let out = run_sql(
            db.as_mut(),
            "SELECT id FROM items FOR SYSTEM_TIME ALL WHERE sys_end <= NOW ORDER BY id",
        )
        .unwrap();
        // Only the superseded hammer version has a closed system period.
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].get(0), &Value::Int(1));
    }

    #[test]
    fn inverted_time_ranges_are_query_errors() {
        let mut db = items_db();
        let err = run_sql(
            db.as_mut(),
            "SELECT id FROM items FOR SYSTEM_TIME FROM 7 TO 3",
        )
        .unwrap_err();
        assert!(err.to_string().contains("start is after its end"), "{err}");
        let err = run_sql(
            db.as_mut(),
            "SELECT id FROM items FOR BUSINESS_TIME FROM 20 TO 10",
        )
        .unwrap_err();
        assert!(err.to_string().contains("start is after its end"), "{err}");
    }

    #[test]
    fn grouped_aggregates() {
        let mut db = items_db();
        let out = run_sql(
            db.as_mut(),
            "SELECT COUNT(*), SUM(price), MIN(name) FROM items",
        )
        .unwrap();
        let rows = out.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(0),
            &Value::Int(4),
            "current versions incl. split"
        );
        assert_eq!(rows[0].get(2), &Value::str("hammer"));
    }

    #[test]
    fn group_by_column_ordering() {
        let mut db = items_db();
        let out = run_sql(
            db.as_mut(),
            "SELECT name, COUNT(*) FROM items FOR SYSTEM_TIME ALL \
             GROUP BY name ORDER BY 2 DESC, name",
        )
        .unwrap();
        let QueryOutput::Rows { columns, rows } = &out else {
            panic!()
        };
        assert_eq!(columns, &["name", "count"]);
        assert_eq!(rows[0].get(0), &Value::str("hammer"), "3 versions");
        assert_eq!(rows[0].get(1), &Value::Int(3));
    }

    #[test]
    fn dml_roundtrip() {
        let mut db = items_db();
        run_sql(db.as_mut(), "INSERT INTO items VALUES (4, 'drill', 99.0)").unwrap();
        run_sql(db.as_mut(), "COMMIT").unwrap();
        let out = run_sql(db.as_mut(), "SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(out.rows()[0].get(0), &Value::Int(5));

        let out = run_sql(db.as_mut(), "UPDATE items SET price = 42.0 WHERE id = 4").unwrap();
        assert!(matches!(out, QueryOutput::Affected(1)));
        run_sql(db.as_mut(), "COMMIT").unwrap();
        let out = run_sql(db.as_mut(), "SELECT price FROM items WHERE id = 4").unwrap();
        assert_eq!(out.rows()[0].get(0), &Value::Double(42.0));

        let out = run_sql(db.as_mut(), "DELETE FROM items WHERE id = 4").unwrap();
        assert!(matches!(out, QueryOutput::Affected(1)));
        run_sql(db.as_mut(), "COMMIT").unwrap();
        let out = run_sql(db.as_mut(), "SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(out.rows()[0].get(0), &Value::Int(4));
    }

    #[test]
    fn portion_update_via_sql() {
        let mut db = items_db();
        run_sql(
            db.as_mut(),
            "UPDATE items FOR PORTION OF BUSINESS_TIME FROM 160 TO 180 \
             SET price = 21.5 WHERE id = 2",
        )
        .unwrap();
        run_sql(db.as_mut(), "COMMIT").unwrap();
        let out = run_sql(
            db.as_mut(),
            "SELECT price FROM items FOR BUSINESS_TIME AS OF 170 WHERE id = 2",
        )
        .unwrap();
        assert_eq!(out.rows()[0].get(0), &Value::Double(21.5));
        let out = run_sql(
            db.as_mut(),
            "SELECT price FROM items FOR BUSINESS_TIME AS OF 190 WHERE id = 2",
        )
        .unwrap();
        assert_eq!(out.rows()[0].get(0), &Value::Double(20.0));
    }

    #[test]
    fn show_and_describe() {
        let mut db = items_db();
        let out = run_sql(db.as_mut(), "SHOW TABLES").unwrap();
        assert_eq!(out.rows().len(), 1);
        let out = run_sql(db.as_mut(), "DESCRIBE items").unwrap();
        assert!(out.rows().len() >= 8);
        let text = out.to_table_string();
        assert!(text.contains("Bitemporal"));
    }

    #[test]
    fn errors_are_descriptive() {
        let mut db = items_db();
        assert!(run_sql(db.as_mut(), "SELECT nope FROM items").is_err());
        assert!(run_sql(db.as_mut(), "SELECT * FROM nope").is_err());
        assert!(run_sql(db.as_mut(), "UPDATE items SET price = 1 WHERE name = 'saw'").is_err());
        assert!(run_sql(
            db.as_mut(),
            "SELECT name, COUNT(*) FROM items GROUP BY price"
        )
        .is_err());
    }

    #[test]
    fn table_rendering() {
        let mut db = items_db();
        let out = run_sql(db.as_mut(), "SELECT id, name FROM items ORDER BY id").unwrap();
        let text = out.to_table_string();
        assert!(text.contains("id"));
        assert!(text.contains("hammer"));
        assert!(text.contains("row(s)"));
    }
}
