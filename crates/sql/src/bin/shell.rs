//! `bitempo-shell` — an interactive temporal SQL shell over a generated
//! TPC-BiH instance.
//!
//! ```text
//! bitempo-shell [--system A|B|C|D] [--h <f>] [--m <f>] [--empty]
//! ```
//!
//! With `--empty` the shell starts with no tables (create data through the
//! library API); otherwise it generates and loads the benchmark database at
//! the given scales. Then type SQL:
//!
//! ```text
//! bitempo> SELECT COUNT(*) FROM orders FOR SYSTEM_TIME ALL;
//! bitempo> SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus;
//! bitempo> SELECT * FROM customer FOR SYSTEM_TIME AS OF 1 WHERE c_custkey = 7;
//! ```

use bitempo_dbgen::ScaleConfig;
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = SystemKind::A;
    let mut h = 0.001;
    let mut m = 0.001;
    let mut empty = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--system" => {
                kind = match args.get(i + 1).map(String::as_str) {
                    Some("A") | Some("a") => SystemKind::A,
                    Some("B") | Some("b") => SystemKind::B,
                    Some("C") | Some("c") => SystemKind::C,
                    Some("D") | Some("d") => SystemKind::D,
                    other => {
                        eprintln!("unknown system {other:?} (use A|B|C|D)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--h" => {
                h = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(h);
                i += 2;
            }
            "--m" => {
                m = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(m);
                i += 2;
            }
            "--empty" => {
                empty = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let mut engine: Box<dyn BitemporalEngine> = build_engine(kind);
    if !empty {
        eprintln!(
            "generating TPC-BiH instance (h = {h}, m = {m}) on {} ...",
            kind.name()
        );
        let data = bitempo_dbgen::generate(&ScaleConfig::with_h(h));
        let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(m));
        let ids = loader::load_initial(engine.as_mut(), &data).expect("initial load");
        loader::replay(engine.as_mut(), &ids, &history.archive, 1).expect("history replay");
        engine.checkpoint();
        eprintln!(
            "loaded {} history transactions; system time now {}",
            history.archive.transactions.len(),
            engine.now()
        );
    }
    eprintln!("type SQL statements (end with ';'), or 'quit'");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("bitempo> ");
        } else {
            eprint!("    ...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && matches!(trimmed, "quit" | "exit" | "\\q") {
            break;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        // tblint: allow(TB001) interactive shell latency display, not a measured result
        let started = std::time::Instant::now();
        match bitempo_sql::run_sql(engine.as_mut(), &sql) {
            Ok(output) => {
                print!("{}", output.to_table_string());
                eprintln!("({:.1} ms)", started.elapsed().as_secs_f64() * 1_000.0);
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
