//! SQL tokenizer.

use bitempo_core::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => return Err(Error::Invalid("unterminated string".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    tokens
                        .push(Token::Float(text.parse().map_err(|e| {
                            Error::Invalid(format!("bad float {text}: {e}"))
                        })?));
                } else {
                    tokens
                        .push(Token::Int(text.parse().map_err(|e| {
                            Error::Invalid(format!("bad integer {text}: {e}"))
                        })?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(Error::Invalid(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = lex("SELECT a, b FROM t WHERE x >= 1.5 AND y <> 'it''s';").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t[0].is_kw("select"));
        assert_eq!(t[2], Token::Comma);
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::Str("it's".into())));
        assert_eq!(*t.last().unwrap(), Token::Semi);
    }

    #[test]
    fn comments_and_whitespace() {
        let t = lex("SELECT 1 -- trailing comment\n , 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn operators() {
        let t = lex("< <= > >= = <> != + - * /").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("4.25").unwrap(), vec![Token::Float(4.25)]);
        // A trailing dot is a Dot token, not part of the number.
        assert_eq!(lex("4.").unwrap(), vec![Token::Int(4), Token::Dot]);
    }
}
