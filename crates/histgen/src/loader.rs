//! Loading histories into engines (paper §4.2, §5.8).
//!
//! Two paths:
//!
//! * [`replay`] — transaction-by-transaction execution of the archive
//!   through the engine's DML interface. This is the *only* correct way to
//!   build a history on engines that stamp system time at commit
//!   ("bulkloading of a history is not an option since it would result in a
//!   single timestamp for all involved tuples"). A `batch_size > 1` merges
//!   consecutive scenarios into one transaction (Fig 13).
//! * [`bulk_load`] — for engines with manual system time (System D), ships
//!   fully-stamped versions straight from the generator state, reproducing
//!   the paper's §5.8 observation that System D's load cost "is much lower
//!   since we can set the timestamps manually and perform a bulk load".

use crate::archive::Archive;
use crate::ops::{Op, ScenarioKind};
use crate::state::GenDb;
use bitempo_core::{AppPeriod, Error, Key, Result, Row, SysTime, TableId, TemporalClass, Value};
use bitempo_dbgen::TpchData;
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::BitemporalEngine;
use std::path::Path;
use std::time::Instant;

/// Per-transaction load timing.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `(first scenario of the transaction, wall nanoseconds)` per commit.
    pub timings: Vec<(ScenarioKind, u64)>,
    /// Total wall time of the replay, nanoseconds.
    pub total_nanos: u64,
    /// System time after the replay.
    pub version: SysTime,
    /// `(batch index, error)` for every batch that failed and was skipped
    /// under a resilient [`ReplayPolicy`]. Empty under strict replay.
    pub failed: Vec<(usize, Error)>,
    /// Op-level accounting: exactly how many ops were applied, skipped, or
    /// saved by a retry. Durability recovery asserts `skipped == 0` on this
    /// — a count the batch-level `failed` list used to swallow.
    pub ops: ReplayReport,
}

/// Op-level accounting for one replay. `applied + skipped` always equals
/// the archive's total op count, so nothing can go missing silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Ops applied successfully (including those that needed a retry).
    pub applied: u64,
    /// Ops *not* applied: the failing op of each failed batch plus the
    /// remainder of that batch, which the batch abort skipped.
    pub skipped: u64,
    /// Ops that failed with a retryable error and succeeded on the retry
    /// (a subset of `applied`).
    pub retried: u64,
}

/// How [`replay_resilient`] reacts to op failures mid-replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayPolicy {
    /// Abort the whole replay once more than this many batches have failed.
    /// `0` aborts on the first failure (strict, the [`replay`] behaviour).
    pub max_failed_batches: usize,
}

impl ReplayPolicy {
    /// Abort on the first failure — the classic all-or-nothing replay.
    pub fn strict() -> ReplayPolicy {
        ReplayPolicy {
            max_failed_batches: 0,
        }
    }

    /// Record up to `n` failed batches (skipping the remainder of each) and
    /// keep replaying; the failures are reported in [`LoadReport::failed`].
    pub fn resilient(n: usize) -> ReplayPolicy {
        ReplayPolicy {
            max_failed_batches: n,
        }
    }
}

impl LoadReport {
    /// Median latency in nanoseconds for one scenario kind (`None` = all).
    pub fn median_nanos(&self, kind: Option<ScenarioKind>) -> Option<u64> {
        percentile(self.filtered(kind), 0.50)
    }

    /// 97th-percentile latency in nanoseconds (the paper's Fig 16 metric).
    pub fn p97_nanos(&self, kind: Option<ScenarioKind>) -> Option<u64> {
        percentile(self.filtered(kind), 0.97)
    }

    fn filtered(&self, kind: Option<ScenarioKind>) -> Vec<u64> {
        self.timings
            .iter()
            .filter(|(k, _)| kind.is_none_or(|want| *k == want))
            .map(|(_, n)| *n)
            .collect()
    }
}

fn percentile(mut xs: Vec<u64>, q: f64) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_unstable();
    let idx = ((xs.len() - 1) as f64 * q).round() as usize;
    Some(xs[idx])
}

/// Creates the eight tables and loads version 0 in a single transaction, so
/// every initial tuple shares one system timestamp (paper §4.1 "loading the
/// output of TPC-H dbgen as version 0").
pub fn load_initial(engine: &mut dyn BitemporalEngine, data: &TpchData) -> Result<Vec<TableId>> {
    let mut ids = Vec::with_capacity(data.tables.len());
    for table in &data.tables {
        ids.push(engine.create_table(table.def.clone())?);
    }
    for (idx, table) in data.tables.iter().enumerate() {
        for (row, app) in &table.rows {
            engine.insert(ids[idx], row.clone(), *app)?;
        }
    }
    engine.commit();
    Ok(ids)
}

/// Applies one archive op to an open engine transaction. Public because
/// the durability WAL replays through exactly this dispatch — recovery and
/// the original load must interpret an op identically.
pub fn apply_op(engine: &mut dyn BitemporalEngine, ids: &[TableId], op: &Op) -> Result<()> {
    match op {
        Op::Insert { table, row, app } => engine.insert(ids[*table as usize], row.clone(), *app),
        Op::Update {
            table,
            key,
            updates,
            portion,
        } => {
            let assignments: Vec<(usize, Value)> = updates
                .iter()
                .map(|(c, v)| (*c as usize, v.clone()))
                .collect();
            engine
                .update(ids[*table as usize], key, &assignments, *portion)
                .map(|_| ())
        }
        Op::Delete {
            table,
            key,
            portion,
        } => engine
            .delete(ids[*table as usize], key, *portion)
            .map(|_| ()),
        Op::OverwriteApp { table, key, period } => engine
            .overwrite_app_period(ids[*table as usize], key, *period)
            .map(|_| ()),
    }
}

/// True if a *pending* version — one created by the currently open
/// transaction — already carries exactly `row`'s values and application
/// period, i.e. a failed insert's first attempt actually landed in the
/// engine before the error surfaced.
///
/// Sequenced ops are idempotent when re-applied inside the same open
/// transaction (re-closing an open version leaves an empty `[p, p)` system
/// period the engines discard, and the rewritten portions are absolute),
/// but a bare insert is not: re-driving one after a partial apply would
/// duplicate the version. The retry path consults this probe first.
///
/// The probe attributes a match to the open transaction by its system
/// start: only a version whose system period opens at the engine's pending
/// timestamp was created inside it. An identical version committed by an
/// *earlier* transaction opens strictly before that and must not satisfy
/// the probe — engines insert duplicates unconditionally, so such a false
/// positive would skip the retry and silently drop the insert. Tables
/// without system time offer no such attribution; there the probe stays
/// conservative and reports "not applied" (the generated scenarios never
/// insert into non-temporal tables, and a visible duplicate is the lesser
/// risk than a silent drop).
fn insert_effect_present(
    engine: &dyn BitemporalEngine,
    id: TableId,
    row: &Row,
    app: Option<AppPeriod>,
) -> bool {
    let def = engine.table_def(id);
    if !def.has_system_time() {
        return false;
    }
    let key = Key::from_row(row, &def.key);
    let value_arity = def.schema.arity();
    let want = app.unwrap_or(AppPeriod::ALL);
    let bitemporal = def.temporal == TemporalClass::Bitemporal;
    let sys_col = value_arity + if bitemporal { 2 } else { 0 };
    let pending = Value::SysTime(engine.now().next());
    // Pending (uncommitted) versions have open system periods, so a plain
    // current-snapshot lookup sees the eventual effect of this transaction.
    let Ok(out) = engine.lookup_key(id, &key, &SysSpec::Current, &AppSpec::All) else {
        return false;
    };
    out.rows.iter().any(|r| {
        let values_match = (0..value_arity).all(|c| r.get(c) == row.get(c));
        let app_match = !bitemporal
            || (r.get(value_arity) == &Value::Date(want.start)
                && r.get(value_arity + 1) == &Value::Date(want.end));
        values_match && app_match && r.get(sys_col) == &pending
    })
}

/// Replays the archive, committing every `batch_size` scenarios. Strict:
/// the first op failure aborts the whole replay.
pub fn replay(
    engine: &mut dyn BitemporalEngine,
    ids: &[TableId],
    archive: &Archive,
    batch_size: usize,
) -> Result<LoadReport> {
    replay_resilient(engine, ids, archive, batch_size, ReplayPolicy::strict())
}

/// Replays the archive under a failure policy. A failing op aborts the
/// *remainder of its batch* (already-applied ops of the batch stay in the
/// open transaction and are committed — the engines have no rollback, so
/// this is the honest recovery unit); subsequent batches continue as long
/// as the policy's failure budget holds. Every skipped batch is recorded in
/// [`LoadReport::failed`].
pub fn replay_resilient(
    engine: &mut dyn BitemporalEngine,
    ids: &[TableId],
    archive: &Archive,
    batch_size: usize,
    policy: ReplayPolicy,
) -> Result<LoadReport> {
    // tblint: allow(TB001) load-latency percentiles are the experiment's measurement (Fig 16)
    let started = Instant::now();
    let mut timings = Vec::with_capacity(archive.transactions.len());
    let mut failed: Vec<(usize, Error)> = Vec::new();
    let mut ops = ReplayReport::default();
    for (batch_idx, batch) in archive.transactions.chunks(batch_size.max(1)).enumerate() {
        let kind = batch[0]
            .scenarios
            .first()
            .copied()
            .unwrap_or(ScenarioKind::NewOrderExistingCustomer);
        let batch_ops: u64 = batch.iter().map(|t| t.ops.len() as u64).sum();
        // tblint: allow(TB001) per-batch wall-clock is the measured quantity here
        let t0 = Instant::now();
        let mut batch_err: Option<Error> = None;
        let mut applied_in_batch = 0u64;
        'ops: for txn in batch {
            for op in &txn.ops {
                let outcome = match apply_op(engine, ids, op) {
                    // One retry for transient failures: an op that succeeds
                    // on the second attempt was never lost, and the report
                    // says so instead of folding it into a skipped batch.
                    // The retry must be idempotent: a transient error can
                    // surface *after* the op mutated the engine (e.g. a
                    // contained worker panic mid-bookkeeping), and blindly
                    // re-driving an insert would then duplicate a version.
                    Err(e) if e.is_retryable() => {
                        let already_applied = match op {
                            Op::Insert { table, row, app } => {
                                insert_effect_present(engine, ids[*table as usize], row, *app)
                            }
                            // Sequenced ops re-apply idempotently (see
                            // `insert_effect_present` for the argument).
                            _ => false,
                        };
                        let second = if already_applied {
                            Ok(())
                        } else {
                            apply_op(engine, ids, op)
                        };
                        if second.is_ok() {
                            ops.retried += 1;
                        }
                        second
                    }
                    other => other,
                };
                match outcome {
                    Ok(()) => applied_in_batch += 1,
                    Err(e) => {
                        batch_err = Some(e);
                        break 'ops;
                    }
                }
            }
        }
        engine.commit();
        timings.push((kind, t0.elapsed().as_nanos() as u64));
        ops.applied += applied_in_batch;
        if let Some(e) = batch_err {
            ops.skipped += batch_ops - applied_in_batch;
            if failed.len() >= policy.max_failed_batches {
                return Err(e);
            }
            failed.push((batch_idx, e));
        }
    }
    Ok(LoadReport {
        timings,
        total_nanos: started.elapsed().as_nanos() as u64,
        version: engine.now(),
        failed,
        ops,
    })
}

/// Loads an archive from `path`, retrying up to `attempts` times on
/// retryable ([`Error::is_retryable`]) failures — transient I/O hiccups a
/// benchmark campaign should survive. Corruption is never retried.
pub fn load_archive_with_retry(path: impl AsRef<Path>, attempts: usize) -> Result<Archive> {
    read_archive_with_retry(|| Archive::load(path.as_ref()), attempts)
}

/// Generic retry driver over any archive source (used by the fault tests
/// to wire a [`bitempo_core::FaultyReader`] behind the closure).
pub fn read_archive_with_retry(
    mut source: impl FnMut() -> Result<Archive>,
    attempts: usize,
) -> Result<Archive> {
    let mut last: Option<Error> = None;
    for _ in 0..attempts.max(1) {
        match source() {
            Ok(a) => return Ok(a),
            Err(e) if e.is_retryable() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Bulk-loads a fully-evolved history into an engine with manual system
/// time. The engine must support it (System D); tables are created here.
pub fn bulk_load(engine: &mut dyn BitemporalEngine, db: &GenDb) -> Result<Vec<TableId>> {
    let mut ids = Vec::with_capacity(db.table_count());
    for idx in 0..db.table_count() {
        ids.push(engine.create_table(db.def(idx).clone())?);
    }
    for (idx, &id) in ids.iter().enumerate() {
        engine.bulk_load(id, db.all_versions(idx))?;
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryConfig;
    use bitempo_dbgen::ScaleConfig;
    use bitempo_engine::api::{AppSpec, SysSpec};
    use bitempo_engine::{build_engine, SystemKind};

    fn tiny_inputs() -> (TpchData, crate::History) {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        let history = crate::generate_history(&data, &HistoryConfig::tiny());
        (data, history)
    }

    #[test]
    fn initial_load_is_one_version() {
        let (data, _) = tiny_inputs();
        let mut engine = build_engine(SystemKind::A);
        let ids = load_initial(engine.as_mut(), &data).unwrap();
        assert_eq!(engine.now(), SysTime(1));
        let orders = ids[6];
        let out = engine
            .scan(orders, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap();
        assert_eq!(out.rows.len(), 1_500);
        // Every tuple was stamped with the same commit time.
        let arity = out.rows[0].arity();
        for row in &out.rows {
            assert_eq!(row.get(arity - 2), &Value::SysTime(SysTime(1)));
        }
    }

    #[test]
    fn replay_matches_generator_state_on_all_engines() {
        let (data, history) = tiny_inputs();
        for kind in SystemKind::ALL {
            let mut engine = build_engine(kind);
            let ids = load_initial(engine.as_mut(), &data).unwrap();
            let report = replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
            assert_eq!(
                report.version,
                history.db.now(),
                "{kind}: commit counts must line up"
            );
            engine.checkpoint();
            for (idx, &id) in ids.iter().enumerate() {
                let mut got = engine
                    .scan(id, &SysSpec::All, &AppSpec::All, &[])
                    .unwrap()
                    .rows;
                let mut want = history.db.scan(idx, &SysSpec::All, &AppSpec::All);
                got.sort();
                want.sort();
                assert_eq!(
                    got.len(),
                    want.len(),
                    "{kind}, table {}: version counts",
                    history.db.def(idx).name
                );
                assert_eq!(got, want, "{kind}, table {}", history.db.def(idx).name);
            }
        }
    }

    #[test]
    fn bulk_load_equals_replay_on_system_d() {
        let (data, history) = tiny_inputs();
        let mut replayed = build_engine(SystemKind::D);
        let ids = load_initial(replayed.as_mut(), &data).unwrap();
        replay(replayed.as_mut(), &ids, &history.archive, 1).unwrap();

        let mut bulk = build_engine(SystemKind::D);
        let bulk_ids = bulk_load(bulk.as_mut(), &history.db).unwrap();

        for (&a, &b) in ids.iter().zip(&bulk_ids) {
            let mut ra = replayed
                .scan(a, &SysSpec::All, &AppSpec::All, &[])
                .unwrap()
                .rows;
            let mut rb = bulk
                .scan(b, &SysSpec::All, &AppSpec::All, &[])
                .unwrap()
                .rows;
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn bulk_load_fails_without_manual_time() {
        let (_, history) = tiny_inputs();
        let mut engine = build_engine(SystemKind::A);
        assert!(bulk_load(engine.as_mut(), &history.db).is_err());
    }

    #[test]
    fn batched_replay_reaches_same_final_state() {
        let (data, history) = tiny_inputs();
        let mut one = build_engine(SystemKind::A);
        let ids1 = load_initial(one.as_mut(), &data).unwrap();
        replay(one.as_mut(), &ids1, &history.archive, 1).unwrap();

        let mut batched = build_engine(SystemKind::A);
        let ids2 = load_initial(batched.as_mut(), &data).unwrap();
        let report = replay(batched.as_mut(), &ids2, &history.archive, 16).unwrap();
        assert!(report.version < one.now(), "fewer commits when batching");

        // Current state is identical even though version timestamps differ.
        for (&a, &b) in ids1.iter().zip(&ids2) {
            let mut ra = one
                .scan(a, &SysSpec::Current, &AppSpec::All, &[])
                .unwrap()
                .rows;
            let mut rb = batched
                .scan(b, &SysSpec::Current, &AppSpec::All, &[])
                .unwrap()
                .rows;
            let arity = ra.first().map_or(0, |r| r.arity());
            // Strip the system-time columns (they legitimately differ).
            let strip = |rows: &mut Vec<bitempo_core::Row>| {
                if arity >= 2 {
                    for r in rows.iter_mut() {
                        *r = r.project(&(0..r.arity().saturating_sub(2)).collect::<Vec<_>>());
                    }
                }
            };
            strip(&mut ra);
            strip(&mut rb);
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn load_report_percentiles() {
        let report = LoadReport {
            timings: (1..=100)
                .map(|i| (ScenarioKind::DeliverOrder, i * 100))
                .collect(),
            total_nanos: 0,
            version: SysTime(0),
            failed: Vec::new(),
            ops: ReplayReport::default(),
        };
        assert_eq!(report.median_nanos(None), Some(5_100));
        assert_eq!(report.p97_nanos(None), Some(9_700));
        assert_eq!(report.median_nanos(Some(ScenarioKind::CancelOrder)), None);
    }

    #[test]
    fn resilient_replay_skips_failed_batches() {
        let (data, history) = tiny_inputs();
        // Poison a middle transaction with an update to a nonexistent key.
        let mut archive = history.archive.clone();
        let mid = archive.transactions.len() / 2;
        archive.transactions[mid].ops.insert(
            0,
            Op::OverwriteApp {
                table: 6,
                key: bitempo_core::Key::int(i64::MAX),
                period: bitempo_core::Period::new(
                    bitempo_core::AppDate(0),
                    bitempo_core::AppDate::MAX,
                ),
            },
        );

        // Strict replay aborts on the poisoned batch.
        let mut engine = build_engine(SystemKind::A);
        let ids = load_initial(engine.as_mut(), &data).unwrap();
        assert!(replay(engine.as_mut(), &ids, &archive, 1).is_err());

        // A resilient policy records the failure and finishes the replay.
        let mut engine = build_engine(SystemKind::A);
        let ids = load_initial(engine.as_mut(), &data).unwrap();
        let report = replay_resilient(
            engine.as_mut(),
            &ids,
            &archive,
            1,
            ReplayPolicy::resilient(4),
        )
        .unwrap();
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, mid);
        assert!(matches!(report.failed[0].1, Error::KeyNotFound(_)));
        assert_eq!(report.timings.len(), archive.transactions.len());
        // Op-level accounting: nothing goes missing silently. The poisoned
        // op plus the rest of its batch are the skipped count, and
        // applied + skipped covers every op in the archive.
        let total_ops: u64 = archive
            .transactions
            .iter()
            .map(|t| t.ops.len() as u64)
            .sum();
        assert!(report.ops.skipped > 0);
        assert_eq!(report.ops.applied + report.ops.skipped, total_ops);
        assert_eq!(report.ops.retried, 0, "KeyNotFound is not retryable");

        // A zero-budget policy behaves exactly like strict replay.
        let mut engine = build_engine(SystemKind::A);
        let ids = load_initial(engine.as_mut(), &data).unwrap();
        assert!(
            replay_resilient(engine.as_mut(), &ids, &archive, 1, ReplayPolicy::strict()).is_err()
        );
    }

    /// When the transient fault fires relative to the insert's effect.
    #[derive(Clone, Copy, PartialEq)]
    enum FaultPhase {
        /// The insert fully applies, then the error surfaces (e.g. a
        /// contained panic in post-apply bookkeeping). The regression
        /// target: a blind retry here double-applies.
        AfterApply,
        /// The error surfaces before anything is mutated; a retry is the
        /// correct and only recovery.
        BeforeApply,
    }

    /// Delegating wrapper that injects one transient failure on the n-th
    /// insert, either before or after the inner engine applied it.
    struct FlakyEngine {
        inner: Box<dyn BitemporalEngine>,
        phase: FaultPhase,
        /// Fire on this (1-based) insert call; 0 = spent.
        fuse: usize,
        calls: usize,
    }

    impl BitemporalEngine for FlakyEngine {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn architecture(&self) -> &'static str {
            self.inner.architecture()
        }
        fn create_table(&mut self, def: bitempo_core::TableDef) -> Result<TableId> {
            self.inner.create_table(def)
        }
        fn resolve(&self, name: &str) -> Result<TableId> {
            self.inner.resolve(name)
        }
        fn table_names(&self) -> Vec<String> {
            self.inner.table_names()
        }
        fn table_def(&self, table: TableId) -> &bitempo_core::TableDef {
            self.inner.table_def(table)
        }
        fn apply_tuning(&mut self, tuning: &bitempo_engine::TuningConfig) -> Result<()> {
            self.inner.apply_tuning(tuning)
        }
        fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
            self.calls += 1;
            if self.calls == self.fuse {
                self.fuse = 0;
                if self.phase == FaultPhase::AfterApply {
                    self.inner.insert(table, row, app)?;
                }
                return Err(Error::Transient("fault after partial apply".into()));
            }
            self.inner.insert(table, row, app)
        }
        fn update(
            &mut self,
            table: TableId,
            key: &Key,
            updates: &[(usize, Value)],
            portion: Option<AppPeriod>,
        ) -> Result<usize> {
            self.inner.update(table, key, updates, portion)
        }
        fn delete(
            &mut self,
            table: TableId,
            key: &Key,
            portion: Option<AppPeriod>,
        ) -> Result<usize> {
            self.inner.delete(table, key, portion)
        }
        fn overwrite_app_period(
            &mut self,
            table: TableId,
            key: &Key,
            period: AppPeriod,
        ) -> Result<usize> {
            self.inner.overwrite_app_period(table, key, period)
        }
        fn commit(&mut self) -> SysTime {
            self.inner.commit()
        }
        fn now(&self) -> SysTime {
            self.inner.now()
        }
        fn scan(
            &self,
            table: TableId,
            sys: &SysSpec,
            app: &AppSpec,
            preds: &[bitempo_engine::api::ColRange],
        ) -> Result<bitempo_engine::api::ScanOutput> {
            self.inner.scan(table, sys, app, preds)
        }
        fn lookup_key(
            &self,
            table: TableId,
            key: &Key,
            sys: &SysSpec,
            app: &AppSpec,
        ) -> Result<bitempo_engine::api::ScanOutput> {
            self.inner.lookup_key(table, key, sys, app)
        }
        fn stats(&self, table: TableId) -> bitempo_engine::api::TableStats {
            self.inner.stats(table)
        }
        fn checkpoint(&mut self) {
            self.inner.checkpoint();
        }
        fn snapshot_versions(
            &self,
            table: TableId,
        ) -> Result<Vec<bitempo_engine::version::Version>> {
            self.inner.snapshot_versions(table)
        }
        fn restore(
            &mut self,
            table: TableId,
            versions: Vec<bitempo_engine::version::Version>,
            now: SysTime,
        ) -> Result<()> {
            self.inner.restore(table, versions, now)
        }
    }

    /// The satellite regression: a transient fault that surfaces *after*
    /// the insert already applied must not be re-driven into the engine —
    /// the retried replay has to converge on the clean replay's exact
    /// state, with the op counted as retried, not duplicated or skipped.
    #[test]
    fn retry_after_partial_apply_does_not_double_apply() {
        let (data, history) = tiny_inputs();
        let mut clean = build_engine(SystemKind::A);
        let clean_ids = load_initial(clean.as_mut(), &data).unwrap();
        replay(clean.as_mut(), &clean_ids, &history.archive, 1).unwrap();

        for phase in [FaultPhase::AfterApply, FaultPhase::BeforeApply] {
            let mut inner = build_engine(SystemKind::A);
            let ids = load_initial(inner.as_mut(), &data).unwrap();
            let mut flaky = FlakyEngine {
                inner,
                phase,
                // First insert *during the replay* (the initial load ran
                // against the unwrapped engine).
                fuse: 1,
                calls: 0,
            };
            let report = replay_resilient(
                &mut flaky,
                &ids,
                &history.archive,
                1,
                ReplayPolicy::resilient(0),
            )
            .unwrap();
            assert_eq!(report.ops.retried, 1, "the fault was absorbed");
            assert_eq!(report.ops.skipped, 0);
            assert!(report.failed.is_empty());

            for (&a, &b) in clean_ids.iter().zip(&ids) {
                let mut want = clean
                    .scan(a, &SysSpec::All, &AppSpec::All, &[])
                    .unwrap()
                    .rows;
                let mut got = flaky
                    .inner
                    .scan(b, &SysSpec::All, &AppSpec::All, &[])
                    .unwrap()
                    .rows;
                want.sort();
                got.sort();
                assert_eq!(
                    got, want,
                    "replay with an injected fault must converge on the clean state"
                );
            }
        }
    }

    /// The probe must attribute effects to the *open* transaction: an
    /// identical version committed by an earlier transaction must not
    /// satisfy it. Engines insert duplicates unconditionally, so a false
    /// positive here would skip the retry and silently drop the insert
    /// when the fault fired *before* anything applied.
    #[test]
    fn retry_probe_ignores_identical_committed_versions() {
        use crate::ops::Transaction;
        use bitempo_engine::testutil::{bitemp_table, simple_row};

        // Two transactions insert byte-identical rows (same key, values,
        // application period); the transient fault fires on the second.
        let duplicate = || Transaction {
            scenarios: Vec::new(),
            ops: vec![Op::Insert {
                table: 0,
                row: simple_row(1, 10),
                app: None,
            }],
        };
        let archive = Archive {
            dbgen_seed: 0,
            hist_seed: 0,
            transactions: vec![duplicate(), duplicate()],
        };

        for phase in [FaultPhase::BeforeApply, FaultPhase::AfterApply] {
            let mut inner = build_engine(SystemKind::A);
            let t = inner.create_table(bitemp_table("t")).unwrap();
            let ids = vec![t];
            let mut flaky = FlakyEngine {
                inner,
                phase,
                fuse: 2, // the second transaction's insert
                calls: 0,
            };
            let report =
                replay_resilient(&mut flaky, &ids, &archive, 1, ReplayPolicy::resilient(0))
                    .unwrap();
            assert_eq!(report.ops.retried, 1);
            assert_eq!(report.ops.skipped, 0);
            let rows = flaky
                .inner
                .scan(t, &SysSpec::All, &AppSpec::All, &[])
                .unwrap()
                .rows;
            assert_eq!(
                rows.len(),
                2,
                "both inserts must land exactly once: the first transaction's \
                 identical committed version is not the second's effect"
            );
        }
    }

    #[test]
    fn retry_recovers_from_transient_errors_only() {
        let (_, history) = tiny_inputs();
        let mut buf = Vec::new();
        history.archive.write_to(&mut buf).unwrap();

        let mut attempts = 0;
        let archive = read_archive_with_retry(
            || {
                attempts += 1;
                if attempts == 1 {
                    Err(Error::Transient("flaky mount".into()))
                } else {
                    Archive::read_from_slice(&buf)
                }
            },
            3,
        )
        .unwrap();
        assert_eq!(archive, history.archive);
        assert_eq!(attempts, 2);

        // Corruption is never retried.
        let mut calls = 0;
        let err = read_archive_with_retry(
            || {
                calls += 1;
                Err(Error::Archive("corrupt".into()))
            },
            5,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Archive(_)));
        assert_eq!(calls, 1);

        // A stream that stays transient exhausts its attempts.
        let mut calls = 0;
        let err = read_archive_with_retry(
            || {
                calls += 1;
                Err(Error::Transient("still flaky".into()))
            },
            3,
        )
        .unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(calls, 3);
    }
}
