//! The generator archive: a system-independent, versioned binary encoding
//! of the transaction stream (paper §4: "the result is serialized in a
//! generator archive... the same input can be applied for the population of
//! all database systems").
//!
//! The format is a flat length-prefixed encoding (little-endian), hand
//! rolled so the wire layout is explicit and auditable; see DESIGN.md §2.

use crate::ops::{Op, ScenarioKind, Transaction};
use bitempo_core::{AppDate, AppPeriod, Error, Key, Period, Result, Row, Value};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"BIHA";
const VERSION: u32 = 1;

/// A serialized history: seeds plus the ordered transaction list.
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// Seed of the dbgen population this history was generated against.
    pub dbgen_seed: u64,
    /// Seed of the scenario stream.
    pub hist_seed: u64,
    /// Transactions in commit order.
    pub transactions: Vec<Transaction>,
}

impl Archive {
    /// Groups scenarios into batches of `batch_size` transactions each —
    /// the loader knob behind Fig 13 ("combine a series of scenarios into
    /// batches of variable sizes").
    pub fn batched(&self, batch_size: usize) -> Vec<Transaction> {
        let batch_size = batch_size.max(1);
        self.transactions
            .chunks(batch_size)
            .map(|chunk| Transaction {
                scenarios: chunk.iter().flat_map(|t| t.scenarios.clone()).collect(),
                ops: chunk.iter().flat_map(|t| t.ops.clone()).collect(),
            })
            .collect()
    }

    /// Serializes into `w`.
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.dbgen_seed.to_le_bytes())?;
        w.write_all(&self.hist_seed.to_le_bytes())?;
        w.write_all(&(self.transactions.len() as u64).to_le_bytes())?;
        for txn in &self.transactions {
            w.write_all(&(txn.scenarios.len() as u16).to_le_bytes())?;
            for s in &txn.scenarios {
                w.write_all(&[s.tag()])?;
            }
            w.write_all(&(txn.ops.len() as u32).to_le_bytes())?;
            for op in &txn.ops {
                write_op(w, op)?;
            }
        }
        Ok(())
    }

    /// Deserializes from `r`.
    pub fn read_from(r: &mut impl Read) -> Result<Archive> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(Error::Archive("bad magic".into()));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(Error::Archive(format!("unsupported version {version}")));
        }
        let dbgen_seed = read_u64(r)?;
        let hist_seed = read_u64(r)?;
        let n = read_u64(r)? as usize;
        let mut transactions = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            let n_scen = read_u16(r)? as usize;
            let mut scenarios = Vec::with_capacity(n_scen);
            for _ in 0..n_scen {
                let tag = read_u8(r)?;
                scenarios.push(
                    ScenarioKind::from_tag(tag)
                        .ok_or_else(|| Error::Archive(format!("bad scenario tag {tag}")))?,
                );
            }
            let n_ops = read_u32(r)? as usize;
            let mut ops = Vec::with_capacity(n_ops.min(1 << 20));
            for _ in 0..n_ops {
                ops.push(read_op(r)?);
            }
            transactions.push(Transaction { scenarios, ops });
        }
        Ok(Archive {
            dbgen_seed,
            hist_seed,
            transactions,
        })
    }

    /// Writes the archive to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()?;
        Ok(())
    }

    /// Reads an archive from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Archive> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        Archive::read_from(&mut r)
    }
}

fn write_op(w: &mut impl Write, op: &Op) -> Result<()> {
    match op {
        Op::Insert { table, row, app } => {
            w.write_all(&[0, *table])?;
            write_row(w, row)?;
            write_opt_period(w, app)?;
        }
        Op::Update {
            table,
            key,
            updates,
            portion,
        } => {
            w.write_all(&[1, *table])?;
            write_key(w, key)?;
            w.write_all(&(updates.len() as u16).to_le_bytes())?;
            for (c, v) in updates {
                w.write_all(&c.to_le_bytes())?;
                write_value(w, v)?;
            }
            write_opt_period(w, portion)?;
        }
        Op::Delete {
            table,
            key,
            portion,
        } => {
            w.write_all(&[2, *table])?;
            write_key(w, key)?;
            write_opt_period(w, portion)?;
        }
        Op::OverwriteApp { table, key, period } => {
            w.write_all(&[3, *table])?;
            write_key(w, key)?;
            write_period(w, period)?;
        }
    }
    Ok(())
}

fn read_op(r: &mut impl Read) -> Result<Op> {
    let tag = read_u8(r)?;
    let table = read_u8(r)?;
    match tag {
        0 => Ok(Op::Insert {
            table,
            row: read_row(r)?,
            app: read_opt_period(r)?,
        }),
        1 => {
            let key = read_key(r)?;
            let n = read_u16(r)? as usize;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let c = read_u16(r)?;
                updates.push((c, read_value(r)?));
            }
            Ok(Op::Update {
                table,
                key,
                updates,
                portion: read_opt_period(r)?,
            })
        }
        2 => Ok(Op::Delete {
            table,
            key: read_key(r)?,
            portion: read_opt_period(r)?,
        }),
        3 => Ok(Op::OverwriteApp {
            table,
            key: read_key(r)?,
            period: read_period(r)?,
        }),
        other => Err(Error::Archive(format!("bad op tag {other}"))),
    }
}

fn write_value(w: &mut impl Write, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.write_all(&[0])?,
        Value::Int(i) => {
            w.write_all(&[1])?;
            w.write_all(&i.to_le_bytes())?;
        }
        Value::Double(d) => {
            w.write_all(&[2])?;
            w.write_all(&d.to_bits().to_le_bytes())?;
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            w.write_all(&(s.len() as u32).to_le_bytes())?;
            w.write_all(s.as_bytes())?;
        }
        Value::Date(d) => {
            w.write_all(&[4])?;
            w.write_all(&d.0.to_le_bytes())?;
        }
        Value::SysTime(t) => {
            w.write_all(&[5])?;
            w.write_all(&t.0.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_value(r: &mut impl Read) -> Result<Value> {
    Ok(match read_u8(r)? {
        0 => Value::Null,
        1 => Value::Int(read_i64(r)?),
        2 => Value::Double(f64::from_bits(read_u64(r)?)),
        3 => {
            let len = read_u32(r)? as usize;
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            Value::Str(
                String::from_utf8(buf)
                    .map_err(|e| Error::Archive(format!("bad utf8: {e}")))?
                    .into(),
            )
        }
        4 => Value::Date(AppDate(read_i64(r)?)),
        5 => Value::SysTime(bitempo_core::SysTime(read_u64(r)?)),
        other => return Err(Error::Archive(format!("bad value tag {other}"))),
    })
}

fn write_row(w: &mut impl Write, row: &Row) -> Result<()> {
    w.write_all(&(row.arity() as u16).to_le_bytes())?;
    for v in row.values() {
        write_value(w, v)?;
    }
    Ok(())
}

fn read_row(r: &mut impl Read) -> Result<Row> {
    let n = read_u16(r)? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(r)?);
    }
    Ok(Row::new(values))
}

fn write_key(w: &mut impl Write, key: &Key) -> Result<()> {
    let values = key.to_values();
    w.write_all(&(values.len() as u16).to_le_bytes())?;
    for v in &values {
        write_value(w, v)?;
    }
    Ok(())
}

fn read_key(r: &mut impl Read) -> Result<Key> {
    let n = read_u16(r)? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(r)?);
    }
    Ok(match values.as_slice() {
        [Value::Int(a)] => Key::Int(*a),
        [Value::Int(a), Value::Int(b)] => Key::Int2(*a, *b),
        _ => Key::General(values),
    })
}

fn write_period(w: &mut impl Write, p: &AppPeriod) -> Result<()> {
    w.write_all(&p.start.0.to_le_bytes())?;
    w.write_all(&p.end.0.to_le_bytes())?;
    Ok(())
}

fn read_period(r: &mut impl Read) -> Result<AppPeriod> {
    let start = AppDate(read_i64(r)?);
    let end = AppDate(read_i64(r)?);
    Ok(Period::new(start, end))
}

fn write_opt_period(w: &mut impl Write, p: &Option<AppPeriod>) -> Result<()> {
    match p {
        None => w.write_all(&[0])?,
        Some(p) => {
            w.write_all(&[1])?;
            write_period(w, p)?;
        }
    }
    Ok(())
}

fn read_opt_period(r: &mut impl Read) -> Result<Option<AppPeriod>> {
    Ok(match read_u8(r)? {
        0 => None,
        1 => Some(read_period(r)?),
        other => return Err(Error::Archive(format!("bad option tag {other}"))),
    })
}

fn read_u8(r: &mut impl Read) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
fn read_u16(r: &mut impl Read) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_i64(r: &mut impl Read) -> Result<i64> {
    Ok(read_u64(r)? as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        Archive {
            dbgen_seed: 11,
            hist_seed: 22,
            transactions: vec![
                Transaction {
                    scenarios: vec![ScenarioKind::NewOrderNewCustomer],
                    ops: vec![
                        Op::Insert {
                            table: 3,
                            row: Row::new(vec![
                                Value::Int(1),
                                Value::str("x"),
                                Value::Double(1.5),
                                Value::Date(AppDate(100)),
                                Value::Null,
                            ]),
                            app: Some(Period::new(AppDate(1), AppDate::MAX)),
                        },
                        Op::Update {
                            table: 6,
                            key: Key::int(5),
                            updates: vec![(2, Value::str("F"))],
                            portion: None,
                        },
                    ],
                },
                Transaction {
                    scenarios: vec![ScenarioKind::CancelOrder],
                    ops: vec![
                        Op::Delete {
                            table: 7,
                            key: Key::int2(5, 1),
                            portion: Some(Period::new(AppDate(0), AppDate(10))),
                        },
                        Op::OverwriteApp {
                            table: 4,
                            key: Key::int(9),
                            period: Period::new(AppDate(3), AppDate::MAX),
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_trip_in_memory() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let b = Archive::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_via_file() {
        let a = sample_archive();
        let dir = std::env::temp_dir().join("bitempo_archive_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.biha");
        a.save(&path).unwrap();
        let b = Archive::load(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let mut bad = b"NOPE".to_vec();
        bad.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            Archive::read_from(&mut bad.as_slice()),
            Err(Error::Archive(_))
        ));
        // Truncated stream.
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Archive::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn batching_merges_transactions() {
        let a = sample_archive();
        let batched = a.batched(2);
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0].scenarios.len(), 2);
        assert_eq!(batched[0].ops.len(), 4);
        // Batch size 1 is the identity.
        assert_eq!(a.batched(1), a.transactions);
        // Zero is clamped to 1.
        assert_eq!(a.batched(0), a.transactions);
    }

    #[test]
    fn generated_history_round_trips() {
        let data = bitempo_dbgen::generate(&bitempo_dbgen::ScaleConfig::tiny());
        let h = crate::generate_history(&data, &crate::HistoryConfig::tiny());
        let mut buf = Vec::new();
        h.archive.write_to(&mut buf).unwrap();
        let b = Archive::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(h.archive, b);
    }
}
