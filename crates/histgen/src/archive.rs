//! The generator archive: a system-independent, versioned binary encoding
//! of the transaction stream (paper §4: "the result is serialized in a
//! generator archive... the same input can be applied for the population of
//! all database systems").
//!
//! The format is a flat length-prefixed encoding (little-endian), hand
//! rolled so the wire layout is explicit and auditable; see DESIGN.md §2.
//!
//! Format **v2** hardens the v1 layout against corruption:
//!
//! * every transaction is encoded as `len: u32 | crc32: u32 | body`, and the
//!   CRC is verified *before* the body is parsed;
//! * the stream ends with a footer `"BIHF" | count: u64 | stream_crc: u32`
//!   (CRC over all transaction bodies), so truncation at a transaction
//!   boundary — invisible to per-record checksums — is detected too;
//! * every length prefix is validated against the remaining input size
//!   before allocation, so a flipped length byte yields
//!   [`Error::Archive`] instead of an out-of-memory abort.
//!
//! v1 archives remain readable ([`Archive::read_from`] dispatches on the
//! header version); [`Archive::write_v1_to`] keeps the legacy writer
//! available for compatibility tests.

use crate::ops::{Op, ScenarioKind, Transaction};
use bitempo_core::crc::{crc32, Crc32};
use bitempo_core::{AppDate, AppPeriod, Error, Key, Period, Result, Row, Value};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"BIHA";
const FOOTER_MAGIC: [u8; 4] = *b"BIHF";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;

/// Upper bound on one encoded transaction body. Far above anything the
/// generator emits; a length prefix beyond it is corruption, not data.
const MAX_TXN_BYTES: u32 = 64 << 20;

/// Allocation cap for length-prefixed buffers when the total input size is
/// unknown: allocate at most this much up front and grow by reading.
const PREALLOC_CAP: usize = 1 << 20;

/// A serialized history: seeds plus the ordered transaction list.
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// Seed of the dbgen population this history was generated against.
    pub dbgen_seed: u64,
    /// Seed of the scenario stream.
    pub hist_seed: u64,
    /// Transactions in commit order.
    pub transactions: Vec<Transaction>,
}

impl Archive {
    /// Groups scenarios into batches of `batch_size` transactions each —
    /// the loader knob behind Fig 13 ("combine a series of scenarios into
    /// batches of variable sizes"). Lazy: each batch is materialized only
    /// when the iterator reaches it, so large-`m` replays never hold a
    /// second copy of the whole transaction stream.
    pub fn batched(&self, batch_size: usize) -> impl Iterator<Item = Transaction> + '_ {
        let batch_size = batch_size.max(1);
        self.transactions
            .chunks(batch_size)
            .map(|chunk| Transaction {
                scenarios: chunk.iter().flat_map(|t| t.scenarios.clone()).collect(),
                ops: chunk.iter().flat_map(|t| t.ops.clone()).collect(),
            })
    }

    /// Serializes into `w` using the current (v2, checksummed) format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.dbgen_seed.to_le_bytes())?;
        w.write_all(&self.hist_seed.to_le_bytes())?;
        w.write_all(&(self.transactions.len() as u64).to_le_bytes())?;
        let mut stream = Crc32::new();
        let mut body = Vec::new();
        for txn in &self.transactions {
            body.clear();
            write_txn_body(&mut body, txn)?;
            let len = u32::try_from(body.len())
                .ok()
                .filter(|&l| l <= MAX_TXN_BYTES)
                .ok_or_else(|| {
                    Error::Archive(format!("transaction body too large: {} bytes", body.len()))
                })?;
            w.write_all(&len.to_le_bytes())?;
            w.write_all(&crc32(&body).to_le_bytes())?;
            w.write_all(&body)?;
            stream.update(&body);
        }
        w.write_all(&FOOTER_MAGIC)?;
        w.write_all(&(self.transactions.len() as u64).to_le_bytes())?;
        w.write_all(&stream.finish().to_le_bytes())?;
        Ok(())
    }

    /// Serializes into `w` using the legacy v1 format (no checksums, no
    /// footer). Kept for the v1→v2 compatibility tests.
    pub fn write_v1_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION_V1.to_le_bytes())?;
        w.write_all(&self.dbgen_seed.to_le_bytes())?;
        w.write_all(&self.hist_seed.to_le_bytes())?;
        w.write_all(&(self.transactions.len() as u64).to_le_bytes())?;
        for txn in &self.transactions {
            write_txn_body(w, txn)?;
        }
        Ok(())
    }

    /// Deserializes from `r` (v1 or v2), without knowing the input size.
    /// Length prefixes are still bounded (allocation is capped and grows by
    /// reading), but exact length-vs-remaining validation needs a sized
    /// source — prefer [`Archive::load`] or [`Archive::read_from_slice`].
    pub fn read_from(r: &mut impl Read) -> Result<Archive> {
        Archive::read_limited(r, None)
    }

    /// Deserializes from an in-memory buffer, validating every length
    /// prefix against the exact number of remaining bytes.
    pub fn read_from_slice(bytes: &[u8]) -> Result<Archive> {
        Archive::read_limited(&mut &bytes[..], Some(bytes.len() as u64))
    }

    fn read_limited(r: &mut impl Read, limit: Option<u64>) -> Result<Archive> {
        let mut src = Src {
            r,
            remaining: limit,
        };
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic, "header magic")?;
        if magic != MAGIC {
            return Err(Error::Archive("bad magic".into()));
        }
        let version = src.read_u32("header version")?;
        let dbgen_seed = src.read_u64("dbgen seed")?;
        let hist_seed = src.read_u64("hist seed")?;
        let n = src.read_u64("transaction count")?;
        let transactions = match version {
            VERSION_V1 => read_txns_v1(&mut src, n)?,
            VERSION => read_txns_v2(&mut src, n)?,
            other => return Err(Error::Archive(format!("unsupported version {other}"))),
        };
        if let Some(rem) = src.remaining {
            if rem != 0 {
                return Err(Error::Archive(format!(
                    "{rem} trailing bytes after archive"
                )));
            }
        }
        Ok(Archive {
            dbgen_seed,
            hist_seed,
            transactions,
        })
    }

    /// Writes the archive to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()?;
        Ok(())
    }

    /// Reads an archive from a file, bounding every length prefix by the
    /// file size.
    pub fn load(path: impl AsRef<Path>) -> Result<Archive> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let mut r = std::io::BufReader::new(file);
        Archive::read_limited(&mut r, Some(len))
    }
}

/// Encodes one transaction as a standalone archive-v2 record body — the
/// payload format the durability WAL appends per commit, so a WAL tail and
/// an archive speak the same wire language.
pub fn encode_txn(txn: &Transaction) -> Result<Vec<u8>> {
    let mut body = Vec::new();
    write_txn_body(&mut body, txn)?;
    if body.len() as u64 > u64::from(MAX_TXN_BYTES) {
        return Err(Error::Archive(format!(
            "transaction body too large: {} bytes",
            body.len()
        )));
    }
    Ok(body)
}

/// Decodes one standalone transaction body produced by [`encode_txn`],
/// rejecting trailing bytes. Checksums are the *framing* layer's job (the
/// archive record or WAL frame around the body).
pub fn decode_txn(bytes: &[u8]) -> Result<Transaction> {
    let mut slice = bytes;
    let mut src = Src {
        r: &mut slice,
        remaining: Some(bytes.len() as u64),
    };
    let txn = read_txn_body(&mut src)?;
    if src.remaining != Some(0) {
        return Err(Error::Archive(
            "trailing bytes after transaction body".into(),
        ));
    }
    Ok(txn)
}

/// Encodes one transaction body (shared between v1's inline stream and
/// v2's checksummed records).
fn write_txn_body(w: &mut impl Write, txn: &Transaction) -> Result<()> {
    w.write_all(&(txn.scenarios.len() as u16).to_le_bytes())?;
    for s in &txn.scenarios {
        w.write_all(&[s.tag()])?;
    }
    w.write_all(&(txn.ops.len() as u32).to_le_bytes())?;
    for op in &txn.ops {
        write_op(w, op)?;
    }
    Ok(())
}

fn read_txns_v1<R: Read>(src: &mut Src<'_, R>, n: u64) -> Result<Vec<Transaction>> {
    // Each transaction needs at least 6 bytes (scenario count + op count).
    src.claim(n.saturating_mul(6), "transaction count")?;
    let mut transactions = Vec::with_capacity(cap_count(n, src.remaining, 6));
    for _ in 0..n {
        transactions.push(read_txn_body(src)?);
    }
    Ok(transactions)
}

fn read_txns_v2<R: Read>(src: &mut Src<'_, R>, n: u64) -> Result<Vec<Transaction>> {
    // Each record needs at least 8 bytes (length + checksum).
    src.claim(n.saturating_mul(8), "transaction count")?;
    let mut transactions = Vec::with_capacity(cap_count(n, src.remaining, 8));
    let mut stream = Crc32::new();
    for i in 0..n {
        let len = src.read_u32("transaction length")?;
        if len > MAX_TXN_BYTES {
            return Err(Error::Archive(format!(
                "transaction {i} length {len} exceeds {MAX_TXN_BYTES}-byte bound"
            )));
        }
        let expect = src.read_u32("transaction checksum")?;
        let body = src.read_vec(len as usize, "transaction body")?;
        if crc32(&body) != expect {
            return Err(Error::Archive(format!(
                "checksum mismatch in transaction {i}"
            )));
        }
        stream.update(&body);
        let mut slice = &body[..];
        let mut bsrc = Src {
            r: &mut slice,
            remaining: Some(u64::from(len)),
        };
        let txn = read_txn_body(&mut bsrc)?;
        if bsrc.remaining != Some(0) {
            return Err(Error::Archive(format!("trailing bytes in transaction {i}")));
        }
        transactions.push(txn);
    }
    let mut footer = [0u8; 4];
    src.read_exact(&mut footer, "footer magic")?;
    if footer != FOOTER_MAGIC {
        return Err(Error::Archive("missing or corrupt footer".into()));
    }
    let count = src.read_u64("footer count")?;
    if count != n {
        return Err(Error::Archive(format!(
            "footer count {count} disagrees with header count {n}"
        )));
    }
    let crc = src.read_u32("footer checksum")?;
    if crc != stream.finish() {
        return Err(Error::Archive("stream checksum mismatch in footer".into()));
    }
    // A zero-transaction stream passes every check above vacuously (the CRC
    // of nothing is a constant), so "count 0 + well-formed footer" is
    // indistinguishable from an archive whose records were all lost before
    // the header count was overwritten. The generator never emits an empty
    // history; treat the combination as corruption, not as completeness.
    if n == 0 {
        return Err(Error::Archive(
            "empty transaction stream with a well-formed footer".into(),
        ));
    }
    Ok(transactions)
}

fn read_txn_body<R: Read>(src: &mut Src<'_, R>) -> Result<Transaction> {
    let n_scen = u64::from(src.read_u16("scenario count")?);
    src.claim(n_scen, "scenario count")?;
    let mut scenarios = Vec::with_capacity(n_scen as usize);
    for _ in 0..n_scen {
        let tag = src.read_u8("scenario tag")?;
        scenarios.push(
            ScenarioKind::from_tag(tag)
                .ok_or_else(|| Error::Archive(format!("bad scenario tag {tag}")))?,
        );
    }
    let n_ops = u64::from(src.read_u32("op count")?);
    // Each op needs at least 2 bytes (tag + table).
    src.claim(n_ops.saturating_mul(2), "op count")?;
    let mut ops = Vec::with_capacity(cap_count(n_ops, src.remaining, 2));
    for _ in 0..n_ops {
        ops.push(read_op(src)?);
    }
    Ok(Transaction { scenarios, ops })
}

/// A safe pre-allocation size for `n` elements of at least `min_bytes`
/// each: bounded by what the remaining input could possibly hold, and by a
/// fixed cap when the input size is unknown.
fn cap_count(n: u64, remaining: Option<u64>, min_bytes: u64) -> usize {
    let bound = match remaining {
        Some(rem) => rem / min_bytes.max(1),
        None => PREALLOC_CAP as u64,
    };
    n.min(bound).min(PREALLOC_CAP as u64) as usize
}

/// A bounded source: tracks the remaining input size (when known) so every
/// length prefix can be validated *before* allocation, and a lying prefix
/// surfaces as [`Error::Archive`] instead of an OOM abort.
struct Src<'a, R: Read> {
    r: &'a mut R,
    remaining: Option<u64>,
}

impl<R: Read> Src<'_, R> {
    /// Fails unless at least `n` more bytes could remain in the input.
    fn claim(&self, n: u64, what: &str) -> Result<()> {
        if let Some(rem) = self.remaining {
            if n > rem {
                return Err(Error::Archive(format!(
                    "{what}: {n} bytes claimed but only {rem} remain"
                )));
            }
        }
        Ok(())
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<()> {
        self.claim(buf.len() as u64, what)?;
        self.r.read_exact(buf)?;
        if let Some(rem) = &mut self.remaining {
            *rem -= buf.len() as u64;
        }
        Ok(())
    }

    /// Reads exactly `len` bytes, pre-allocating at most [`PREALLOC_CAP`]
    /// so an unvalidated length cannot trigger a huge allocation.
    fn read_vec(&mut self, len: usize, what: &str) -> Result<Vec<u8>> {
        self.claim(len as u64, what)?;
        let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
        let mut chunk = [0u8; 8192];
        let mut left = len;
        while left > 0 {
            let n = left.min(chunk.len());
            self.r.read_exact(&mut chunk[..n])?;
            if let Some(rem) = &mut self.remaining {
                *rem -= n as u64;
            }
            out.extend_from_slice(&chunk[..n]);
            left -= n;
        }
        Ok(out)
    }

    fn read_u8(&mut self, what: &str) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b, what)?;
        Ok(b[0])
    }

    fn read_u16(&mut self, what: &str) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b, what)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self, what: &str) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self, what: &str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.read_u64(what)? as i64)
    }
}

fn write_op(w: &mut impl Write, op: &Op) -> Result<()> {
    match op {
        Op::Insert { table, row, app } => {
            w.write_all(&[0, *table])?;
            write_row(w, row)?;
            write_opt_period(w, app)?;
        }
        Op::Update {
            table,
            key,
            updates,
            portion,
        } => {
            w.write_all(&[1, *table])?;
            write_key(w, key)?;
            w.write_all(&(updates.len() as u16).to_le_bytes())?;
            for (c, v) in updates {
                w.write_all(&c.to_le_bytes())?;
                write_value(w, v)?;
            }
            write_opt_period(w, portion)?;
        }
        Op::Delete {
            table,
            key,
            portion,
        } => {
            w.write_all(&[2, *table])?;
            write_key(w, key)?;
            write_opt_period(w, portion)?;
        }
        Op::OverwriteApp { table, key, period } => {
            w.write_all(&[3, *table])?;
            write_key(w, key)?;
            write_period(w, period)?;
        }
    }
    Ok(())
}

fn read_op<R: Read>(src: &mut Src<'_, R>) -> Result<Op> {
    let tag = src.read_u8("op tag")?;
    let table = src.read_u8("op table")?;
    match tag {
        0 => Ok(Op::Insert {
            table,
            row: read_row(src)?,
            app: read_opt_period(src)?,
        }),
        1 => {
            let key = read_key(src)?;
            let n = u64::from(src.read_u16("update count")?);
            // Each update needs at least 3 bytes (column + value tag).
            src.claim(n.saturating_mul(3), "update count")?;
            let mut updates = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let c = src.read_u16("update column")?;
                updates.push((c, read_value(src)?));
            }
            Ok(Op::Update {
                table,
                key,
                updates,
                portion: read_opt_period(src)?,
            })
        }
        2 => Ok(Op::Delete {
            table,
            key: read_key(src)?,
            portion: read_opt_period(src)?,
        }),
        3 => Ok(Op::OverwriteApp {
            table,
            key: read_key(src)?,
            period: read_period(src)?,
        }),
        other => Err(Error::Archive(format!("bad op tag {other}"))),
    }
}

fn write_value(w: &mut impl Write, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.write_all(&[0])?,
        Value::Int(i) => {
            w.write_all(&[1])?;
            w.write_all(&i.to_le_bytes())?;
        }
        Value::Double(d) => {
            w.write_all(&[2])?;
            w.write_all(&d.to_bits().to_le_bytes())?;
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            w.write_all(&(s.len() as u32).to_le_bytes())?;
            w.write_all(s.as_bytes())?;
        }
        Value::Date(d) => {
            w.write_all(&[4])?;
            w.write_all(&d.0.to_le_bytes())?;
        }
        Value::SysTime(t) => {
            w.write_all(&[5])?;
            w.write_all(&t.0.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_value<R: Read>(src: &mut Src<'_, R>) -> Result<Value> {
    Ok(match src.read_u8("value tag")? {
        0 => Value::Null,
        1 => Value::Int(src.read_i64("int value")?),
        2 => Value::Double(f64::from_bits(src.read_u64("double value")?)),
        3 => {
            let len = src.read_u32("string length")? as usize;
            let buf = src.read_vec(len, "string value")?;
            Value::Str(
                String::from_utf8(buf)
                    .map_err(|e| Error::Archive(format!("bad utf8: {e}")))?
                    .into(),
            )
        }
        4 => Value::Date(AppDate(src.read_i64("date value")?)),
        5 => Value::SysTime(bitempo_core::SysTime(src.read_u64("systime value")?)),
        other => return Err(Error::Archive(format!("bad value tag {other}"))),
    })
}

fn write_row(w: &mut impl Write, row: &Row) -> Result<()> {
    w.write_all(&(row.arity() as u16).to_le_bytes())?;
    for v in row.values() {
        write_value(w, v)?;
    }
    Ok(())
}

fn read_row<R: Read>(src: &mut Src<'_, R>) -> Result<Row> {
    let n = u64::from(src.read_u16("row arity")?);
    src.claim(n, "row arity")?;
    let mut values = Vec::with_capacity(n as usize);
    for _ in 0..n {
        values.push(read_value(src)?);
    }
    Ok(Row::new(values))
}

fn write_key(w: &mut impl Write, key: &Key) -> Result<()> {
    let values = key.to_values();
    w.write_all(&(values.len() as u16).to_le_bytes())?;
    for v in &values {
        write_value(w, v)?;
    }
    Ok(())
}

fn read_key<R: Read>(src: &mut Src<'_, R>) -> Result<Key> {
    let n = u64::from(src.read_u16("key arity")?);
    src.claim(n, "key arity")?;
    let mut values = Vec::with_capacity(n as usize);
    for _ in 0..n {
        values.push(read_value(src)?);
    }
    Ok(match values.as_slice() {
        [Value::Int(a)] => Key::Int(*a),
        [Value::Int(a), Value::Int(b)] => Key::Int2(*a, *b),
        _ => Key::General(values),
    })
}

fn write_period(w: &mut impl Write, p: &AppPeriod) -> Result<()> {
    w.write_all(&p.start.0.to_le_bytes())?;
    w.write_all(&p.end.0.to_le_bytes())?;
    Ok(())
}

fn read_period<R: Read>(src: &mut Src<'_, R>) -> Result<AppPeriod> {
    let start = AppDate(src.read_i64("period start")?);
    let end = AppDate(src.read_i64("period end")?);
    if start > end {
        return Err(Error::Archive(format!(
            "inverted period in stream: start {} > end {}",
            start.0, end.0
        )));
    }
    Ok(Period::new(start, end))
}

fn write_opt_period(w: &mut impl Write, p: &Option<AppPeriod>) -> Result<()> {
    match p {
        None => w.write_all(&[0])?,
        Some(p) => {
            w.write_all(&[1])?;
            write_period(w, p)?;
        }
    }
    Ok(())
}

fn read_opt_period<R: Read>(src: &mut Src<'_, R>) -> Result<Option<AppPeriod>> {
    Ok(match src.read_u8("option tag")? {
        0 => None,
        1 => Some(read_period(src)?),
        other => return Err(Error::Archive(format!("bad option tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        Archive {
            dbgen_seed: 11,
            hist_seed: 22,
            transactions: vec![
                Transaction {
                    scenarios: vec![ScenarioKind::NewOrderNewCustomer],
                    ops: vec![
                        Op::Insert {
                            table: 3,
                            row: Row::new(vec![
                                Value::Int(1),
                                Value::str("x"),
                                Value::Double(1.5),
                                Value::Date(AppDate(100)),
                                Value::Null,
                            ]),
                            app: Some(Period::new(AppDate(1), AppDate::MAX)),
                        },
                        Op::Update {
                            table: 6,
                            key: Key::int(5),
                            updates: vec![(2, Value::str("F"))],
                            portion: None,
                        },
                    ],
                },
                Transaction {
                    scenarios: vec![ScenarioKind::CancelOrder],
                    ops: vec![
                        Op::Delete {
                            table: 7,
                            key: Key::int2(5, 1),
                            portion: Some(Period::new(AppDate(0), AppDate(10))),
                        },
                        Op::OverwriteApp {
                            table: 4,
                            key: Key::int(9),
                            period: Period::new(AppDate(3), AppDate::MAX),
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_trip_in_memory() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let b = Archive::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(a, b);
        let c = Archive::read_from_slice(&buf).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn round_trip_via_file() {
        let a = sample_archive();
        let dir = std::env::temp_dir().join("bitempo_archive_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.biha");
        a.save(&path).unwrap();
        let b = Archive::load(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_archives_remain_readable() {
        let a = sample_archive();
        let mut v1 = Vec::new();
        a.write_v1_to(&mut v1).unwrap();
        let mut v2 = Vec::new();
        a.write_to(&mut v2).unwrap();
        assert_ne!(v1, v2, "v2 adds checksums and a footer");
        assert_eq!(Archive::read_from_slice(&v1).unwrap(), a);
        assert_eq!(Archive::read_from(&mut v1.as_slice()).unwrap(), a);
    }

    #[test]
    fn rejects_garbage() {
        let mut bad = b"NOPE".to_vec();
        bad.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            Archive::read_from(&mut bad.as_slice()),
            Err(Error::Archive(_))
        ));
        // Truncated stream.
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Archive::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn detects_flipped_payload_byte() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        // Flip a byte inside the first transaction body (past the 32-byte
        // header and the 8-byte record prefix).
        buf[32 + 8 + 3] ^= 0x10;
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(
            matches!(err, Error::Archive(ref m) if m.contains("checksum")),
            "{err}"
        );
    }

    #[test]
    fn detects_truncation_at_transaction_boundary() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        // Drop the footer entirely: every remaining record is intact, so
        // only the footer check can notice.
        buf.truncate(buf.len() - 16);
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(matches!(err, Error::Archive(_)), "{err}");
    }

    #[test]
    fn lying_length_prefix_is_rejected_not_allocated() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        // Overwrite the first transaction's length with a huge value; the
        // claimed size exceeds the remaining input and must be rejected
        // before any allocation happens.
        buf[32..36].copy_from_slice(&(MAX_TXN_BYTES - 1).to_le_bytes());
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(matches!(err, Error::Archive(_)), "{err}");
        // Beyond the hard bound, even a sized source rejects it by bound.
        buf[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(
            matches!(err, Error::Archive(ref m) if m.contains("bound")),
            "{err}"
        );
    }

    #[test]
    fn rejects_trailing_bytes() {
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        buf.extend_from_slice(&[0u8; 7]);
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(
            matches!(err, Error::Archive(ref m) if m.contains("trailing")),
            "{err}"
        );
    }

    #[test]
    fn empty_stream_with_valid_footer_is_corrupt() {
        // Regression: count 0 + a well-formed footer used to read back as a
        // complete (empty) archive — indistinguishable from a stream whose
        // records were lost. The v2 reader must reject it...
        let empty = Archive {
            dbgen_seed: 1,
            hist_seed: 2,
            transactions: Vec::new(),
        };
        let mut buf = Vec::new();
        empty.write_to(&mut buf).unwrap();
        let err = Archive::read_from_slice(&buf).unwrap_err();
        assert!(
            matches!(err, Error::Archive(ref m) if m.contains("empty")),
            "{err}"
        );
        let err = Archive::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Archive(_)), "{err}");
        // ...while non-empty archives are unaffected.
        let a = sample_archive();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        assert_eq!(Archive::read_from_slice(&buf).unwrap(), a);
    }

    #[test]
    fn standalone_txn_codec_round_trips() {
        let a = sample_archive();
        for txn in &a.transactions {
            let body = encode_txn(txn).unwrap();
            assert_eq!(&decode_txn(&body).unwrap(), txn);
            // Trailing bytes are rejected, like the archive record reader.
            let mut padded = body.clone();
            padded.push(0);
            assert!(decode_txn(&padded).is_err());
            // Truncation is rejected.
            assert!(decode_txn(&body[..body.len() - 1]).is_err());
        }
    }

    #[test]
    fn batching_merges_transactions() {
        let a = sample_archive();
        let batched: Vec<Transaction> = a.batched(2).collect();
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0].scenarios.len(), 2);
        assert_eq!(batched[0].ops.len(), 4);
        // Batch size 1 is the identity.
        assert!(a.batched(1).eq(a.transactions.iter().cloned()));
        // Zero is clamped to 1.
        assert!(a.batched(0).eq(a.transactions.iter().cloned()));
    }

    #[test]
    fn generated_history_round_trips() {
        let data = bitempo_dbgen::generate(&bitempo_dbgen::ScaleConfig::tiny());
        let h = crate::generate_history(&data, &crate::HistoryConfig::tiny());
        let mut buf = Vec::new();
        h.archive.write_to(&mut buf).unwrap();
        let b = Archive::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(h.archive, b);
    }
}
