//! Per-table operation statistics — the data behind Table 2.

use crate::ops::Op;
use std::fmt;

/// Operation counters for one table (the columns of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableOps {
    /// Inserts carrying an application period.
    pub app_insert: u64,
    /// Updates scoped to an application-time portion, plus period overwrites.
    pub app_update: u64,
    /// Inserts without application-time semantics.
    pub nontemp_insert: u64,
    /// Updates without a portion (only system time advances).
    pub nontemp_update: u64,
    /// Deletes.
    pub delete: u64,
    /// Application-period overwrites (subset of `app_update`).
    pub overwrite_app: u64,
}

impl TableOps {
    /// All operations that create a history entry (everything but inserts).
    pub fn history_ops(&self) -> u64 {
        self.app_update + self.nontemp_update + self.delete
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.app_insert + self.app_update + self.nontemp_insert + self.nontemp_update + self.delete
    }
}

/// Statistics for a full history run.
#[derive(Debug, Clone)]
pub struct HistoryStats {
    /// Table names in load order.
    pub tables: Vec<String>,
    /// Initial (version 0) tuple counts.
    pub initial_rows: Vec<u64>,
    /// Operation counters per table.
    pub ops: Vec<TableOps>,
    /// Scenario executions by kind tag.
    pub scenario_counts: [u64; 10],
}

impl HistoryStats {
    /// Creates zeroed statistics for the given tables.
    pub fn new(tables: Vec<String>, initial_rows: Vec<u64>) -> HistoryStats {
        let n = tables.len();
        HistoryStats {
            tables,
            initial_rows,
            ops: vec![TableOps::default(); n],
            scenario_counts: [0; 10],
        }
    }

    /// Records one operation. `has_app_time` tells whether the target table
    /// is bitemporal (SUPPLIER inserts are non-temporal inserts, Table 2).
    pub fn record(&mut self, op: &Op, has_app_time: bool) {
        let c = &mut self.ops[op.table() as usize];
        match op {
            Op::Insert { .. } => {
                if has_app_time {
                    c.app_insert += 1;
                } else {
                    c.nontemp_insert += 1;
                }
            }
            Op::Update { portion, .. } => {
                if portion.is_some() {
                    c.app_update += 1;
                } else {
                    c.nontemp_update += 1;
                }
            }
            Op::Delete { .. } => c.delete += 1,
            Op::OverwriteApp { .. } => {
                c.app_update += 1;
                c.overwrite_app += 1;
            }
        }
    }

    /// History growth ratio: history-creating operations per initial tuple
    /// (Table 2's last-but-one column).
    pub fn growth_ratio(&self, table: usize) -> f64 {
        let initial = self.initial_rows[table].max(1) as f64;
        self.ops[table].history_ops() as f64 / initial
    }

    /// Whether any operation overwrote application periods on this table.
    pub fn overwrites_app_time(&self, table: usize) -> bool {
        self.ops[table].overwrite_app > 0
    }
}

impl fmt::Display for HistoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9}",
            "Table", "AppIns", "AppUpd", "NTIns", "NTUpd", "Del", "Growth", "Overwrite"
        )?;
        for (i, name) in self.tables.iter().enumerate() {
            let o = &self.ops[i];
            writeln!(
                f,
                "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8.2} {:>9}",
                name,
                o.app_insert,
                o.app_update,
                o.nontemp_insert,
                o.nontemp_update,
                o.delete,
                self.growth_ratio(i),
                if self.overwrites_app_time(i) {
                    "yes"
                } else {
                    "no"
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{Key, Row, Value};

    fn stats() -> HistoryStats {
        HistoryStats::new(vec!["a".into(), "b".into()], vec![100, 50])
    }

    #[test]
    fn classification() {
        let mut s = stats();
        s.record(
            &Op::Insert {
                table: 0,
                row: Row::new(vec![Value::Int(1)]),
                app: None,
            },
            true,
        );
        s.record(
            &Op::Update {
                table: 0,
                key: Key::int(1),
                updates: vec![],
                portion: Some(bitempo_core::AppPeriod::ALL),
            },
            true,
        );
        s.record(
            &Op::Update {
                table: 0,
                key: Key::int(1),
                updates: vec![],
                portion: None,
            },
            true,
        );
        s.record(
            &Op::OverwriteApp {
                table: 0,
                key: Key::int(1),
                period: bitempo_core::AppPeriod::ALL,
            },
            true,
        );
        s.record(
            &Op::Delete {
                table: 1,
                key: Key::int(1),
                portion: None,
            },
            true,
        );
        assert_eq!(s.ops[0].app_insert, 1);
        assert_eq!(s.ops[0].app_update, 2);
        assert_eq!(s.ops[0].nontemp_update, 1);
        assert_eq!(s.ops[0].overwrite_app, 1);
        assert_eq!(s.ops[1].delete, 1);
        assert!(s.overwrites_app_time(0));
        assert!(!s.overwrites_app_time(1));
    }

    #[test]
    fn growth_ratio() {
        let mut s = stats();
        for _ in 0..200 {
            s.record(
                &Op::Update {
                    table: 0,
                    key: Key::int(1),
                    updates: vec![],
                    portion: None,
                },
                true,
            );
        }
        assert!((s.growth_ratio(0) - 2.0).abs() < 1e-9);
        assert_eq!(s.growth_ratio(1), 0.0);
    }

    #[test]
    fn display_renders_all_tables() {
        let s = stats();
        let text = s.to_string();
        assert!(text.contains("Table"));
        assert!(text.contains('a') && text.contains('b'));
    }
}
