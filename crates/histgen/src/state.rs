//! The generator's lightweight in-memory bitemporal database (paper §4.1).
//!
//! The paper's generator keeps, per key, the application-time versions
//! visible at the current system time (it used per-key doubly-linked lists;
//! we keep a compact per-key `Vec` sorted by application start — the same
//! linear retrieval with better locality), and streams invalidated tuples
//! out as they die ("it is guaranteed that these tuples will never become
//! visible again").
//!
//! `GenDb` serves three roles:
//!
//! 1. validity state for scenario generation (which orders are open, etc.);
//! 2. a **correctness oracle**: [`GenDb::scan`] answers any bitemporal scan
//!    independently of the engines, so the integration tests can compare
//!    all five implementations;
//! 3. the source of fully-stamped versions for System D's bulk load (§5.8).

use bitempo_core::{
    AppPeriod, Error, Key, Result, Row, SysPeriod, SysTime, TableDef, TemporalClass, Value,
};
use bitempo_dbgen::TpchData;
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::sequenced::split_for_portion;
use bitempo_engine::Version;
use std::collections::HashMap;

use crate::ops::Op;

/// A version still visible at the generator's current system time.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentVersion {
    /// Value columns.
    pub row: Row,
    /// Application validity.
    pub app: AppPeriod,
    /// When this version became visible.
    pub sys_start: SysTime,
}

/// A version that has been superseded (fully stamped).
#[derive(Debug, Clone, PartialEq)]
pub struct StampedVersion {
    /// Value columns.
    pub row: Row,
    /// Application validity.
    pub app: AppPeriod,
    /// Closed system period.
    pub sys: SysPeriod,
}

#[derive(Debug)]
struct GenTable {
    def: TableDef,
    current: HashMap<Key, Vec<CurrentVersion>>,
    invalidated: Vec<StampedVersion>,
}

/// The in-memory bitemporal generator state.
#[derive(Debug)]
pub struct GenDb {
    tables: Vec<GenTable>,
    now: SysTime,
}

impl GenDb {
    /// Builds the generator state from the version-0 data, committed as one
    /// initial-load transaction at `t1`.
    pub fn from_initial(data: &TpchData) -> GenDb {
        let mut db = GenDb {
            tables: data
                .tables
                .iter()
                .map(|t| GenTable {
                    def: t.def.clone(),
                    current: HashMap::new(),
                    invalidated: Vec::new(),
                })
                .collect(),
            now: SysTime::ZERO,
        };
        let t1 = SysTime(1);
        for (idx, table) in data.tables.iter().enumerate() {
            for (row, app) in &table.rows {
                db.insert_version(idx, row.clone(), *app, t1);
            }
        }
        db.now = t1;
        db
    }

    /// The current system time (last committed transaction).
    pub fn now(&self) -> SysTime {
        self.now
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Definition of table `idx`.
    pub fn def(&self, idx: usize) -> &TableDef {
        &self.tables[idx].def
    }

    /// Index of the table named `name`.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.def.name == name)
    }

    /// Currently visible versions of `key`.
    pub fn current_of(&self, table: usize, key: &Key) -> &[CurrentVersion] {
        self.tables[table]
            .current
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of currently visible versions in a table.
    pub fn current_len(&self, table: usize) -> usize {
        self.tables[table].current.values().map(Vec::len).sum()
    }

    /// Number of invalidated (superseded) versions in a table.
    pub fn invalidated_len(&self, table: usize) -> usize {
        self.tables[table].invalidated.len()
    }

    fn insert_version(&mut self, table: usize, row: Row, app: Option<AppPeriod>, at: SysTime) {
        let t = &mut self.tables[table];
        let app = app.unwrap_or(AppPeriod::ALL);
        let key = Key::from_row(&row, &t.def.key);
        let sys_start = if t.def.temporal == TemporalClass::NonTemporal {
            SysTime::ZERO
        } else {
            at
        };
        let chain = t.current.entry(key).or_default();
        let pos = chain.partition_point(|v| v.app.start <= app.start);
        chain.insert(
            pos,
            CurrentVersion {
                row,
                app,
                sys_start,
            },
        );
    }

    /// Applies one operation with pending commit time `at`. Never-visible
    /// versions (created and superseded at the same `at`) are dropped, as
    /// in the engines.
    pub fn apply(&mut self, op: &Op, at: SysTime) -> Result<()> {
        match op {
            Op::Insert { table, row, app } => {
                self.insert_version(*table as usize, row.clone(), *app, at);
                Ok(())
            }
            Op::Update {
                table,
                key,
                updates,
                portion,
            } => self.sequenced(*table as usize, key, Some(updates), *portion, at),
            Op::Delete {
                table,
                key,
                portion,
            } => self.sequenced(*table as usize, key, None, *portion, at),
            Op::OverwriteApp { table, key, period } => {
                self.overwrite(*table as usize, key, *period, at)
            }
        }
    }

    /// Commits the pending transaction at `at`.
    pub fn commit(&mut self, at: SysTime) {
        debug_assert!(at > self.now, "commits are monotone");
        self.now = at;
    }

    fn take_chain(&mut self, table: usize, key: &Key) -> Result<Vec<CurrentVersion>> {
        self.tables[table]
            .current
            .remove(key)
            .ok_or_else(|| Error::KeyNotFound(format!("{key} in {}", self.tables[table].def.name)))
    }

    fn retire(&mut self, table: usize, v: CurrentVersion, at: SysTime) {
        // Same-transaction supersede: never visible, never archived.
        if v.sys_start >= at {
            return;
        }
        if self.tables[table].def.temporal == TemporalClass::NonTemporal {
            return;
        }
        self.tables[table].invalidated.push(StampedVersion {
            row: v.row,
            app: v.app,
            sys: SysPeriod::new(v.sys_start, at),
        });
    }

    fn sequenced(
        &mut self,
        table: usize,
        key: &Key,
        updates: Option<&[(u16, Value)]>,
        portion: Option<AppPeriod>,
        at: SysTime,
    ) -> Result<()> {
        let def_temporal = self.tables[table].def.temporal;
        if def_temporal != TemporalClass::Bitemporal && portion.is_some() {
            return Err(Error::Unsupported(format!(
                "FOR PORTION OF on {}",
                self.tables[table].def.name
            )));
        }
        let portion = portion.unwrap_or(AppPeriod::ALL);
        let chain = self.take_chain(table, key)?;
        let mut new_chain: Vec<CurrentVersion> = Vec::with_capacity(chain.len() + 2);
        for v in chain {
            let Some(split) = split_for_portion(v.app, portion) else {
                new_chain.push(v);
                continue;
            };
            if def_temporal == TemporalClass::NonTemporal {
                if let Some(updates) = updates {
                    let assignments: Vec<(usize, Value)> = updates
                        .iter()
                        .map(|(c, val)| (*c as usize, val.clone()))
                        .collect();
                    new_chain.push(CurrentVersion {
                        row: v.row.with_all(&assignments),
                        app: v.app,
                        sys_start: v.sys_start,
                    });
                }
                continue;
            }
            for residue in &split.residues {
                new_chain.push(CurrentVersion {
                    row: v.row.clone(),
                    app: *residue,
                    sys_start: at,
                });
            }
            if let Some(updates) = updates {
                let assignments: Vec<(usize, Value)> = updates
                    .iter()
                    .map(|(c, val)| (*c as usize, val.clone()))
                    .collect();
                new_chain.push(CurrentVersion {
                    row: v.row.with_all(&assignments),
                    app: split.affected,
                    sys_start: at,
                });
            }
            self.retire(table, v, at);
        }
        if !new_chain.is_empty() {
            new_chain.sort_by_key(|v| v.app.start);
            self.tables[table].current.insert(key.clone(), new_chain);
        }
        Ok(())
    }

    fn overwrite(&mut self, table: usize, key: &Key, period: AppPeriod, at: SysTime) -> Result<()> {
        if self.tables[table].def.temporal != TemporalClass::Bitemporal {
            return Err(Error::Unsupported(format!(
                "period overwrite on {}",
                self.tables[table].def.name
            )));
        }
        if period.is_empty() {
            return Err(Error::EmptyPeriod(format!("{period}")));
        }
        let chain = self.take_chain(table, key)?;
        let rep = chain
            .iter()
            .max_by_key(|v| v.app.start)
            .expect("non-empty chain")
            .row
            .clone();
        for v in chain {
            self.retire(table, v, at);
        }
        self.tables[table].current.insert(
            key.clone(),
            vec![CurrentVersion {
                row: rep,
                app: period,
                sys_start: at,
            }],
        );
        Ok(())
    }

    /// Oracle scan: all versions of `table` matching the temporal specs, in
    /// the engines' scan-schema layout. Sequential over current +
    /// invalidated — this is a reference implementation, not a fast one.
    pub fn scan(&self, table: usize, sys: &SysSpec, app: &AppSpec) -> Vec<Row> {
        let t = &self.tables[table];
        let mut out = Vec::new();
        for chain in t.current.values() {
            for v in chain {
                let version = Version {
                    row: v.row.clone(),
                    app: v.app,
                    sys: SysPeriod::since(v.sys_start),
                };
                if version.matches(sys, app) {
                    out.push(version.output_row(&t.def));
                }
            }
        }
        if !sys.current_only() {
            for v in &t.invalidated {
                let version = Version {
                    row: v.row.clone(),
                    app: v.app,
                    sys: v.sys,
                };
                if version.matches(sys, app) {
                    out.push(version.output_row(&t.def));
                }
            }
        }
        out
    }

    /// All versions ever recorded for `table`, fully stamped — the bulk-load
    /// feed for engines with manual system time.
    pub fn all_versions(&self, table: usize) -> Vec<(Row, AppPeriod, SysPeriod)> {
        let t = &self.tables[table];
        let mut out: Vec<(Row, AppPeriod, SysPeriod)> = t
            .invalidated
            .iter()
            .map(|v| (v.row.clone(), v.app, v.sys))
            .collect();
        for chain in t.current.values() {
            for v in chain {
                out.push((v.row.clone(), v.app, SysPeriod::since(v.sys_start)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{AppDate, Period};
    use bitempo_dbgen::ScaleConfig;

    fn tiny_db() -> GenDb {
        GenDb::from_initial(&bitempo_dbgen::generate(&ScaleConfig::tiny()))
    }

    #[test]
    fn initial_load_counts() {
        let db = tiny_db();
        let orders = db.table_index("orders").unwrap();
        assert_eq!(db.current_len(orders), 1_500);
        assert_eq!(db.invalidated_len(orders), 0);
        assert_eq!(db.now(), SysTime(1));
    }

    #[test]
    fn update_creates_invalidated_version() {
        let mut db = tiny_db();
        let orders = db.table_index("orders").unwrap() as u8;
        let at = SysTime(2);
        db.apply(
            &Op::Update {
                table: orders,
                key: Key::int(1),
                updates: vec![(2, Value::str("F"))],
                portion: None,
            },
            at,
        )
        .unwrap();
        db.commit(at);
        assert_eq!(db.invalidated_len(orders as usize), 1);
        let cur = db.current_of(orders as usize, &Key::int(1));
        assert_eq!(cur.len(), 1);
        assert_eq!(cur[0].row.get(2), &Value::str("F"));
        assert_eq!(cur[0].sys_start, at);
    }

    #[test]
    fn portion_update_grows_chain() {
        let mut db = tiny_db();
        let part = db.table_index("part").unwrap() as u8;
        let existing = db.current_of(part as usize, &Key::int(1))[0].clone();
        let mid = existing.app.start.plus_days(100);
        let portion = Period::new(mid, mid.plus_days(30));
        db.apply(
            &Op::Update {
                table: part,
                key: Key::int(1),
                updates: vec![(5, Value::Int(99))],
                portion: Some(portion),
            },
            SysTime(2),
        )
        .unwrap();
        db.commit(SysTime(2));
        let chain = db.current_of(part as usize, &Key::int(1));
        assert_eq!(chain.len(), 3, "left residue + affected + right residue");
        // Chain stays sorted by app start and tiles the original period.
        for w in chain.windows(2) {
            assert!(w[0].app.start <= w[1].app.start);
            assert_eq!(w[0].app.end, w[1].app.start);
        }
        assert_eq!(chain[0].app.start, existing.app.start);
        assert_eq!(chain[2].app.end, AppDate::MAX);
    }

    #[test]
    fn overwrite_collapses_chain() {
        let mut db = tiny_db();
        let part = db.table_index("part").unwrap() as u8;
        let mid = AppDate::from_ymd(1995, 1, 1);
        db.apply(
            &Op::Update {
                table: part,
                key: Key::int(1),
                updates: vec![(5, Value::Int(7))],
                portion: Some(Period::new(mid, mid.plus_days(10))),
            },
            SysTime(2),
        )
        .ok();
        db.commit(SysTime(2));
        let new_period = Period::new(AppDate::from_ymd(1996, 1, 1), AppDate::MAX);
        db.apply(
            &Op::OverwriteApp {
                table: part,
                key: Key::int(1),
                period: new_period,
            },
            SysTime(3),
        )
        .unwrap();
        db.commit(SysTime(3));
        let chain = db.current_of(part as usize, &Key::int(1));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].app, new_period);
    }

    #[test]
    fn delete_empties_chain_and_archives() {
        let mut db = tiny_db();
        let orders = db.table_index("orders").unwrap() as u8;
        db.apply(
            &Op::Delete {
                table: orders,
                key: Key::int(5),
                portion: None,
            },
            SysTime(2),
        )
        .unwrap();
        db.commit(SysTime(2));
        assert!(db.current_of(orders as usize, &Key::int(5)).is_empty());
        assert_eq!(db.invalidated_len(orders as usize), 1);
        // Deleting a missing key is an error.
        let err = db.apply(
            &Op::Delete {
                table: orders,
                key: Key::int(5),
                portion: None,
            },
            SysTime(3),
        );
        assert!(matches!(err, Err(Error::KeyNotFound(_))));
    }

    #[test]
    fn oracle_scan_time_travel() {
        let mut db = tiny_db();
        let orders = db.table_index("orders").unwrap();
        let before = db.scan(orders, &SysSpec::AsOf(SysTime(1)), &AppSpec::All);
        assert_eq!(before.len(), 1_500);
        db.apply(
            &Op::Delete {
                table: orders as u8,
                key: Key::int(1),
                portion: None,
            },
            SysTime(2),
        )
        .unwrap();
        db.commit(SysTime(2));
        let after = db.scan(orders, &SysSpec::Current, &AppSpec::All);
        assert_eq!(after.len(), 1_499);
        let past = db.scan(orders, &SysSpec::AsOf(SysTime(1)), &AppSpec::All);
        assert_eq!(past.len(), 1_500, "time travel sees the deleted order");
    }

    #[test]
    fn bulk_feed_covers_everything() {
        let mut db = tiny_db();
        let orders = db.table_index("orders").unwrap();
        db.apply(
            &Op::Update {
                table: orders as u8,
                key: Key::int(2),
                updates: vec![(3, Value::Double(1.0))],
                portion: None,
            },
            SysTime(2),
        )
        .unwrap();
        db.commit(SysTime(2));
        let all = db.all_versions(orders);
        assert_eq!(all.len(), 1_501);
        let closed = all.iter().filter(|(_, _, s)| !s.is_current()).count();
        assert_eq!(closed, 1);
    }
}
