//! # bitempo-histgen
//!
//! The TPC-BiH **Bitemporal Data Generator** (paper §3.2, §4.1): evolves the
//! dbgen version-0 population through `m × 1 000 000` executions of nine
//! update scenarios (Table 1), producing:
//!
//! * a system-independent **generator archive** — the ordered list of
//!   transactions that every engine replays one by one (system time cannot
//!   be bulk-set, §4.2), with optional batching of scenarios into larger
//!   transactions (Fig 13);
//! * the generator's own **in-memory bitemporal state** ([`state::GenDb`]),
//!   which doubles as a correctness oracle for the engines and as the
//!   source of pre-stamped versions for System D's bulk load (§5.8);
//! * per-table **operation statistics** reproducing Table 2.
//!
//! Scenario probabilities follow Table 1. Where the OCR of the paper is
//! ambiguous (see DESIGN.md §6) we use: New Order 0.30 (half with a new
//! customer), Cancel 0.05, Deliver 0.25, Receive Payment 0.20, Update Stock
//! 0.05, Delay Availability 0.05, Change Price 0.05, Update Supplier 0.04,
//! Manipulate Order Data 0.01 — summing to 1.0.

pub mod archive;
pub mod loader;
pub mod ops;
pub mod scenario;
pub mod state;
pub mod stats;

pub use archive::{decode_txn, encode_txn, Archive};
pub use loader::{
    apply_op, load_archive_with_retry, load_initial, read_archive_with_retry, replay,
    replay_resilient, LoadReport, ReplayPolicy, ReplayReport,
};
pub use ops::{Op, ScenarioKind, Transaction};
pub use state::GenDb;
pub use stats::{HistoryStats, TableOps};

use bitempo_dbgen::TpchData;

/// History generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct HistoryConfig {
    /// History scale: `m = 1.0` means one million scenario executions.
    pub m: f64,
    /// Seed for the scenario stream (independent of the dbgen seed).
    pub seed: u64,
    /// Scenarios per application-time day (the paper's history spans months
    /// of simulated business on top of the TPC-H epoch).
    pub scenarios_per_day: u64,
}

impl HistoryConfig {
    /// A laptop-scale default: `m = 0.0005` → 500 scenarios.
    pub fn tiny() -> HistoryConfig {
        HistoryConfig {
            m: 0.0005,
            seed: 0x415C,
            scenarios_per_day: 4,
        }
    }

    /// A configuration with the given `m` and default seed.
    pub fn with_m(m: f64) -> HistoryConfig {
        HistoryConfig {
            m,
            seed: 0x415C,
            scenarios_per_day: 4,
        }
    }

    /// Number of scenario executions.
    pub fn scenarios(&self) -> u64 {
        ((self.m * 1_000_000.0).round() as u64).max(1)
    }
}

/// Output of a full history generation run.
#[derive(Debug)]
pub struct History {
    /// The replayable transaction archive.
    pub archive: Archive,
    /// The generator's final bitemporal state (current + invalidated).
    pub db: GenDb,
    /// Operation statistics (Table 2).
    pub stats: HistoryStats,
}

/// Runs the update scenarios against the version-0 data.
pub fn generate_history(data: &TpchData, config: &HistoryConfig) -> History {
    scenario::run(data, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_count_scaling() {
        assert_eq!(HistoryConfig::with_m(1.0).scenarios(), 1_000_000);
        assert_eq!(HistoryConfig::with_m(0.001).scenarios(), 1_000);
        assert_eq!(HistoryConfig::tiny().scenarios(), 500);
        assert_eq!(HistoryConfig::with_m(0.0).scenarios(), 1, "never zero");
    }
}
