//! Operations, transactions and scenario kinds.

use bitempo_core::{AppPeriod, Key, Row, Value};

/// The nine update scenarios of Table 1 (plus the New-Order split into
/// new-customer and existing-customer variants, which the table lists as
/// sub-cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// New order from a brand-new customer (0.15 overall).
    NewOrderNewCustomer,
    /// New order from an existing customer (0.15 overall).
    NewOrderExistingCustomer,
    /// Cancel an open order (0.05).
    CancelOrder,
    /// Deliver an open order (0.25).
    DeliverOrder,
    /// Receive payment for a delivered order (0.20).
    ReceivePayment,
    /// Update a part's stock level (0.05).
    UpdateStock,
    /// Delay a part's availability (0.05).
    DelayAvailability,
    /// A supplier changes a price (0.05).
    ChangePriceBySupplier,
    /// Update supplier master data (0.04).
    UpdateSupplier,
    /// Manipulate recorded order data — the audit scenario (0.01).
    ManipulateOrderData,
}

impl ScenarioKind {
    /// All scenario kinds with their Table-1 probabilities.
    pub const WEIGHTED: [(ScenarioKind, f64); 10] = [
        (ScenarioKind::NewOrderNewCustomer, 0.15),
        (ScenarioKind::NewOrderExistingCustomer, 0.15),
        (ScenarioKind::CancelOrder, 0.05),
        (ScenarioKind::DeliverOrder, 0.25),
        (ScenarioKind::ReceivePayment, 0.20),
        (ScenarioKind::UpdateStock, 0.05),
        (ScenarioKind::DelayAvailability, 0.05),
        (ScenarioKind::ChangePriceBySupplier, 0.05),
        (ScenarioKind::UpdateSupplier, 0.04),
        (ScenarioKind::ManipulateOrderData, 0.01),
    ];

    /// Display name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::NewOrderNewCustomer => "New Order (new customer)",
            ScenarioKind::NewOrderExistingCustomer => "New Order (existing customer)",
            ScenarioKind::CancelOrder => "Cancel Order",
            ScenarioKind::DeliverOrder => "Deliver Order",
            ScenarioKind::ReceivePayment => "Receive Payment",
            ScenarioKind::UpdateStock => "Update Stock",
            ScenarioKind::DelayAvailability => "Delay Availability",
            ScenarioKind::ChangePriceBySupplier => "Change Price by Supplier",
            ScenarioKind::UpdateSupplier => "Update Supplier",
            ScenarioKind::ManipulateOrderData => "Manipulate Order Data",
        }
    }

    /// Stable wire tag for archive serialization.
    pub fn tag(self) -> u8 {
        match self {
            ScenarioKind::NewOrderNewCustomer => 0,
            ScenarioKind::NewOrderExistingCustomer => 1,
            ScenarioKind::CancelOrder => 2,
            ScenarioKind::DeliverOrder => 3,
            ScenarioKind::ReceivePayment => 4,
            ScenarioKind::UpdateStock => 5,
            ScenarioKind::DelayAvailability => 6,
            ScenarioKind::ChangePriceBySupplier => 7,
            ScenarioKind::UpdateSupplier => 8,
            ScenarioKind::ManipulateOrderData => 9,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<ScenarioKind> {
        Self::WEIGHTED
            .iter()
            .map(|(k, _)| *k)
            .find(|k| k.tag() == tag)
    }
}

/// One DML operation against a named table. Tables are addressed by their
/// index in [`bitempo_dbgen::TPCH_TABLES`] load order.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Insert a row valid for `app`.
    Insert {
        /// Table index.
        table: u8,
        /// Value columns.
        row: Row,
        /// Application period (`None` on tables without app time).
        app: Option<AppPeriod>,
    },
    /// Sequenced update of `key` for `portion`.
    Update {
        /// Table index.
        table: u8,
        /// Primary key.
        key: Key,
        /// `(column, new value)` assignments.
        updates: Vec<(u16, Value)>,
        /// `FOR PORTION OF` period; `None` = full axis / non-temporal.
        portion: Option<AppPeriod>,
    },
    /// Sequenced delete of `key` for `portion`.
    Delete {
        /// Table index.
        table: u8,
        /// Primary key.
        key: Key,
        /// Deleted portion; `None` = full axis.
        portion: Option<AppPeriod>,
    },
    /// Replace the application period of `key` (Table 2 "Overwrite App.Time").
    OverwriteApp {
        /// Table index.
        table: u8,
        /// Primary key.
        key: Key,
        /// The replacement period.
        period: AppPeriod,
    },
}

impl Op {
    /// The table this op touches.
    pub fn table(&self) -> u8 {
        match self {
            Op::Insert { table, .. }
            | Op::Update { table, .. }
            | Op::Delete { table, .. }
            | Op::OverwriteApp { table, .. } => *table,
        }
    }
}

/// One transaction: one or more scenarios' operations, committed atomically.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// The scenarios bundled into this transaction (one, unless the loader
    /// batches; Fig 13 varies this).
    pub scenarios: Vec<ScenarioKind>,
    /// The operations, in execution order.
    pub ops: Vec<Op>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let total: f64 = ScenarioKind::WEIGHTED.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn tags_round_trip() {
        for (k, _) in ScenarioKind::WEIGHTED {
            assert_eq!(ScenarioKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ScenarioKind::from_tag(99), None);
    }

    #[test]
    fn new_order_split_matches_table1() {
        // Table 1: New Order 0.3, split evenly between new and existing
        // customers (DESIGN.md §6).
        let p = |k: ScenarioKind| {
            ScenarioKind::WEIGHTED
                .iter()
                .find(|(x, _)| *x == k)
                .unwrap()
                .1
        };
        assert_eq!(
            p(ScenarioKind::NewOrderNewCustomer) + p(ScenarioKind::NewOrderExistingCustomer),
            0.30
        );
        assert_eq!(p(ScenarioKind::DeliverOrder), 0.25);
        assert_eq!(p(ScenarioKind::ReceivePayment), 0.20);
    }
}
