//! Scenario execution: turning the Table-1 mix into concrete transactions.
//!
//! Each scenario execution emits one transaction of DML operations, applies
//! them to the generator's own state, and appends them to the archive. When
//! a scenario's precondition fails (e.g. `Cancel Order` with no open
//! orders), it degrades to `New Order (existing customer)` — keeping the
//! transaction stream total without skewing long-run frequencies, since
//! open orders are plentiful in steady state.

use crate::ops::{Op, ScenarioKind, Transaction};
use crate::state::GenDb;
use crate::stats::HistoryStats;
use crate::{History, HistoryConfig};
use bitempo_core::{AppDate, Key, Pcg32, Period, Row, Value};
use bitempo_dbgen::tables::retail_price;
use bitempo_dbgen::{col, text, TpchData, LAST_ORDER_DATE};
use std::collections::HashMap;

/// Table indexes in load order (see [`bitempo_dbgen::TPCH_TABLES`]).
mod t {
    pub const SUPPLIER: u8 = 2;
    pub const CUSTOMER: u8 = 3;
    pub const PART: u8 = 4;
    pub const PARTSUPP: u8 = 5;
    pub const ORDERS: u8 = 6;
    pub const LINEITEM: u8 = 7;
}

/// A pool of int keys with O(1) random pick and removal.
#[derive(Debug, Default)]
struct KeyPool {
    keys: Vec<i64>,
    index: HashMap<i64, usize>,
}

impl KeyPool {
    fn insert(&mut self, key: i64) {
        if self.index.contains_key(&key) {
            return;
        }
        self.index.insert(key, self.keys.len());
        self.keys.push(key);
    }

    fn remove(&mut self, key: i64) -> bool {
        let Some(pos) = self.index.remove(&key) else {
            return false;
        };
        let last = self.keys.len() - 1;
        self.keys.swap(pos, last);
        self.keys.pop();
        if pos < self.keys.len() {
            self.index.insert(self.keys[pos], pos);
        }
        true
    }

    fn pick(&self, rng: &mut Pcg32) -> Option<i64> {
        if self.keys.is_empty() {
            return None;
        }
        Some(self.keys[rng.int_range(0, self.keys.len() as i64 - 1) as usize])
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

#[derive(Debug, Clone, Copy)]
struct OrderInfo {
    orderdate: AppDate,
    lines: i64,
}

/// Mutable scenario-side state (which keys exist, which orders are open).
struct Runner {
    rng: Pcg32,
    next_custkey: i64,
    next_orderkey: i64,
    customers: Vec<i64>,
    suppliers: i64,
    parts: i64,
    partsupp_keys: Vec<(i64, i64)>,
    /// Orders still existing (not cancelled).
    live_orders: KeyPool,
    /// Open (undelivered) orders.
    open_orders: KeyPool,
    /// Delivered, not yet paid.
    receivable: KeyPool,
    order_info: HashMap<i64, OrderInfo>,
}

impl Runner {
    fn from_data(data: &TpchData, seed: u64) -> Runner {
        let customers: Vec<i64> = data
            .table("customer")
            .rows
            .iter()
            .map(|(r, _)| r.get(col::customer::CUSTKEY).as_int().expect("custkey"))
            .collect();
        let partsupp_keys: Vec<(i64, i64)> = data
            .table("partsupp")
            .rows
            .iter()
            .map(|(r, _)| {
                (
                    r.get(col::partsupp::PARTKEY).as_int().expect("partkey"),
                    r.get(col::partsupp::SUPPKEY).as_int().expect("suppkey"),
                )
            })
            .collect();
        let mut live_orders = KeyPool::default();
        let mut open_orders = KeyPool::default();
        let mut receivable = KeyPool::default();
        let mut order_info = HashMap::new();
        let mut max_order = 0;
        for (row, _) in &data.table("orders").rows {
            let ok = row.get(col::orders::ORDERKEY).as_int().expect("orderkey");
            let status = row.get(col::orders::ORDERSTATUS).as_str().expect("status");
            let orderdate = row.get(col::orders::ORDERDATE).as_date().expect("date");
            live_orders.insert(ok);
            match status {
                "O" | "P" => open_orders.insert(ok),
                // Half the finished orders still await payment at cut-over.
                _ if ok % 2 == 0 => receivable.insert(ok),
                _ => {}
            }
            order_info.insert(
                ok,
                OrderInfo {
                    orderdate,
                    lines: 0,
                },
            );
            max_order = max_order.max(ok);
        }
        // Count lines per order for cancel scenarios.
        for (row, _) in &data.table("lineitem").rows {
            let ok = row.get(col::lineitem::ORDERKEY).as_int().expect("orderkey");
            if let Some(info) = order_info.get_mut(&ok) {
                info.lines += 1;
            }
        }
        Runner {
            rng: Pcg32::new(seed, 0x5CE7),
            next_custkey: customers.iter().copied().max().unwrap_or(0) + 1,
            next_orderkey: max_order + 1,
            customers,
            suppliers: data.table("supplier").rows.len() as i64,
            parts: data.table("part").rows.len() as i64,
            partsupp_keys,
            live_orders,
            open_orders,
            receivable,
            order_info,
        }
    }

    fn pick_weighted_kind(&mut self) -> ScenarioKind {
        let weights: Vec<f64> = ScenarioKind::WEIGHTED.iter().map(|(_, w)| *w).collect();
        let idx = self.rng.pick_weighted(&weights);
        ScenarioKind::WEIGHTED[idx].0
    }

    /// Degrades scenarios whose preconditions fail.
    fn resolve_kind(&mut self, kind: ScenarioKind) -> ScenarioKind {
        let ok = match kind {
            ScenarioKind::CancelOrder | ScenarioKind::DeliverOrder => self.open_orders.len() > 0,
            ScenarioKind::ReceivePayment => self.receivable.len() > 0,
            ScenarioKind::ManipulateOrderData => self.live_orders.len() > 0,
            _ => true,
        };
        if ok {
            kind
        } else {
            ScenarioKind::NewOrderExistingCustomer
        }
    }
}

/// Runs the configured number of scenarios.
pub fn run(data: &TpchData, config: &HistoryConfig) -> History {
    let mut db = GenDb::from_initial(data);
    let mut runner = Runner::from_data(data, config.seed);
    let mut stats = HistoryStats::new(
        data.tables.iter().map(|t| t.def.name.clone()).collect(),
        data.tables.iter().map(|t| t.rows.len() as u64).collect(),
    );
    let mut transactions = Vec::with_capacity(config.scenarios() as usize);

    for i in 0..config.scenarios() {
        let today = LAST_ORDER_DATE.plus_days(1 + (i / config.scenarios_per_day.max(1)) as i64);
        let kind = runner.pick_weighted_kind();
        let kind = runner.resolve_kind(kind);
        let ops = build_ops(kind, &mut runner, &db, today);
        let at = db.now().next();
        for op in &ops {
            let has_app = db.def(op.table() as usize).has_app_time();
            stats.record(op, has_app);
            db.apply(op, at).expect("generated op must be valid");
        }
        db.commit(at);
        stats.scenario_counts[kind.tag() as usize] += 1;
        transactions.push(Transaction {
            scenarios: vec![kind],
            ops,
        });
    }

    History {
        archive: crate::Archive {
            dbgen_seed: 0,
            hist_seed: config.seed,
            transactions,
        },
        db,
        stats,
    }
}

fn build_ops(kind: ScenarioKind, r: &mut Runner, db: &GenDb, today: AppDate) -> Vec<Op> {
    match kind {
        ScenarioKind::NewOrderNewCustomer => new_order(r, today, true),
        ScenarioKind::NewOrderExistingCustomer => new_order(r, today, false),
        ScenarioKind::CancelOrder => cancel_order(r),
        ScenarioKind::DeliverOrder => deliver_order(r, today),
        ScenarioKind::ReceivePayment => receive_payment(r, db, today),
        ScenarioKind::UpdateStock => update_stock(r, today),
        ScenarioKind::DelayAvailability => delay_availability(r, today),
        ScenarioKind::ChangePriceBySupplier => change_price(r, db, today),
        ScenarioKind::UpdateSupplier => update_supplier(r),
        ScenarioKind::ManipulateOrderData => manipulate_order(r, db, today),
    }
}

fn new_order(r: &mut Runner, today: AppDate, new_customer: bool) -> Vec<Op> {
    let mut ops = Vec::new();
    let custkey = if new_customer {
        let k = r.next_custkey;
        r.next_custkey += 1;
        let nation = r.rng.int_range(0, 24);
        ops.push(Op::Insert {
            table: t::CUSTOMER,
            row: Row::new(vec![
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::str(text::address(&mut r.rng)),
                Value::Int(nation),
                Value::str(text::phone(&mut r.rng, nation)),
                Value::Double(r.rng.int_range(-99_999, 999_999) as f64 / 100.0),
                Value::str(*r.rng.pick(&text::SEGMENTS)),
            ]),
            app: Some(Period::new(today, AppDate::MAX)),
        });
        r.customers.push(k);
        k
    } else {
        let i = r.rng.int_range(0, r.customers.len() as i64 - 1) as usize;
        let k = r.customers[i];
        // Placing an order changes the customer's balance going forward —
        // the dominant source of CUSTOMER updates (Table 2: > 70 % of
        // CUSTOMER operations are updates).
        ops.push(Op::Update {
            table: t::CUSTOMER,
            key: Key::int(k),
            updates: vec![(
                col::customer::ACCTBAL as u16,
                Value::Double(r.rng.int_range(-99_999, 999_999) as f64 / 100.0),
            )],
            portion: Some(Period::new(today, AppDate::MAX)),
        });
        // Occasionally the visibility period itself is corrected (Table 2:
        // CUSTOMER overwrites application time).
        if r.rng.chance(0.1) {
            ops.push(Op::OverwriteApp {
                table: t::CUSTOMER,
                key: Key::int(k),
                period: Period::new(today.plus_days(-r.rng.int_range(30, 2_000)), AppDate::MAX),
            });
        }
        k
    };

    let orderkey = r.next_orderkey;
    r.next_orderkey += 1;
    let n_lines = r.rng.int_range(1, 7);
    let mut total = 0.0;
    for ln in 1..=n_lines {
        let i = r.rng.int_range(0, r.partsupp_keys.len() as i64 - 1) as usize;
        let (partkey, suppkey) = r.partsupp_keys[i];
        let quantity = r.rng.int_range(1, 50) as f64;
        let extended = quantity * retail_price(partkey);
        let discount = r.rng.int_range(0, 10) as f64 / 100.0;
        let tax = r.rng.int_range(0, 8) as f64 / 100.0;
        let ship = today.plus_days(r.rng.int_range(1, 30));
        let commit = today.plus_days(r.rng.int_range(20, 60));
        let receipt = ship.plus_days(r.rng.int_range(1, 30));
        total += extended * (1.0 + tax) * (1.0 - discount);
        ops.push(Op::Insert {
            table: t::LINEITEM,
            row: Row::new(vec![
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln),
                Value::Double(quantity),
                Value::Double(extended),
                Value::Double(discount),
                Value::Double(tax),
                Value::str("N"),
                Value::str("O"),
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
                Value::str(*r.rng.pick(&text::INSTRUCTIONS)),
                Value::str(*r.rng.pick(&text::MODES)),
            ]),
            app: Some(Period::new(ship, receipt)),
        });
    }
    ops.push(Op::Insert {
        table: t::ORDERS,
        row: Row::new(vec![
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::str("O"),
            Value::Double((total * 100.0).round() / 100.0),
            Value::Date(today),
            Value::str(*r.rng.pick(&text::PRIORITIES)),
            Value::str(format!("Clerk#{:09}", r.rng.int_range(1, 1_000))),
            Value::Int(0),
            Value::str(text::order_comment(&mut r.rng)),
            Value::Date(today),
            Value::Date(AppDate::MAX),
        ]),
        app: Some(Period::new(today, AppDate::MAX)),
    });
    r.live_orders.insert(orderkey);
    r.open_orders.insert(orderkey);
    r.order_info.insert(
        orderkey,
        OrderInfo {
            orderdate: today,
            lines: n_lines,
        },
    );
    ops
}

fn cancel_order(r: &mut Runner) -> Vec<Op> {
    let orderkey = r
        .open_orders
        .pick(&mut r.rng)
        .expect("precondition checked");
    let info = r.order_info[&orderkey];
    let mut ops = Vec::new();
    for ln in 1..=info.lines {
        ops.push(Op::Delete {
            table: t::LINEITEM,
            key: Key::int2(orderkey, ln),
            portion: None,
        });
    }
    ops.push(Op::Delete {
        table: t::ORDERS,
        key: Key::int(orderkey),
        portion: None,
    });
    r.open_orders.remove(orderkey);
    r.live_orders.remove(orderkey);
    r.order_info.remove(&orderkey);
    ops
}

fn deliver_order(r: &mut Runner, today: AppDate) -> Vec<Op> {
    let orderkey = r
        .open_orders
        .pick(&mut r.rng)
        .expect("precondition checked");
    let info = r.order_info[&orderkey];
    let active_end = today.max(info.orderdate.plus_days(1));
    let ops = vec![
        // Status flips and the invoice is issued: a non-temporal update.
        Op::Update {
            table: t::ORDERS,
            key: Key::int(orderkey),
            updates: vec![
                (col::orders::ORDERSTATUS as u16, Value::str("F")),
                (col::orders::RECEIVABLE_START as u16, Value::Date(today)),
            ],
            portion: None,
        },
        // The active period closes: an application-time overwrite.
        Op::OverwriteApp {
            table: t::ORDERS,
            key: Key::int(orderkey),
            period: Period::new(info.orderdate, active_end),
        },
    ];
    r.open_orders.remove(orderkey);
    r.receivable.insert(orderkey);
    ops
}

fn receive_payment(r: &mut Runner, db: &GenDb, today: AppDate) -> Vec<Op> {
    let orderkey = r.receivable.pick(&mut r.rng).expect("precondition checked");
    r.receivable.remove(orderkey);
    let mut ops = vec![Op::Update {
        table: t::ORDERS,
        key: Key::int(orderkey),
        updates: vec![(col::orders::RECEIVABLE_END as u16, Value::Date(today))],
        portion: None,
    }];
    // The payment lands on the customer's balance from today onward.
    let custkey = db
        .current_of(t::ORDERS as usize, &Key::int(orderkey))
        .first()
        .and_then(|v| v.row.get(col::orders::CUSTKEY).as_int().ok());
    if let Some(ck) = custkey {
        ops.push(Op::Update {
            table: t::CUSTOMER,
            key: Key::int(ck),
            updates: vec![(
                col::customer::ACCTBAL as u16,
                Value::Double(r.rng.int_range(-99_999, 999_999) as f64 / 100.0),
            )],
            portion: Some(Period::new(today, AppDate::MAX)),
        });
    }
    ops
}

fn update_stock(r: &mut Runner, today: AppDate) -> Vec<Op> {
    let i = r.rng.int_range(0, r.partsupp_keys.len() as i64 - 1) as usize;
    let (p, s) = r.partsupp_keys[i];
    let qty = r.rng.int_range(1, 9_999);
    let mut ops = vec![Op::Update {
        table: t::PARTSUPP,
        key: Key::int2(p, s),
        updates: vec![(col::partsupp::AVAILQTY as u16, Value::Int(qty))],
        portion: Some(Period::new(today, AppDate::MAX)),
    }];
    // A stock correction sometimes re-dates the whole validity period
    // (Table 2: PARTSUPP overwrites application time).
    if r.rng.chance(0.2) {
        ops.push(Op::OverwriteApp {
            table: t::PARTSUPP,
            key: Key::int2(p, s),
            period: Period::new(today.plus_days(-r.rng.int_range(0, 365)), AppDate::MAX),
        });
    }
    ops
}

fn delay_availability(r: &mut Runner, today: AppDate) -> Vec<Op> {
    let partkey = r.rng.int_range(1, r.parts);
    let delay = r.rng.int_range(1, 60);
    vec![Op::OverwriteApp {
        table: t::PART,
        key: Key::int(partkey),
        period: Period::new(today.plus_days(delay), AppDate::MAX),
    }]
}

fn change_price(r: &mut Runner, db: &GenDb, today: AppDate) -> Vec<Op> {
    let i = r.rng.int_range(0, r.partsupp_keys.len() as i64 - 1) as usize;
    let (p, s) = r.partsupp_keys[i];
    let key = Key::int2(p, s);
    let table = t::PARTSUPP as usize;
    let old_cost = db
        .current_of(table, &key)
        .iter()
        .max_by_key(|v| v.app.start)
        .and_then(|v| v.row.get(col::partsupp::SUPPLYCOST).as_double().ok())
        .unwrap_or(100.0);
    // Factor in [0.93, 1.15): some increases exceed the 7.5 % threshold
    // that query R7 hunts for.
    let factor = 0.93 + r.rng.unit_f64() * 0.22;
    let new_cost = (old_cost * factor * 100.0).round() / 100.0;
    vec![Op::Update {
        table: t::PARTSUPP,
        key,
        updates: vec![(col::partsupp::SUPPLYCOST as u16, Value::Double(new_cost))],
        portion: Some(Period::new(today, AppDate::MAX)),
    }]
}

fn update_supplier(r: &mut Runner) -> Vec<Op> {
    let suppkey = r.rng.int_range(1, r.suppliers);
    vec![Op::Update {
        table: t::SUPPLIER,
        key: Key::int(suppkey),
        updates: vec![(
            col::supplier::ACCTBAL as u16,
            Value::Double(r.rng.int_range(-99_999, 999_999) as f64 / 100.0),
        )],
        portion: None,
    }]
}

fn manipulate_order(r: &mut Runner, db: &GenDb, today: AppDate) -> Vec<Op> {
    let orderkey = r
        .live_orders
        .pick(&mut r.rng)
        .expect("precondition checked");
    let key = Key::int(orderkey);
    let table = t::ORDERS as usize;
    let current = db.current_of(table, &key);
    let old_total = current
        .first()
        .and_then(|v| v.row.get(col::orders::TOTALPRICE).as_double().ok())
        .unwrap_or(1_000.0);
    let factor = 0.9 + r.rng.unit_f64() * 0.2;
    let mut ops = vec![Op::Update {
        table: t::ORDERS,
        key: key.clone(),
        updates: vec![(
            col::orders::TOTALPRICE as u16,
            Value::Double((old_total * factor * 100.0).round() / 100.0),
        )],
        portion: None,
    }];
    // Half the manipulations also rewrite the recorded active period — the
    // audit-relevant case.
    if r.rng.chance(0.5) {
        let start = current
            .iter()
            .map(|v| v.app.start)
            .min()
            .unwrap_or(today.plus_days(-30));
        ops.push(Op::OverwriteApp {
            table: t::ORDERS,
            key,
            period: Period::new(start, today.plus_days(r.rng.int_range(1, 30))),
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_dbgen::ScaleConfig;

    fn history() -> History {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        run(&data, &HistoryConfig::tiny())
    }

    #[test]
    fn produces_one_transaction_per_scenario() {
        let h = history();
        assert_eq!(h.archive.transactions.len(), 500);
        assert!(h.archive.transactions.iter().all(|t| !t.ops.is_empty()));
    }

    #[test]
    fn deterministic() {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        let a = run(&data, &HistoryConfig::tiny());
        let b = run(&data, &HistoryConfig::tiny());
        assert_eq!(a.archive.transactions, b.archive.transactions);
    }

    #[test]
    fn scenario_frequencies_match_table1() {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        let h = run(&data, &HistoryConfig::with_m(0.005)); // 5 000 scenarios
        let total: u64 = h.stats.scenario_counts.iter().sum();
        assert_eq!(total, 5_000);
        for (kind, p) in ScenarioKind::WEIGHTED {
            let observed = h.stats.scenario_counts[kind.tag() as usize] as f64 / total as f64;
            // Fallbacks shift a little probability mass toward new orders;
            // allow a generous band.
            assert!(
                (observed - p).abs() < 0.05,
                "{}: observed {observed:.3}, spec {p:.3}",
                kind.name()
            );
        }
    }

    #[test]
    fn table2_qualitative_shape() {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        let h = run(&data, &HistoryConfig::with_m(0.005));
        let s = &h.stats;
        let idx = |n: &str| s.tables.iter().position(|t| t == n).unwrap();

        // NATION and REGION are never touched.
        assert_eq!(s.ops[idx("region")].total(), 0);
        assert_eq!(s.ops[idx("nation")].total(), 0);

        // LINEITEM is strongly dominated by inserts (> 60 %).
        let li = &s.ops[idx("lineitem")];
        assert!(
            li.app_insert as f64 > 0.6 * li.total() as f64,
            "lineitem inserts: {} of {}",
            li.app_insert,
            li.total()
        );

        // ORDERS sees a rich mix: inserts and updates both prominent.
        let ord = &s.ops[idx("orders")];
        assert!(ord.app_insert > 0 && (ord.app_update + ord.nontemp_update) > 0);
        let upd_share = (ord.app_update + ord.nontemp_update) as f64 / ord.total() as f64;
        assert!(upd_share > 0.3, "orders update share {upd_share:.2}");

        // CUSTOMER sees mostly UPDATE operations (> 70 %).
        let cust = &s.ops[idx("customer")];
        let upd = cust.app_update + cust.nontemp_update;
        assert!(
            upd as f64 > 0.7 * cust.total() as f64,
            "customer updates: {} of {}",
            upd,
            cust.total()
        );

        // PART and PARTSUPP receive only updates.
        for t in ["part", "partsupp"] {
            let o = &s.ops[idx(t)];
            assert_eq!(o.app_insert + o.nontemp_insert + o.delete, 0, "{t}");
            assert!(o.app_update > 0, "{t}");
        }

        // SUPPLIER: high growth ratio (few tuples, steady updates), and
        // CUSTOMER gets new tuples plus updates via new-customer orders.
        assert!(s.growth_ratio(idx("supplier")) > s.growth_ratio(idx("lineitem")));

        // Overwrite flags (Table 2's last column): CUSTOMER, PART,
        // PARTSUPP and ORDERS all overwrite application periods.
        for t in ["customer", "part", "partsupp", "orders"] {
            assert!(s.overwrites_app_time(idx(t)), "{t}");
        }
        assert!(!s.overwrites_app_time(idx("lineitem")));
        assert!(!s.overwrites_app_time(idx("supplier")));
    }

    #[test]
    fn generator_state_consistent_after_run() {
        let h = history();
        let db = &h.db;
        let orders = db.table_index("orders").unwrap();
        let lineitem = db.table_index("lineitem").unwrap();
        // Orders inserted minus cancelled equals current count.
        let s = &h.stats;
        let oi = s.tables.iter().position(|t| t == "orders").unwrap();
        let expected = 1_500 + s.ops[oi].app_insert - s.ops[oi].delete;
        assert_eq!(db.current_len(orders) as u64, expected);
        assert!(db.current_len(lineitem) > 0);
        // System time advanced once per scenario plus the initial load.
        assert_eq!(db.now().0, 1 + 500);
    }
}
