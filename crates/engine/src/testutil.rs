//! Small fixtures shared by the engine test suites (and the integration
//! tests). Not part of the supported API surface.
#![doc(hidden)]

use crate::api::BitemporalEngine;
use bitempo_core::{Column, DataType, Row, Schema, TableDef, TableId, TemporalClass, Value};

/// A two-column bitemporal test table: `id Int` (key), `val Int`.
pub fn bitemp_table(name: &str) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("vt"),
    )
    .expect("valid test table")
}

/// A non-temporal variant of [`bitemp_table`].
pub fn plain_table(name: &str) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::NonTemporal,
        None,
    )
    .expect("valid test table")
}

/// A degenerate (system-time-only) variant of [`bitemp_table`].
pub fn degenerate_table(name: &str) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Degenerate,
        None,
    )
    .expect("valid test table")
}

/// An `(id, val)` row.
pub fn simple_row(id: i64, val: i64) -> Row {
    Row::new(vec![Value::Int(id), Value::Int(val)])
}

/// Inserts each `(id, val)` pair in its own transaction.
pub fn insert_rows(engine: &mut dyn BitemporalEngine, table: TableId, rows: &[(i64, i64)]) {
    for &(id, val) in rows {
        engine
            .insert(table, simple_row(id, val), None)
            .expect("test insert");
        engine.commit();
    }
}
